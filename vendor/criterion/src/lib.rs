#![warn(missing_docs)]
//! Offline, in-tree subset of the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The real criterion performs warm-up, sampling, and statistical analysis.
//! This subset keeps the same API shape (`criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`Throughput`], [`BenchmarkId`]) but runs a
//! fixed number of timed iterations and prints a single median line per
//! benchmark. That is enough for `cargo bench --no-run` to compile every
//! target and for `cargo bench` to produce directionally useful numbers
//! without any external dependencies.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a benchmark's workload size is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost across iterations.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations per setup.
    SmallInput,
    /// Large per-iteration inputs: one setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration, excluding
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration workload size for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted and ignored by this subset).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted and ignored by this subset).
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<F, I>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: fmt::Display,
    {
        let iters = self.sample_size as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs `routine` with an input value, criterion-style.
    pub fn bench_with_input<F, I, P>(&mut self, id: I, input: &P, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
        I: fmt::Display,
        P: ?Sized,
    {
        let iters = self.sample_size as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Finishes the group (no-op in this subset; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, b: &Bencher) {
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        let mut line = format!(
            "{}/{:<40} {:>12.3?}/iter ({} iters)",
            self.name, id, per_iter, b.iters
        );
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            "  {:>10.1} MiB/s",
                            n as f64 / secs / (1 << 20) as f64
                        ));
                    }
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:>10.1} elem/s", n as f64 / secs));
                    }
                }
            }
        }
        self.criterion.emit(&line);
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    quiet: bool,
}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }

    fn emit(&mut self, line: &str) {
        if !self.quiet {
            println!("{line}");
        }
    }

    /// Final configuration hook used by `criterion_main!` (API parity).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a compiled
            // harness=false target owns its own CLI, so just ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(128));
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter_batched(
                || vec![x; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { quiet: true };
        sample_bench(&mut c);
    }
}
