#![warn(missing_docs)]
//! Offline, in-tree subset of the [`proptest`](https://docs.rs/proptest)
//! property-testing framework.
//!
//! Implements the surface this workspace's `tests/prop_*.rs` suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * strategies for integer ranges, tuples, [`collection::vec`],
//!   [`option::of`], [`strategy::Just`], and [`arbitrary::any`].
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test's module path and name), so failures reproduce across runs. The one
//! deliberate omission versus real proptest is *shrinking*: a failing case
//! is reported as-is rather than minimized.

pub mod test_runner {
    //! Test-case driving: configuration, RNG, and failure plumbing.

    use std::fmt;

    /// Runtime configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; 64 keeps the never-shrunk
            // stub's worst case (large vec strategies) comfortably fast
            // while still exploring a meaningful slice of the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail<S: Into<String>>(message: S) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 generator driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// FNV-1a hash of `s`, used to derive per-test seeds.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinator strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value using `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy yielding a fixed value on every draw.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among several strategies with one value type; the
    /// expansion target of [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain 64-bit range (signed or unsigned).
                        return rng.next_u64() as $t;
                    }
                    (lo as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod bool {
    //! `bool` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical fair-coin strategy.
    pub const ANY: BoolStrategy = BoolStrategy;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Ranges of collection sizes accepted by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some (3:1) like real proptest's default weight.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    /// A strategy for optional values of `inner`'s type.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! Single-glob import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Uniform choice among strategies that share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Declares property tests whose arguments are drawn from strategies.
///
/// Supports the subset of real proptest's grammar used in this workspace:
/// an optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items (doc comments and
/// extra attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __seed = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $arg =
                        $crate::strategy::Strategy::new_value(&($strategy), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!(
                        "proptest property {} failed at case {}:\n{}",
                        stringify!($name),
                        __case,
                        __err
                    );
                }
            }
        }
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2u8), 3u8..10]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn generated_values_in_bounds(
            xs in crate::collection::vec((0u64..50, 1u8..=255), 1..20),
            opt in crate::option::of(0u64..10),
            flag in any::<bool>(),
            pick in small(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in &xs {
                prop_assert!(*a < 50, "a={} out of range", a);
                prop_assert!(*b >= 1);
            }
            if let Some(v) = opt {
                prop_assert!(v < 10);
            }
            let parity = usize::from(flag);
            prop_assert!(parity <= 1);
            prop_assert!((1..10).contains(&pick));
        }
    }

    #[test]
    fn full_domain_signed_range_is_not_constant() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::new(5);
        let strat = i64::MIN..=i64::MAX;
        let distinct: std::collections::HashSet<i64> =
            (0..64).map(|_| strat.new_value(&mut rng)).collect();
        assert!(distinct.len() > 1, "full-domain i64 range degenerated");
    }

    #[test]
    fn determinism_same_seed_same_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0u32..7);
        let a: Vec<_> = {
            let mut rng = TestRng::new(99);
            (0..16).map(|_| strat.new_value(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(99);
            (0..16).map(|_| strat.new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
