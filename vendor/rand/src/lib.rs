#![warn(missing_docs)]
//! Offline, in-tree subset of the [`rand`](https://docs.rs/rand) crate,
//! mirroring the 0.9-era API surface this workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`] — deterministic
//!   seeding for reproducible experiments;
//! * [`Rng::random`] — uniform full-range sampling for primitive types;
//! * [`Rng::random_range`] — uniform sampling from half-open and inclusive
//!   integer ranges;
//! * [`RngCore::fill_bytes`] — bulk byte generation.
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — not cryptographic,
//! but statistically adequate for workload generation, which is the only
//! consumer in this workspace. Determinism per seed is the contract the
//! tests rely on.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`, uniform over the type's domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that support uniform sampling from a sub-range.
pub trait SampleUniform: Copy + Sized {
    /// Samples uniformly from `[low, high)`; panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`; panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range-like arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as $wide).wrapping_sub(low as $wide);
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the plain variant is irrelevant for workload
                // generation and keeps the stub branch-free.
                let v = (rng.next_u64() as u128 * span as u128) >> 64;
                (low as $wide).wrapping_add(v as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // Only reachable for full-domain 64-bit ranges.
                    return <$t as Standard>::sample_standard(rng);
                }
                let v = (rng.next_u64() as u128 * span as u128) >> 64;
                (low as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value uniform over the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value uniform over `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.random();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator of this subset: SplitMix64.
    ///
    /// Statistically solid for simulation workloads and fully determined by
    /// its seed; **not** cryptographically secure (neither consumer in this
    /// workspace needs that).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(1u8..=255);
            assert!(y >= 1);
            let z: usize = r.random_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_is_object_safe() {
        let mut r = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v = dyn_rng.random_range(0u32..100);
        assert!(v < 100);
    }
}
