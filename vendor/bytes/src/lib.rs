#![warn(missing_docs)]
//! Offline, in-tree subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of external dependencies are vendored as API-compatible subsets.
//! This one provides [`Bytes`]: an immutable, reference-counted byte buffer
//! whose `clone()` is O(1). Only the constructors and trait impls actually
//! used by `datacase-storage` are implemented.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a `Bytes` instance by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a `Bytes` from a static byte slice without copying.
    ///
    /// (The real crate borrows the static data; this subset copies once at
    /// construction, which preserves semantics at a small one-time cost.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v = vec![1u8, 2, 3];
        let b = Bytes::from(v.clone());
        assert_eq!(b.to_vec(), v);
        assert!(!b.is_empty());
    }
}
