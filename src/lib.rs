#![warn(missing_docs)]
//! # data-case
//!
//! Umbrella crate for the Data-CASE reproduction (EDBT 2024,
//! arXiv:2308.07501): a formal framework for grounding data regulations
//! (GDPR and friends) into system-level invariants, plus every substrate the
//! paper's evaluation depends on — a PostgreSQL-style MVCC heap engine, an
//! LSM engine with tombstones, RBAC / metadata-table / Sieve-style FGAC
//! policy enforcement, audit logging, from-scratch AES/SHA-256, GDPRBench
//! and YCSB workload generators, and the three compliance profiles
//! (P_Base, P_GBench, P_SYS) the paper benchmarks.
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! short names so applications can depend on `data-case` alone:
//!
//! ```
//! use data_case::prelude::*;
//!
//! let clock = SimClock::commodity();
//! assert_eq!(clock.now(), Ts::ZERO);
//! ```
//!
//! The deterministic chaos harness (`chaos`) replays seeded compliance
//! scenarios under named crash points and holds recovery to the paper's
//! groundings; `repro chaos` runs its matrix.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness that regenerates every table and figure
//! of the paper.

pub use datacase_audit as audit;
pub use datacase_chaos as chaos;
pub use datacase_core as core;
pub use datacase_crypto as crypto;
pub use datacase_engine as engine;
pub use datacase_policy as policy;
pub use datacase_server as server;
pub use datacase_sim as sim;
pub use datacase_storage as storage;
pub use datacase_workloads as workloads;

/// Convenient glob-import surface for examples and quickstarts.
///
/// Covers the simulation substrate plus everything an end-to-end scenario
/// like `examples/quickstart.rs` needs: the session-scoped engine
/// frontend (`Frontend` / `Session` / `Request` / `Batch` and the typed
/// `Reply` / `EngineError` outcomes), its configuration profiles, the
/// workload operation/record types, and the core regulation/grounding
/// vocabulary.
pub mod prelude {
    pub use datacase_core::grounding::erasure::ErasureInterpretation;
    pub use datacase_core::regulation::Regulation;
    pub use datacase_engine::concurrent::{
        merged_chain_head, ConcurrentEngine, EngineHandle, SubmitStamp, Ticket,
    };
    pub use datacase_engine::error::EngineError;
    pub use datacase_engine::frontend::{
        AuditRef, Batch, Frontend, Reply, Request, Response, Session,
    };
    pub use datacase_engine::profiles::{DeleteStrategy, EngineConfig, ProfileKind};
    pub use datacase_engine::Actor;
    pub use datacase_engine::{driver::RunStats, RequestClass};
    pub use datacase_policy::enforcer::PolicyEpoch;
    pub use datacase_server::{Client, Server, TenantSpec};
    pub use datacase_sim::time::{Dur, Ts};
    pub use datacase_sim::{CostModel, Meter, MeterSnapshot, SimClock};
    pub use datacase_workloads::opstream::Op;
    pub use datacase_workloads::record::GdprMetadata;
}
