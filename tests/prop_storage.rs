//! Property-based tests over the storage substrates at workspace level.

use proptest::prelude::*;

use data_case::sim::{Meter, SimClock};
use data_case::storage::heap::HeapDb;
use data_case::storage::lsm::{LsmConfig, LsmTree};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The heap equals a reference map under arbitrary interleavings of
    /// insert/update/delete/hide/vacuum/vacuum-full, and the forensic
    /// invariant holds: after VACUUM, no deleted payload remains on file
    /// pages.
    #[test]
    fn heap_model_equivalence_with_maintenance(
        ops in proptest::collection::vec(
            (0u64..30, 0u8..6, proptest::collection::vec(1u8..=255, 8..32)), 1..120)
    ) {
        let mut db = HeapDb::default_single();
        let mut model: std::collections::HashMap<u64, (Vec<u8>, bool)> = Default::default();
        for (key, op, payload) in ops {
            match op {
                0 => {
                    let r = db.insert(key, key, &payload);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                        prop_assert!(r.is_ok());
                        e.insert((payload, false));
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                1 => {
                    let r = db.update(key, &payload);
                    match model.get_mut(&key) {
                        Some(entry) => {
                            prop_assert!(r.is_ok());
                            entry.0 = payload;
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                2 => {
                    let r = db.delete(key);
                    prop_assert_eq!(r.is_ok(), model.remove(&key).is_some());
                }
                3 => {
                    let r = db.set_hidden(key, true);
                    match model.get_mut(&key) {
                        Some(entry) => {
                            prop_assert!(r.is_ok());
                            entry.1 = true;
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                4 => {
                    db.vacuum();
                }
                _ => {
                    db.vacuum_full();
                }
            }
        }
        for (k, (v, hidden)) in &model {
            let visible = db.read(*k, false);
            let any = db.read(*k, true);
            prop_assert_eq!(any.as_deref(), Some(v.as_slice()), "key {}", k);
            if *hidden {
                prop_assert_eq!(visible, None);
            } else {
                prop_assert_eq!(visible.as_deref(), Some(v.as_slice()));
            }
        }
        let visible_count = model.values().filter(|(_, h)| !h).count();
        let mut scanned = 0usize;
        db.seq_scan(|_, _, _| scanned += 1);
        prop_assert_eq!(scanned, visible_count);
    }

    /// Vacuum after deletes always wipes the deleted payloads from the
    /// file level (WAL retention is separate and expected).
    #[test]
    fn vacuum_wipes_deleted_payloads(keys in proptest::collection::vec(0u64..50, 1..40)) {
        let mut db = HeapDb::default_single();
        let marker = b"WIPE-MARKER-";
        let mut inserted = std::collections::HashSet::new();
        for &k in &keys {
            if inserted.insert(k) {
                let mut payload = marker.to_vec();
                payload.extend_from_slice(&k.to_le_bytes());
                db.insert(k, k, &payload).unwrap();
            }
        }
        for &k in &inserted {
            db.delete(k).unwrap();
        }
        db.vacuum();
        db.checkpoint();
        prop_assert!(db.disk().scan_raw(marker).is_empty(),
            "vacuumed payloads must not remain on pages");
    }

    /// LSM full compaction removes every tombstoned payload physically.
    #[test]
    fn lsm_compaction_drops_all_shadowed(
        ops in proptest::collection::vec((0u64..20, any::<bool>()), 1..100)
    ) {
        let mut t = LsmTree::new(
            LsmConfig { memtable_bytes: 256, runs_per_level: 2, ..LsmConfig::default() },
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        let marker = b"LSM-SHADOW";
        let mut live: std::collections::HashSet<u64> = Default::default();
        for (k, put) in ops {
            if put {
                let mut v = marker.to_vec();
                v.extend_from_slice(&k.to_le_bytes());
                t.put(k, k, &v);
                live.insert(k);
            } else {
                t.delete(k, k);
                live.remove(&k);
            }
        }
        t.compact_all();
        let residuals = t.scan_physical(marker);
        prop_assert_eq!(residuals, live.len(),
            "only live values may remain after full compaction");
        for k in 0..20u64 {
            prop_assert_eq!(t.get(k).is_some(), live.contains(&k), "key {}", k);
        }
    }
}
