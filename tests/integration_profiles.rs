//! Cross-crate integration: the three compliance profiles end to end.

use data_case::core::regulation::Regulation;
use data_case::engine::db::{Actor, CompliantDb, OpResult};
use data_case::engine::driver::run_ops;
use data_case::engine::profiles::{EngineConfig, ProfileKind};
use data_case::engine::space::SpaceReport;
use data_case::workloads::gdprbench::{GdprBench, Mix};
use data_case::workloads::opstream::Op;
use data_case::workloads::ycsb::{Ycsb, YcsbWorkload};

fn loaded(profile: ProfileKind, records: usize, seed: u64) -> (CompliantDb, GdprBench) {
    let mut db = CompliantDb::new(EngineConfig::for_profile(profile));
    let mut bench = GdprBench::new(seed, 100);
    for op in bench.load_phase(records) {
        assert_eq!(db.execute(&op, Actor::Controller), OpResult::Done);
    }
    (db, bench)
}

#[test]
fn per_op_cost_ordering_holds_on_wcus() {
    let mut sims = Vec::new();
    for profile in ProfileKind::PAPER {
        let (mut db, mut bench) = loaded(profile, 400, 7);
        let ops = bench.ops(800, Mix::wcus());
        let stats = run_ops(&mut db, &ops, Actor::Subject);
        sims.push((profile, stats.simulated));
    }
    assert!(
        sims[0].1 < sims[1].1 && sims[1].1 < sims[2].1,
        "expected P_Base < P_GBench < P_SYS, got {sims:?}"
    );
}

#[test]
fn ycsb_c_runs_on_all_profiles_with_zero_denials() {
    for profile in ProfileKind::PAPER {
        let mut db = CompliantDb::new(EngineConfig::for_profile(profile));
        let mut y = Ycsb::new(3, 300);
        for op in y.load_phase() {
            db.execute(&op, Actor::Controller);
        }
        let ops = y.ops(600, YcsbWorkload::C);
        let stats = run_ops(&mut db, &ops, Actor::Processor);
        assert_eq!(stats.denied, 0, "{profile:?}");
        assert_eq!(stats.ops, 600);
    }
}

#[test]
fn all_profiles_stay_gdpr_compliant_under_wcus() {
    for profile in ProfileKind::PAPER {
        let (mut db, mut bench) = loaded(profile, 200, 11);
        let ops = bench.ops(400, Mix::wcus());
        run_ops(&mut db, &ops, Actor::Subject);
        let report = db.compliance_report(&Regulation::gdpr());
        assert!(
            report.is_compliant(),
            "{profile:?}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn space_factors_ordered_and_psys_policy_heavy() {
    let mut factors = Vec::new();
    for profile in ProfileKind::PAPER {
        let (db, _) = loaded(profile, 400, 23);
        let r = SpaceReport::measure(&db);
        factors.push((profile, r.space_factor(), r.policy_bytes));
    }
    assert!(factors[0].1 < factors[1].1, "{factors:?}");
    assert!(factors[1].1 < factors[2].1, "{factors:?}");
    assert!(
        factors[2].2 > 10 * factors[0].2.max(1),
        "Sieve metadata dominates"
    );
}

#[test]
fn wcon_controller_workload_executes_cleanly() {
    let (mut db, mut bench) = loaded(ProfileKind::PGBench, 300, 31);
    let ops = bench.ops(400, Mix::wcon());
    let stats = run_ops(&mut db, &ops, Actor::Controller);
    assert_eq!(stats.denied, 0, "controller ops should all be authorised");
}

#[test]
fn wpro_metadata_scans_return_rows() {
    let (mut db, mut bench) = loaded(ProfileKind::PBase, 500, 41);
    let ops = bench.ops(300, Mix::wpro());
    let mut rows_seen = 0usize;
    for op in &ops {
        if let Op::ReadByMetadata { .. } = op {
            if let OpResult::Rows(n) = db.execute(op, Actor::Processor) {
                rows_seen += n;
            }
        } else {
            db.execute(op, Actor::Processor);
        }
    }
    assert!(rows_seen > 0, "metadata-based reads must surface data");
}

#[test]
fn sharded_driver_agrees_with_sequential_results() {
    let config = EngineConfig::for_profile(ProfileKind::PBase);
    let mut bench = GdprBench::new(53, 100);
    let load = bench.load_phase(300);
    let txns = bench.ops(300, Mix::wcus());
    let run = data_case::engine::driver::sharded_run(&config, &load, &txns, Actor::Subject, 3);
    assert_eq!(run.total_ops(), 300);
    for s in &run.shards {
        assert!(s.denied + s.not_found <= s.ops);
    }
    // The shards share one meter: the aggregate work snapshot covers the
    // whole fleet (300 load creates alone log 300 audit records).
    assert!(run.work.log_records >= 300);
}
