//! Cross-crate integration: the three compliance profiles end to end,
//! driven batch-first through the session frontend.

use data_case::engine::driver::{run_ops, sharded_run_plan, ShardPlan};
use data_case::engine::space::SpaceReport;
use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};
use data_case::workloads::ycsb::{Ycsb, YcsbWorkload};

fn loaded(profile: ProfileKind, records: usize, seed: u64) -> (Frontend, GdprBench) {
    let mut fe = Frontend::new(EngineConfig::for_profile(profile));
    let mut bench = GdprBench::new(seed, 100);
    for r in fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(records)) {
        assert!(r.is_done(), "{:?}", r.outcome);
    }
    (fe, bench)
}

#[test]
fn per_op_cost_ordering_holds_on_wcus() {
    let mut sims = Vec::new();
    for profile in ProfileKind::PAPER {
        let (mut fe, mut bench) = loaded(profile, 400, 7);
        let ops = bench.ops(800, Mix::wcus());
        let stats = run_ops(&mut fe, &ops, Actor::Subject);
        sims.push((profile, stats.simulated));
    }
    assert!(
        sims[0].1 < sims[1].1 && sims[1].1 < sims[2].1,
        "expected P_Base < P_GBench < P_SYS, got {sims:?}"
    );
}

#[test]
fn ycsb_c_runs_on_all_profiles_with_zero_denials() {
    for profile in ProfileKind::PAPER {
        let mut fe = Frontend::new(EngineConfig::for_profile(profile));
        let mut y = Ycsb::new(3, 300);
        fe.submit_ops(&Session::new(Actor::Controller), &y.load_phase());
        let ops = y.ops(600, YcsbWorkload::C);
        let stats = run_ops(&mut fe, &ops, Actor::Processor);
        assert_eq!(stats.denied, 0, "{profile:?}");
        assert_eq!(stats.ops, 600);
    }
}

#[test]
fn all_profiles_stay_gdpr_compliant_under_wcus() {
    for profile in ProfileKind::PAPER {
        let (mut fe, mut bench) = loaded(profile, 200, 11);
        let ops = bench.ops(400, Mix::wcus());
        run_ops(&mut fe, &ops, Actor::Subject);
        let report = fe.compliance_report(&Regulation::gdpr());
        assert!(
            report.is_compliant(),
            "{profile:?}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn space_factors_ordered_and_psys_policy_heavy() {
    let mut factors = Vec::new();
    for profile in ProfileKind::PAPER {
        let (fe, _) = loaded(profile, 400, 23);
        let r = SpaceReport::measure(&fe);
        factors.push((profile, r.space_factor(), r.policy_bytes));
    }
    assert!(factors[0].1 < factors[1].1, "{factors:?}");
    assert!(factors[1].1 < factors[2].1, "{factors:?}");
    assert!(
        factors[2].2 > 10 * factors[0].2.max(1),
        "Sieve metadata dominates"
    );
}

#[test]
fn wcon_controller_workload_executes_cleanly() {
    let (mut fe, mut bench) = loaded(ProfileKind::PGBench, 300, 31);
    let ops = bench.ops(400, Mix::wcon());
    let stats = run_ops(&mut fe, &ops, Actor::Controller);
    assert_eq!(stats.denied, 0, "controller ops should all be authorised");
}

#[test]
fn wpro_metadata_scans_return_rows() {
    let (mut fe, mut bench) = loaded(ProfileKind::PBase, 500, 41);
    let ops = bench.ops(300, Mix::wpro());
    let processor = Session::new(Actor::Processor);
    let mut rows_seen = 0usize;
    for r in fe.submit_ops(&processor, &ops) {
        if let Some(n) = r.rows() {
            rows_seen += n;
        }
    }
    assert!(rows_seen > 0, "metadata-based reads must surface data");
}

#[test]
fn sharded_driver_agrees_with_sequential_results() {
    let config = EngineConfig::for_profile(ProfileKind::PBase);
    let mut bench = GdprBench::new(53, 100);
    let load = bench.load_phase(300);
    let txns = bench.ops(300, Mix::wcus());
    let run = data_case::engine::driver::sharded_run(&config, &load, &txns, Actor::Subject, 3);
    assert_eq!(run.total_ops(), 300);
    for s in &run.shards {
        assert!(s.denied + s.not_found + s.expired + s.failed <= s.ops);
    }
    // The shards share one meter: the aggregate work snapshot covers the
    // whole fleet (300 load creates alone log 300 audit records).
    assert!(run.work.log_records >= 300);
}

#[test]
fn heterogeneous_shard_plan_mixes_backends_in_one_job() {
    // The ROADMAP's per-shard backend choice: a hot heap shard next to
    // LSM capacity shards, one sharded job, same enforcement outcomes.
    let config = EngineConfig::for_profile(ProfileKind::PBase);
    let mut bench = GdprBench::new(67, 100);
    let load = bench.load_phase(300);
    let txns = bench.ops(300, Mix::wcus());
    let plan = ShardPlan::of(&[BackendKind::Heap, BackendKind::Lsm, BackendKind::Lsm]);
    let run = sharded_run_plan(&config, &load, &txns, Actor::Subject, &plan);
    assert_eq!(run.shards.len(), 3);
    assert_eq!(run.total_ops(), 300);
    assert!(run.work.log_records >= 300);
}
