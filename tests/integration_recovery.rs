//! Crash-recovery integration: the heap rebuilt from its WAL matches the
//! pre-crash logical state, under workload-shaped data.

use std::sync::Arc;

use data_case::sim::{Meter, SimClock};
use data_case::storage::heap::{HeapConfig, HeapDb};
use data_case::workloads::gdprbench::{GdprBench, Mix};
use data_case::workloads::opstream::Op;

#[test]
fn recovery_after_workload_matches_logical_state() {
    let mut db = HeapDb::new(
        HeapConfig::default(),
        SimClock::commodity(),
        Arc::new(Meter::new()),
    );
    let mut bench = GdprBench::new(7, 50);
    let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
    for op in bench.load_phase(300) {
        if let Op::Create { key, payload, .. } = op {
            db.insert(key, key, &payload).unwrap();
            model.insert(key, payload);
        }
    }
    for op in bench.ops(300, Mix::wcus()) {
        match op {
            Op::UpdateData { key, payload } if db.update(key, &payload).is_ok() => {
                model.insert(key, payload);
            }
            Op::DeleteData { key } if db.delete(key).is_ok() => {
                model.remove(&key);
            }
            _ => {}
        }
    }
    db.crash(); // lose all buffered pages
    let recovered = HeapDb::recover(
        db.wal_records(),
        HeapConfig::default(),
        SimClock::commodity(),
        Arc::new(Meter::new()),
    );
    let mut r = recovered;
    for (k, v) in &model {
        assert_eq!(r.read(*k, false).as_deref(), Some(v.as_slice()), "key {k}");
    }
    let mut live = 0usize;
    r.seq_scan(|_, _, _| live += 1);
    assert_eq!(live, model.len());
}

#[test]
fn recovery_preserves_hidden_flags() {
    let mut db = HeapDb::default_single();
    db.insert(1, 1, b"visible").unwrap();
    db.insert(2, 2, b"hidden").unwrap();
    db.set_hidden(2, true).unwrap();
    db.crash();
    let mut r = HeapDb::recover(
        db.wal_records(),
        HeapConfig::default(),
        SimClock::commodity(),
        Arc::new(Meter::new()),
    );
    assert_eq!(r.read(1, false).unwrap(), b"visible");
    assert_eq!(r.read(2, false), None, "hidden flag survives recovery");
    assert_eq!(r.read(2, true).unwrap(), b"hidden");
}

#[test]
fn recovery_replays_vacuum_marks() {
    let mut db = HeapDb::default_single();
    for i in 0..50u64 {
        db.insert(i, i, &[i as u8; 40]).unwrap();
    }
    for i in 0..20u64 {
        db.delete(i).unwrap();
    }
    db.vacuum();
    db.crash();
    let mut r = HeapDb::recover(
        db.wal_records(),
        HeapConfig::default(),
        SimClock::commodity(),
        Arc::new(Meter::new()),
    );
    for i in 0..20u64 {
        assert_eq!(r.read(i, false), None);
    }
    for i in 20..50u64 {
        assert!(r.read(i, false).is_some());
    }
}
