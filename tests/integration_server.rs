//! Cross-crate integration: the multi-tenant gateway over real loopback
//! sockets, on both storage backends.
//!
//! The tenant-isolation gate: two tenants share one concurrent engine
//! through the wire protocol, and the suite proves
//!
//! * cross-tenant reads are denied — by the gateway's keyspace
//!   namespacing at the wire, and by the engine's session scope even for
//!   a caller holding a raw engine handle;
//! * per-tenant erasure leaves zero forensic residuals for the erased
//!   tenant and zero spillover into the surviving tenant;
//! * every shard's tamper-evident audit chain verifies independently
//!   after shutdown, and the grounded `TenantIsolation` invariant (X)
//!   holds over the final state on heap and LSM alike;
//! * graceful shutdown drains in-flight connections: replies issued
//!   while the server is shutting down still arrive, none are lost, and
//!   the merged audit chain head matches a serial replay of the
//!   recorded submit stamps.

use data_case::core::tenant::TenantId;
use data_case::prelude::*;
use data_case::server::{Client, Server, TenantSpec};
use data_case::storage::backend::BackendKind;
use data_case::workloads::opstream::MetaSelector;

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("acme", "a-token"),
        TenantSpec::new("globex", "g-token"),
    ]
}

fn metadata(subject: u32) -> GdprMetadata {
    GdprMetadata {
        subject,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: Ts::from_secs(1_000_000),
        origin_device: 1,
        objects_to_sharing: false,
    }
}

fn create(key: u64, payload: &[u8], subject: u32) -> Request {
    Request::Create {
        key,
        payload: payload.to_vec(),
        metadata: metadata(subject),
    }
}

#[test]
fn cross_tenant_reads_are_denied_on_both_backends() {
    for backend in BackendKind::ALL {
        let server = Server::spawn(EngineConfig::p_base().with_backend(backend), 2, &tenants());

        // Both tenants use the SAME local keys and subject ids — the
        // sharpest aliasing case the namespacing must keep apart.
        let mut acme =
            Client::connect(server.addr(), "acme", "a-token", Actor::Controller).unwrap();
        let mut globex =
            Client::connect(server.addr(), "globex", "g-token", Actor::Controller).unwrap();
        for key in 0..4u64 {
            let r = acme.call(&[create(key, &[b'a'; 11], 1)]).unwrap();
            assert!(r[0].outcome.is_ok(), "{backend:?}: acme create: {r:?}");
            let r = globex.call(&[create(key, &[b'g'; 22], 1)]).unwrap();
            assert!(r[0].outcome.is_ok(), "{backend:?}: globex create: {r:?}");
        }

        // Each tenant reads its own bytes back under the shared local key.
        let r = acme.call(&[Request::Read { key: 2 }]).unwrap();
        assert_eq!(r[0].outcome, Ok(Reply::Value(11)), "{backend:?}");
        let r = globex.call(&[Request::Read { key: 2 }]).unwrap();
        assert_eq!(r[0].outcome, Ok(Reply::Value(22)), "{backend:?}");

        // Metadata scans are confined too: both tenants registered
        // subject 1, and each sees exactly its own four rows.
        let scan = Request::ReadByMeta {
            selector: MetaSelector::BySubject(1),
        };
        let r = acme.call(std::slice::from_ref(&scan)).unwrap();
        assert_eq!(r[0].outcome, Ok(Reply::Rows(4)), "{backend:?}");
        let r = globex.call(&[scan]).unwrap();
        assert_eq!(r[0].outcome, Ok(Reply::Rows(4)), "{backend:?}");

        // A missing key reports the tenant-local number, not the global one.
        let r = acme.call(&[Request::Read { key: 99 }]).unwrap();
        assert_eq!(r[0].outcome, Err(EngineError::NotFound { key: 99 }));

        // The wire cannot even *name* another tenant's block: a local key
        // past the 32-bit block is a protocol error — and because the
        // frame was well-formed, the connection survives it.
        let out_of_block = acme.call(&[Request::Read { key: 1 << 32 }]);
        assert!(
            matches!(&out_of_block, Err(e) if e.to_string().contains("tenant-local")),
            "{backend:?}: {out_of_block:?}"
        );
        let r = acme.call(&[Request::Read { key: 0 }]).unwrap();
        assert!(r[0].outcome.is_ok(), "connection survives a protocol error");

        // Even a caller holding a raw engine handle is stopped by the
        // session scope: an acme-scoped session cannot read globex's
        // global key.
        let handle = server.engine_handle();
        let acme_session = Session::new(Actor::Controller).scoped(TenantId(1).key_range());
        let globex_global = TenantId(2).global_key(2).unwrap();
        let (responses, _) = handle
            .submit(&acme_session, &[Request::Read { key: globex_global }])
            .wait();
        assert_eq!(
            responses[0].outcome,
            Err(EngineError::Denied {
                reason: "key outside session scope".into()
            }),
            "{backend:?}"
        );

        acme.goodbye().unwrap();
        globex.goodbye().unwrap();
        server.shutdown();
    }
}

#[test]
fn per_tenant_erasure_has_zero_residuals_and_zero_spillover() {
    for backend in BackendKind::ALL {
        // Plaintext tuples so the forensic scans can see payload markers.
        let mut config = EngineConfig::p_sys().with_backend(backend);
        config.tuple_encryption = None;
        let server = Server::spawn(config, 2, &tenants());

        let mut acme =
            Client::connect(server.addr(), "acme", "a-token", Actor::Controller).unwrap();
        let mut globex =
            Client::connect(server.addr(), "globex", "g-token", Actor::Controller).unwrap();
        for key in 0..6u64 {
            acme.call(&[create(key, format!("person=acme-{key}").as_bytes(), 1)])
                .unwrap();
            globex
                .call(&[create(key, format!("person=globex-{key}").as_bytes(), 1)])
                .unwrap();
        }

        // Acme exercises its right to erasure, over the wire, for every
        // one of its records — with globex's aliased local keys untouched.
        let erases: Vec<Request> = (0..6u64)
            .map(|key| Request::Erase {
                key,
                interpretation: ErasureInterpretation::PermanentlyDeleted,
            })
            .collect();
        let r = acme.call(&erases).unwrap();
        assert!(
            r.iter().all(|resp| resp.outcome.is_ok()),
            "{backend:?}: erasure outcomes: {r:?}"
        );

        acme.goodbye().unwrap();
        globex.goodbye().unwrap();
        let mut frontends = server.shutdown();

        // Zero residuals for the erased tenant, across every shard and
        // every persistent layer; zero spillover into the survivor.
        let acme_residuals: usize = frontends
            .iter_mut()
            .map(|fe| fe.forensic().scan(b"person=acme").total())
            .sum();
        let globex_residuals: usize = frontends
            .iter_mut()
            .map(|fe| fe.forensic().scan(b"person=globex").total())
            .sum();
        assert_eq!(acme_residuals, 0, "{backend:?}: erased tenant residuals");
        assert!(
            globex_residuals >= 6,
            "{backend:?}: surviving tenant lost data ({globex_residuals} markers)"
        );

        // Every shard's tamper-evident audit chain verifies on its own,
        // and the grounded TenantIsolation invariant holds on the final
        // state, history, and subject registry.
        for (shard, fe) in frontends.iter_mut().enumerate() {
            assert!(
                fe.forensic().verify_chain(),
                "{backend:?}: shard {shard} audit chain failed verification"
            );
            let report = fe.compliance_report(&Regulation::gdpr());
            assert!(
                report.of_invariant("X").is_empty(),
                "{backend:?}: shard {shard} violates TenantIsolation: {:?}",
                report.of_invariant("X")
            );
        }
    }
}

#[test]
fn graceful_shutdown_drains_replies_and_replays_serially() {
    let shards = 2usize;
    let config = || EngineConfig::p_base().with_backend(BackendKind::Heap);
    let server = Server::spawn(config(), shards, &tenants());
    let addr = server.addr();

    // Two concurrent tenants, each firing single-shard batches (all keys
    // in a batch share parity, and the tenant block offset preserves
    // `key % shards`) so every reply carries exactly one submit stamp.
    type Recorded = Vec<(SubmitStamp, usize, Vec<Request>, Vec<Response>)>;
    let mut recorded: Recorded = Vec::new();
    let mut total_requests = 0usize;
    std::thread::scope(|scope| {
        let joins: Vec<_> = [("acme", "a-token"), ("globex", "g-token")]
            .iter()
            .enumerate()
            .map(|(t, (name, token))| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, name, token, Actor::Controller).unwrap();
                    let mut log = Vec::new();
                    for step in 0..6u64 {
                        let parity = (t as u64 + step) % shards as u64;
                        let batch: Vec<Request> = (0..4u64)
                            .map(|i| {
                                let key = 100 * step + i * shards as u64 + parity;
                                create(key, format!("unit-{t}-{key}").as_bytes(), 1 + t as u32)
                            })
                            .collect();
                        let (responses, stamps) = client.call_stamped(&batch).unwrap();
                        assert_eq!(stamps.len(), 1, "single-shard batch, one stamp");
                        assert_eq!(responses.len(), batch.len(), "no reply lost");
                        log.push((stamps[0], t, batch, responses));
                    }
                    client.goodbye().unwrap();
                    log
                })
            })
            .collect();

        // Begin graceful shutdown while both connections are mid-stream:
        // it must block until every in-flight batch is answered.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut frontends = server.shutdown();
        let live_head = merged_chain_head(&mut frontends);

        for join in joins {
            recorded.extend(join.join().unwrap());
        }
        total_requests = recorded.iter().map(|(_, _, b, _)| b.len()).sum();
        let total_replies: usize = recorded.iter().map(|(_, _, _, r)| r.len()).sum();
        assert_eq!(
            total_replies, total_requests,
            "a drained reply went missing"
        );
        assert!(
            recorded
                .iter()
                .all(|(_, _, _, r)| r.iter().all(|resp| resp.outcome.is_ok())),
            "all creates succeed"
        );

        // Serial witness: re-namespace the recorded local batches exactly
        // as the gateway did, sort by (shard, seq) stamp, and replay them
        // one at a time on a fresh engine under the same scoped sessions.
        recorded.sort_by_key(|(stamp, _, _, _)| *stamp);
        let replay = ConcurrentEngine::new(config(), shards);
        let sessions: Vec<Session> = (0..2u32)
            .map(|t| Session::new(Actor::Controller).scoped(TenantId(t + 1).key_range()))
            .collect();
        for (stamp, t, local, live_responses) in &recorded {
            let tenant = TenantId(*t as u32 + 1);
            let global: Vec<Request> = local
                .iter()
                .map(|r| match r {
                    Request::Create {
                        key,
                        payload,
                        metadata,
                    } => {
                        let mut metadata = metadata.clone();
                        metadata.subject = tenant.global_subject(metadata.subject).unwrap();
                        Request::Create {
                            key: tenant.global_key(*key).unwrap(),
                            payload: payload.clone(),
                            metadata,
                        }
                    }
                    other => panic!("unexpected request in replay: {other:?}"),
                })
                .collect();
            let (serial_responses, stamps) = replay.submit(&sessions[*t], &global).wait();
            assert_eq!(stamps[0], *stamp, "replay follows the recorded order");
            assert_eq!(
                &serial_responses, live_responses,
                "served replies replay serially"
            );
        }
        let mut serial = replay.shutdown();
        assert_eq!(
            merged_chain_head(&mut serial),
            live_head,
            "merged audit chain head is byte-identical to the serial replay"
        );
    });
    assert_eq!(total_requests, 2 * 6 * 4);
}
