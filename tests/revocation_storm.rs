//! Regression test: a revocation storm across concurrent sessions must
//! never serve a post-revocation allow from a stale cached decision.
//!
//! Shape of the storm: many client threads warm the shared engine's
//! decision caches on a victim record and keep batches in flight while
//! one session executes an Art. 17 erasure of that record. The erasure
//! revokes the unit's policies and bumps the policy epoch on the owning
//! shard (a global-scope mutation would additionally ride the engine-wide
//! epoch bus); every warm cached allow for that unit class is stranded by
//! the epoch check at its next lookup. Requests that were in flight when
//! the erase landed may linearize on either side of it — but any read
//! submitted *after* the eraser's ticket completed is guaranteed to
//! serialize after the erase on the victim's shard, and must come back
//! denied or retention-expired, never `Ok`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::GdprBench;

#[test]
fn revocation_storm_never_serves_stale_allows() {
    for backend in BackendKind::ALL {
        let config = EngineConfig::p_sys()
            .with_backend(backend)
            .with_decision_cache(4096);
        let engine = ConcurrentEngine::new(config, 3);
        let controller = Session::new(Actor::Controller);
        let mut bench = GdprBench::new(11, 60);
        let load: Vec<Request> = bench.load_phase(60).iter().map(Request::from).collect();
        for r in engine.handle().call(&controller, &load) {
            assert!(
                r.outcome.is_ok(),
                "{backend:?}: load failed: {:?}",
                r.outcome
            );
        }

        const VICTIM: u64 = 17;
        const READERS: usize = 5;
        let warmed = Barrier::new(READERS + 1);
        let erased = AtomicBool::new(false);
        let settled = Barrier::new(READERS + 1);

        std::thread::scope(|scope| {
            // Sessions B..K: warm the decision cache on the victim, keep
            // read batches in flight through the storm, then verify that
            // nothing submitted after the erase completed slips through.
            for reader in 0..READERS {
                let handle = engine.handle();
                let warmed = &warmed;
                let erased = &erased;
                let settled = &settled;
                scope.spawn(move || {
                    let session = Session::new(Actor::Processor);
                    let mine: Vec<Request> = (0..6)
                        .map(|i| Request::Read {
                            key: (reader as u64 * 6 + i) % 60,
                        })
                        .chain(std::iter::once(Request::Read { key: VICTIM }))
                        .collect();
                    for r in handle.call(&session, &mine) {
                        assert!(
                            r.outcome.is_ok(),
                            "{backend:?}: warm-up read failed: {:?}",
                            r.outcome
                        );
                    }
                    warmed.wait();
                    // Storm: reads race the erase; either linearization
                    // is legal for these, so only liveness is asserted.
                    while !erased.load(Ordering::Acquire) {
                        let responses = handle.call(&session, &mine);
                        assert_eq!(responses.len(), mine.len());
                    }
                    settled.wait();
                    // Post-revocation: these serialize after the erase on
                    // the victim's shard. A stale cached allow would
                    // surface as Ok (or as NotFound after reaching the
                    // backend); the epoch check must yield a typed denial.
                    for r in handle.call(&session, &[Request::Read { key: VICTIM }]) {
                        match r.outcome {
                            Err(EngineError::Denied { .. })
                            | Err(EngineError::RetentionExpired { .. }) => {}
                            other => panic!(
                                "{backend:?}: post-revocation read served from a stale \
                                 decision: {other:?}"
                            ),
                        }
                    }
                });
            }

            // Session A: the eraser.
            warmed.wait();
            let erase = Request::Erase {
                key: VICTIM,
                interpretation: ErasureInterpretation::PermanentlyDeleted,
            };
            let responses = engine
                .handle()
                .call(&controller, std::slice::from_ref(&erase));
            assert!(
                matches!(responses[0].outcome, Ok(Reply::Erased(_))),
                "{backend:?}: erase failed: {:?}",
                responses[0].outcome
            );
            erased.store(true, Ordering::Release);
            settled.wait();
        });

        engine.shutdown();
    }
}
