//! Backend parity: the compliance layer's behaviour and its erasure
//! groundings hold identically over the heap and the LSM substrates.
//!
//! This is the paper's core claim made executable — regulation groundings
//! must hold *independently of the underlying data processing system* —
//! so these tests run the same request streams and the same erasure
//! requests over both [`BackendKind`]s and demand agreement.

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};

/// Collapse payload sizes and error details: outcomes agree modulo the
/// byte count and the erasure timestamp (the two substrates store
/// identical payloads but charge different simulated costs, so absolute
/// times differ; the contract only promises agreement of outcomes).
fn normalize(r: &Response) -> String {
    match &r.outcome {
        Ok(Reply::Value(_)) => "value".into(),
        Ok(other) => format!("{other:?}"),
        Err(e) => e.label().into(),
    }
}

#[test]
fn response_sequences_agree_between_backends() {
    // Every enforcing profile, on a mixed customer stream with deletes:
    // request-by-request outcome parity between the heap- and LSM-backed
    // engines.
    for profile in ProfileKind::PAPER {
        let mut results: Vec<Vec<String>> = Vec::new();
        let mut streams: Vec<Vec<Op>> = Vec::new();
        for backend in BackendKind::ALL {
            let mut config = EngineConfig::for_profile(profile).with_backend(backend);
            config.maintenance_every = 40;
            let mut fe = Frontend::new(config);
            let mut bench = GdprBench::new(91, 100);
            let mut ops = bench.load_phase(200);
            ops.extend(bench.ops(400, Mix::wcus()));
            let rs: Vec<String> = fe
                .submit_ops(&Session::new(Actor::Subject), &ops)
                .iter()
                .map(normalize)
                .collect();
            results.push(rs);
            streams.push(ops);
        }
        assert_eq!(streams[0], streams[1], "generator must be deterministic");
        let first_divergence = results[0]
            .iter()
            .zip(&results[1])
            .position(|(a, b)| a != b)
            .map(|i| (i, &streams[0][i], &results[0][i], &results[1][i]));
        assert!(
            first_divergence.is_none(),
            "{profile:?}: heap and LSM diverged at {first_divergence:?}"
        );
    }
}

#[test]
fn tombstone_strategy_hides_reversibly_on_both_backends() {
    for backend in BackendKind::ALL {
        let mut config =
            EngineConfig::stock(DeleteStrategy::TombstoneAttribute).with_backend(backend);
        config.maintenance_every = u64::MAX;
        let mut fe = Frontend::new(config);
        let controller = Session::new(Actor::Controller);
        let metadata = GdprMetadata {
            subject: 9,
            purpose: data_case::core::purpose::well_known::billing(),
            ttl: Ts::from_secs(1_000_000),
            origin_device: 0,
            objects_to_sharing: false,
        };
        fe.run(
            &controller,
            Request::Create {
                key: 1,
                payload: b"reversibly-hidden-bytes".to_vec(),
                metadata,
            },
        );
        fe.run(&controller, Request::Delete { key: 1 });
        let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 1 });
        assert!(
            r.err().is_some_and(EngineError::is_retention_expired),
            "{backend:?}: hidden from normal reads as retention-expired: {:?}",
            r.outcome
        );
        assert_eq!(
            fe.forensic().raw_read(1, true).unwrap(),
            b"reversibly-hidden-bytes",
            "{backend:?}: controller view keeps the payload"
        );
        let f = fe.forensic().scan(b"reversibly-hidden-bytes");
        assert!(
            f.online(),
            "{backend:?}: the bytes are physically present ({})",
            f.describe()
        );
    }
}

#[test]
fn subject_erasure_leaves_zero_residuals_on_both_backends() {
    // A whole subject's records erased under the strictest grounding:
    // the forensic scanner must find nothing on either substrate. Each
    // backend runs its strict delete strategy for the workload deletes
    // (heap: DELETE + VACUUM FULL; LSM: the same strategy grounded as
    // tombstone + full compaction).
    for backend in BackendKind::ALL {
        let mut config = EngineConfig::p_sys().with_backend(backend);
        config.tuple_encryption = None; // plaintext so residuals are findable
        config.delete_strategy = DeleteStrategy::DeleteVacuumFull;
        let mut fe = Frontend::new(config);
        let controller = Session::new(Actor::Controller);
        let needle = b"ERASE-SUBJECT-7-TRACE";
        let subject_keys = [1u64, 2, 3];
        for &key in &subject_keys {
            let metadata = GdprMetadata {
                subject: 7,
                purpose: data_case::core::purpose::well_known::smart_space(),
                ttl: Ts::from_secs(1_000_000),
                origin_device: 1,
                objects_to_sharing: false,
            };
            let mut payload = needle.to_vec();
            payload.extend_from_slice(format!("-record-{key}").as_bytes());
            assert!(fe
                .run(
                    &controller,
                    Request::Create {
                        key,
                        payload,
                        metadata
                    }
                )
                .is_done());
        }
        // Unrelated bystander record that must survive untouched.
        let bystander = GdprMetadata {
            subject: 8,
            purpose: data_case::core::purpose::well_known::billing(),
            ttl: Ts::from_secs(1_000_000),
            origin_device: 2,
            objects_to_sharing: false,
        };
        fe.run(
            &controller,
            Request::Create {
                key: 100,
                payload: b"BYSTANDER-RECORD".to_vec(),
                metadata: bystander,
            },
        );
        fe.forensic().checkpoint();
        assert!(
            fe.forensic().scan(needle).any(),
            "{backend:?}: data at rest first"
        );

        // The erasure requests go through the session frontend like any
        // other compliance request — one batch, three responses.
        let erasures: Batch = subject_keys
            .iter()
            .map(|&key| Request::Erase {
                key,
                interpretation: ErasureInterpretation::PermanentlyDeleted,
            })
            .collect();
        for r in fe.submit(&controller, &erasures) {
            assert!(
                r.outcome.is_ok(),
                "{backend:?}: erasure must execute: {:?}",
                r.outcome
            );
        }
        let f = fe.forensic().scan(needle);
        assert_eq!(
            f.total(),
            0,
            "{backend:?}: permanent deletion left residuals: {}",
            f.describe()
        );
        // The bystander is intact and readable.
        assert!(
            fe.run(&Session::new(Actor::Processor), Request::Read { key: 100 })
                .value()
                .is_some(),
            "{backend:?}: bystander must survive"
        );
        assert!(fe.forensic().scan(b"BYSTANDER-RECORD").online());
    }
}

#[test]
fn backend_stats_share_one_vocabulary() {
    for backend in BackendKind::ALL {
        let mut fe = Frontend::new(EngineConfig::p_base().with_backend(backend));
        let mut bench = GdprBench::new(17, 50);
        let controller = Session::new(Actor::Controller);
        fe.submit_ops(&controller, &bench.load_phase(120));
        let deletes: Batch = (0..30u64).map(|key| Request::Delete { key }).collect();
        fe.submit(&controller, &deletes);
        fe.forensic().checkpoint();
        let s = fe.backend_stats();
        assert_eq!(s.live_entries, 90, "{backend:?}: {s:?}");
        assert!(s.disk_bytes > 0, "{backend:?}");
        assert!(s.segments > 0, "{backend:?}");
    }
}
