//! Backend parity: the compliance layer's behaviour and its erasure
//! groundings hold identically over the heap and the LSM substrates.
//!
//! This is the paper's core claim made executable — regulation groundings
//! must hold *independently of the underlying data processing system* —
//! so these tests run the same op streams and the same erasure requests
//! over both [`BackendKind`]s and demand agreement.

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::engine::db::{Actor, CompliantDb, OpResult};
use data_case::engine::erasure::erase_now;
use data_case::engine::profiles::{DeleteStrategy, EngineConfig, ProfileKind};
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};
use data_case::workloads::opstream::Op;
use data_case::workloads::record::GdprMetadata;

/// Collapse payload sizes: reads agree modulo the byte count (the two
/// substrates store identical payloads, but the contract only promises
/// agreement of outcomes).
fn normalize(r: &OpResult) -> String {
    match r {
        OpResult::Value(_) => "value".into(),
        other => format!("{other:?}"),
    }
}

#[test]
fn op_result_sequences_agree_between_backends() {
    // Every enforcing profile, on a mixed customer stream with deletes:
    // op-by-op outcome parity between the heap- and LSM-backed engines.
    for profile in ProfileKind::PAPER {
        let mut results: Vec<Vec<String>> = Vec::new();
        let mut streams: Vec<Vec<Op>> = Vec::new();
        for backend in BackendKind::ALL {
            let mut config = EngineConfig::for_profile(profile).with_backend(backend);
            config.maintenance_every = 40;
            let mut db = CompliantDb::new(config);
            let mut bench = GdprBench::new(91, 100);
            let mut ops = bench.load_phase(200);
            ops.extend(bench.ops(400, Mix::wcus()));
            let rs: Vec<String> = ops
                .iter()
                .map(|op| normalize(&db.execute(op, Actor::Subject)))
                .collect();
            results.push(rs);
            streams.push(ops);
        }
        assert_eq!(streams[0], streams[1], "generator must be deterministic");
        let first_divergence = results[0]
            .iter()
            .zip(&results[1])
            .position(|(a, b)| a != b)
            .map(|i| (i, &streams[0][i], &results[0][i], &results[1][i]));
        assert!(
            first_divergence.is_none(),
            "{profile:?}: heap and LSM diverged at {first_divergence:?}"
        );
    }
}

#[test]
fn tombstone_strategy_hides_reversibly_on_both_backends() {
    for backend in BackendKind::ALL {
        let mut config =
            EngineConfig::stock(DeleteStrategy::TombstoneAttribute).with_backend(backend);
        config.maintenance_every = u64::MAX;
        let mut db = CompliantDb::new(config);
        let metadata = GdprMetadata {
            subject: 9,
            purpose: data_case::core::purpose::well_known::billing(),
            ttl: data_case::sim::time::Ts::from_secs(1_000_000),
            origin_device: 0,
            objects_to_sharing: false,
        };
        db.execute(
            &Op::Create {
                key: 1,
                payload: b"reversibly-hidden-bytes".to_vec(),
                metadata,
            },
            Actor::Controller,
        );
        db.execute(&Op::DeleteData { key: 1 }, Actor::Controller);
        assert_eq!(
            db.execute(&Op::ReadData { key: 1 }, Actor::Processor),
            OpResult::NotFound,
            "{backend:?}: hidden from normal reads"
        );
        assert_eq!(
            db.backend_mut().read(1, true).unwrap(),
            b"reversibly-hidden-bytes",
            "{backend:?}: controller view keeps the payload"
        );
        let f = db.forensic(b"reversibly-hidden-bytes");
        assert!(
            f.online(),
            "{backend:?}: the bytes are physically present ({})",
            f.describe()
        );
    }
}

#[test]
fn subject_erasure_leaves_zero_residuals_on_both_backends() {
    // A whole subject's records erased under the strictest grounding:
    // the forensic scanner must find nothing on either substrate. Each
    // backend runs its strict delete strategy for the workload deletes
    // (heap: DELETE + VACUUM FULL; LSM: the same strategy grounded as
    // tombstone + full compaction).
    for backend in BackendKind::ALL {
        let mut config = EngineConfig::p_sys().with_backend(backend);
        config.tuple_encryption = None; // plaintext so residuals are findable
        config.delete_strategy = DeleteStrategy::DeleteVacuumFull;
        let mut db = CompliantDb::new(config);
        let needle = b"ERASE-SUBJECT-7-TRACE";
        let subject_keys = [1u64, 2, 3];
        for &key in &subject_keys {
            let metadata = GdprMetadata {
                subject: 7,
                purpose: data_case::core::purpose::well_known::smart_space(),
                ttl: data_case::sim::time::Ts::from_secs(1_000_000),
                origin_device: 1,
                objects_to_sharing: false,
            };
            let mut payload = needle.to_vec();
            payload.extend_from_slice(format!("-record-{key}").as_bytes());
            assert_eq!(
                db.execute(
                    &Op::Create {
                        key,
                        payload,
                        metadata
                    },
                    Actor::Controller
                ),
                OpResult::Done
            );
        }
        // Unrelated bystander record that must survive untouched.
        let bystander = GdprMetadata {
            subject: 8,
            purpose: data_case::core::purpose::well_known::billing(),
            ttl: data_case::sim::time::Ts::from_secs(1_000_000),
            origin_device: 2,
            objects_to_sharing: false,
        };
        db.execute(
            &Op::Create {
                key: 100,
                payload: b"BYSTANDER-RECORD".to_vec(),
                metadata: bystander,
            },
            Actor::Controller,
        );
        db.backend_mut().checkpoint();
        assert!(db.forensic(needle).any(), "{backend:?}: data at rest first");

        for &key in &subject_keys {
            assert!(
                erase_now(&mut db, key, ErasureInterpretation::PermanentlyDeleted),
                "{backend:?}: erasure must execute for key {key}"
            );
        }
        let f = db.forensic(needle);
        assert_eq!(
            f.total(),
            0,
            "{backend:?}: permanent deletion left residuals: {}",
            f.describe()
        );
        // The bystander is intact and readable.
        assert!(
            matches!(
                db.execute(&Op::ReadData { key: 100 }, Actor::Processor),
                OpResult::Value(_)
            ),
            "{backend:?}: bystander must survive"
        );
        assert!(db.forensic(b"BYSTANDER-RECORD").online());
    }
}

#[test]
fn backend_stats_share_one_vocabulary() {
    for backend in BackendKind::ALL {
        let mut db = CompliantDb::new(EngineConfig::p_base().with_backend(backend));
        let mut bench = GdprBench::new(17, 50);
        for op in bench.load_phase(120) {
            db.execute(&op, Actor::Controller);
        }
        for key in 0..30u64 {
            db.execute(&Op::DeleteData { key }, Actor::Controller);
        }
        db.backend_mut().checkpoint();
        let s = db.backend_stats();
        assert_eq!(s.live_entries, 90, "{backend:?}: {s:?}");
        assert!(s.disk_bytes > 0, "{backend:?}");
        assert!(s.segments > 0, "{backend:?}");
    }
}
