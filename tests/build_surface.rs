//! Smoke tests for the build surface itself.
//!
//! `cargo build --examples` and `cargo bench --no-run` (both run in CI)
//! prove the example and bench targets *compile*; these tests guard the
//! declarations those commands depend on, so a renamed file or a dropped
//! `[[bench]]` entry fails `cargo test` loudly instead of silently
//! shrinking the built surface.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rs_stems(dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| p.file_stem().expect("stem").to_string_lossy().into_owned())
        .collect()
}

const EXAMPLES: &[&str] = &[
    "compliance_by_construction",
    "metaspace_case_study",
    "multinational",
    "pipelined_batches",
    "policy_audit",
    "quickstart",
    "right_to_be_forgotten",
    "served_engine",
];

const BENCHES: &[&str] = &[
    "ablation_crypto_erasure",
    "ablation_lsm_retention",
    "ablation_policy_index",
    "ablation_vacuum_period",
    "backend_matrix",
    "crypto_throughput",
    "fig4a_erasure_interpretations",
    "fig4b_profiles",
    "fig4c_scalability",
    "micro_substrates",
    "mt_throughput",
    "pipeline_throughput",
    "server_throughput",
    "table1_erasure_actions",
    "table2_space_factor",
];

#[test]
fn all_examples_present() {
    let found = rs_stems(&repo_root().join("examples"));
    let expected: BTreeSet<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "examples/ drifted from the documented example set; update \
         tests/build_surface.rs and the README together"
    );
}

#[test]
fn all_bench_targets_present_and_declared() {
    let root = repo_root();
    let found = rs_stems(&root.join("crates/bench/benches"));
    let expected: BTreeSet<String> = BENCHES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "crates/bench/benches/ drifted from the documented bench set"
    );

    // Criterion targets must opt out of libtest's harness, or
    // `cargo bench` fails at runtime even though `--no-run` compiles.
    // Parse per-[[bench]] sections rather than substring-matching the whole
    // manifest, so [[bin]] entries and comments can't satisfy the check.
    let manifest = std::fs::read_to_string(root.join("crates/bench/Cargo.toml"))
        .expect("crates/bench/Cargo.toml");
    let declared: BTreeSet<String> = manifest
        .split("[[bench]]")
        .skip(1)
        .map(|section| {
            let name = section
                .lines()
                .find_map(|l| l.trim().strip_prefix("name = \""))
                .and_then(|rest| rest.strip_suffix('"'))
                .expect("[[bench]] section without a name")
                .to_string();
            let harness_off = section.lines().any(|l| l.trim() == "harness = false");
            assert!(harness_off, "[[bench]] {name} is missing harness = false");
            name
        })
        .collect();
    assert_eq!(
        declared, expected,
        "[[bench]] declarations drifted from the bench files on disk"
    );
}

#[test]
fn workspace_members_and_vendored_deps_exist() {
    let root = repo_root();
    for krate in [
        "audit",
        "bench",
        "core",
        "crypto",
        "engine",
        "policy",
        "server",
        "sim",
        "storage",
        "workloads",
    ] {
        let manifest = root.join("crates").join(krate).join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "missing manifest {}",
            manifest.display()
        );
    }
    // The offline build depends on these in-tree stand-ins resolving; see
    // [workspace.dependencies] in the root manifest.
    for dep in ["bytes", "criterion", "proptest", "rand"] {
        let manifest = root.join("vendor").join(dep).join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "missing vendored dep {}",
            manifest.display()
        );
    }
    assert!(
        root.join("rust-toolchain.toml").is_file(),
        "rust-toolchain.toml pin missing"
    );
}
