//! Property-based parity suite for the session frontend: submitting one
//! batch of *n* requests must be indistinguishable from *n* single-request
//! submissions — same reply stream, same work-meter counters, same
//! forensic residuals — on **both** storage backends. This is the
//! contract that makes the drivers' batch-first execution safe: batching
//! amortizes boundary crossings, never semantics.

use proptest::prelude::*;

use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};

/// One full run: load `records`, then execute `txns` WCus requests in
/// submissions of `batch_size`. Returns the outcome stream, the meter
/// counters, and the count of forensic residuals for the workload's
/// payload marker.
fn run(
    backend: BackendKind,
    profile: ProfileKind,
    seed: u64,
    records: usize,
    txns: usize,
    batch_size: usize,
) -> (Vec<Result<Reply, EngineError>>, MeterSnapshot, usize) {
    let mut config = EngineConfig::for_profile(profile).with_backend(backend);
    config.maintenance_every = 25;
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(seed, 60);
    let controller = Session::new(Actor::Controller);
    let subject = Session::new(Actor::Subject);
    let mut outcomes = Vec::new();
    for chunk in bench.load_phase(records).chunks(batch_size) {
        for r in fe.submit_ops(&controller, chunk) {
            outcomes.push(r.outcome);
        }
    }
    for chunk in bench.ops(txns, Mix::wcus()).chunks(batch_size) {
        for r in fe.submit_ops(&subject, chunk) {
            outcomes.push(r.outcome);
        }
    }
    let work = fe.meter().snapshot();
    // GDPRBench payloads embed a "person=" marker; the residual count is
    // the physical-retention fingerprint of the whole run.
    let residuals = fe.forensic().scan(b"person=").total();
    (outcomes, work, residuals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch-submit ≡ sequential-execute, on heap and LSM: the reply
    /// stream, the meter snapshot, and the forensic-residual count all
    /// agree between single-request submissions and arbitrary batch
    /// sizes.
    #[test]
    fn batch_submit_matches_sequential_execute(
        seed in 0u64..10_000,
        batch_size in 2usize..96,
        txns in 40usize..120,
    ) {
        for backend in BackendKind::ALL {
            for profile in [ProfileKind::PBase, ProfileKind::PSys] {
                let sequential = run(backend, profile, seed, 60, txns, 1);
                let batched = run(backend, profile, seed, 60, txns, batch_size);
                prop_assert_eq!(
                    &sequential.0,
                    &batched.0,
                    "{:?}/{:?}: reply streams diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
                prop_assert_eq!(
                    sequential.1,
                    batched.1,
                    "{:?}/{:?}: meter snapshots diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
                prop_assert_eq!(
                    sequential.2,
                    batched.2,
                    "{:?}/{:?}: forensic residuals diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
            }
        }
    }

    /// The erasure compliance path obeys the same parity: a batch of
    /// erase requests equals one-by-one erasure, down to the forensic
    /// residual count.
    #[test]
    fn erase_batches_match_sequential_erasure(
        seed in 0u64..10_000,
        erased_keys in proptest::collection::vec(0u64..40, 1..12),
    ) {
        for backend in BackendKind::ALL {
            let mk = || {
                let mut config = EngineConfig::p_sys().with_backend(backend);
                config.tuple_encryption = None;
                let mut fe = Frontend::new(config);
                let mut bench = GdprBench::new(seed, 60);
                fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(40));
                fe
            };
            let controller = Session::new(Actor::Controller);
            let requests: Vec<Request> = erased_keys
                .iter()
                .map(|&key| Request::Erase {
                    key,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                })
                .collect();

            let mut fe_seq = mk();
            let seq: Vec<_> = requests
                .iter()
                .map(|r| fe_seq.run(&controller, r.clone()).outcome)
                .collect();
            let seq_residuals = fe_seq.forensic().scan(b"person=").total();

            let mut fe_batch = mk();
            let batch: Vec<_> = fe_batch
                .submit(&controller, &Batch::from(requests))
                .into_iter()
                .map(|r| r.outcome)
                .collect();
            let batch_residuals = fe_batch.forensic().scan(b"person=").total();

            prop_assert_eq!(&seq, &batch, "{:?}: erase outcomes diverged", backend);
            prop_assert_eq!(
                seq_residuals,
                batch_residuals,
                "{:?}: erase residuals diverged",
                backend
            );
        }
    }
}
