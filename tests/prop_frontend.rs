//! Property-based parity suite for the session frontend.
//!
//! Two contracts are enforced, on **both** storage backends:
//!
//! * **Batch parity** — submitting one batch of *n* requests must be
//!   indistinguishable from *n* single-request submissions: same reply
//!   stream, same work-meter counters, same forensic residuals. This is
//!   what makes the drivers' batch-first execution safe.
//! * **Pipeline parity** — executing through the staged batch pipeline
//!   (plan → decide → apply → account, with read waves fanned out across
//!   worker threads) must be indistinguishable from plain serial
//!   execution, down to the **bytes of the audit chain**: every record's
//!   sequence number, timestamp, and payload must match, or the chain
//!   heads diverge. Pipelining amortizes wall-clock time, never
//!   semantics.

use proptest::prelude::*;

use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};

/// One full run: load `records`, then execute `txns` WCus requests in
/// submissions of `batch_size`, with the pipeline forced on or off and a
/// decision cache of `cache` entries. Returns the outcome stream, the
/// meter counters, the count of forensic residuals for the workload's
/// payload marker, and the audit chain's head MAC.
#[allow(clippy::too_many_arguments)]
fn run(
    backend: BackendKind,
    profile: ProfileKind,
    seed: u64,
    records: usize,
    txns: usize,
    batch_size: usize,
    pipeline: bool,
    cache: usize,
) -> (
    Vec<Result<Reply, EngineError>>,
    MeterSnapshot,
    usize,
    [u8; 32],
) {
    let mut config = EngineConfig::for_profile(profile)
        .with_backend(backend)
        .with_pipeline(pipeline)
        .with_decision_cache(cache);
    config.maintenance_every = 25;
    // Force several apply-stage workers so the scoped-thread fan-out path
    // is exercised (and proven identical) regardless of host core count,
    // and drop the byte threshold so these small GDPRBench payloads
    // actually cross it.
    config.pipeline_workers = 3;
    config.pipeline_fanout_bytes = 0;
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(seed, 60);
    let controller = Session::new(Actor::Controller);
    let subject = Session::new(Actor::Subject);
    let mut outcomes = Vec::new();
    for chunk in bench.load_phase(records).chunks(batch_size) {
        for r in fe.submit_ops(&controller, chunk) {
            outcomes.push(r.outcome);
        }
    }
    for chunk in bench.ops(txns, Mix::wcus()).chunks(batch_size) {
        for r in fe.submit_ops(&subject, chunk) {
            outcomes.push(r.outcome);
        }
    }
    let work = fe.meter().snapshot();
    let chain = fe.forensic().chain_head();
    // GDPRBench payloads embed a "person=" marker; the residual count is
    // the physical-retention fingerprint of the whole run.
    let residuals = fe.forensic().scan(b"person=").total();
    (outcomes, work, residuals, chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch-submit ≡ sequential-execute, on heap and LSM: the reply
    /// stream, the meter snapshot, and the forensic-residual count all
    /// agree between single-request submissions and arbitrary batch
    /// sizes.
    #[test]
    fn batch_submit_matches_sequential_execute(
        seed in 0u64..10_000,
        batch_size in 2usize..96,
        txns in 40usize..120,
    ) {
        for backend in BackendKind::ALL {
            for profile in [ProfileKind::PBase, ProfileKind::PSys] {
                let sequential = run(backend, profile, seed, 60, txns, 1, true, 0);
                let batched = run(backend, profile, seed, 60, txns, batch_size, true, 0);
                prop_assert_eq!(
                    &sequential.0,
                    &batched.0,
                    "{:?}/{:?}: reply streams diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
                prop_assert_eq!(
                    sequential.1,
                    batched.1,
                    "{:?}/{:?}: meter snapshots diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
                prop_assert_eq!(
                    sequential.2,
                    batched.2,
                    "{:?}/{:?}: forensic residuals diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
            }
        }
    }

    /// Pipeline parity: with the pipeline forced on and off over the same
    /// request stream (and with or without the decision cache), replies,
    /// meter counters, forensic residuals, **and the audit chain's
    /// bytes** all agree — every record's sequence number, timestamp, and
    /// payload is identical, or the chain-head MACs would diverge.
    #[test]
    fn pipeline_on_and_off_produce_identical_runs_and_audit_chains(
        seed in 0u64..10_000,
        batch_size in 24usize..128,
        txns in 60usize..160,
        cached in proptest::bool::ANY,
    ) {
        let cache = if cached { 1024 } else { 0 };
        for backend in BackendKind::ALL {
            for profile in [ProfileKind::PBase, ProfileKind::PSys] {
                let serial = run(backend, profile, seed, 60, txns, batch_size, false, cache);
                let piped = run(backend, profile, seed, 60, txns, batch_size, true, cache);
                prop_assert_eq!(
                    &serial.0,
                    &piped.0,
                    "{:?}/{:?}: reply streams diverged between modes",
                    backend,
                    profile
                );
                prop_assert_eq!(
                    serial.1,
                    piped.1,
                    "{:?}/{:?}: meter snapshots diverged between modes",
                    backend,
                    profile
                );
                prop_assert_eq!(
                    serial.2,
                    piped.2,
                    "{:?}/{:?}: forensic residuals diverged between modes",
                    backend,
                    profile
                );
                prop_assert_eq!(
                    serial.3,
                    piped.3,
                    "{:?}/{:?}: audit chains are not byte-identical between modes",
                    backend,
                    profile
                );
            }
        }
    }

    /// The erasure compliance path obeys the same parity: a batch of
    /// erase requests equals one-by-one erasure, down to the forensic
    /// residual count.
    #[test]
    fn erase_batches_match_sequential_erasure(
        seed in 0u64..10_000,
        erased_keys in proptest::collection::vec(0u64..40, 1..12),
    ) {
        for backend in BackendKind::ALL {
            let mk = || {
                let mut config = EngineConfig::p_sys().with_backend(backend);
                config.tuple_encryption = None;
                let mut fe = Frontend::new(config);
                let mut bench = GdprBench::new(seed, 60);
                fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(40));
                fe
            };
            let controller = Session::new(Actor::Controller);
            let requests: Vec<Request> = erased_keys
                .iter()
                .map(|&key| Request::Erase {
                    key,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                })
                .collect();

            let mut fe_seq = mk();
            let seq: Vec<_> = requests
                .iter()
                .map(|r| fe_seq.run(&controller, r.clone()).outcome)
                .collect();
            let seq_residuals = fe_seq.forensic().scan(b"person=").total();

            let mut fe_batch = mk();
            let batch: Vec<_> = fe_batch
                .submit(&controller, &Batch::from(requests))
                .into_iter()
                .map(|r| r.outcome)
                .collect();
            prop_assert_eq!(
                fe_seq.forensic().chain_head(),
                fe_batch.forensic().chain_head(),
                "{:?}: erase audit chains diverged",
                backend
            );
            let batch_residuals = fe_batch.forensic().scan(b"person=").total();

            prop_assert_eq!(&seq, &batch, "{:?}: erase outcomes diverged", backend);
            prop_assert_eq!(
                seq_residuals,
                batch_residuals,
                "{:?}: erase residuals diverged",
                backend
            );
        }
    }
}
