//! Property-based parity suite for the session frontend.
//!
//! Two contracts are enforced, on **both** storage backends:
//!
//! * **Batch parity** — submitting one batch of *n* requests must be
//!   indistinguishable from *n* single-request submissions: same reply
//!   stream, same work-meter counters, same forensic residuals. This is
//!   what makes the drivers' batch-first execution safe.
//! * **Pipeline parity** — executing through the staged batch pipeline
//!   (plan → decide → apply → account, with read waves fanned out across
//!   worker threads) must be indistinguishable from plain serial
//!   execution, down to the **bytes of the audit chain**: every record's
//!   sequence number, timestamp, and payload must match, or the chain
//!   heads diverge. Pipelining amortizes wall-clock time, never
//!   semantics.
//! * **Multi-session parity** — interleaved batches from ≥3 concurrent
//!   sessions through the sharded [`ConcurrentEngine`] must replay
//!   serially: the (shard, seq) stamps recorded by the concurrent run,
//!   re-executed one submission at a time, reproduce every reply, the
//!   forensic residual census, and the merged audit chain byte for byte.
//!   This is the linearizability gate for the concurrent frontend.

use proptest::prelude::*;

use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};

/// Per-submission `(responses, stamps)` pairs in firing order.
type StampedReplies = Vec<(Vec<Response>, Vec<SubmitStamp>)>;

/// One multi-session run against the sharded concurrent engine: load
/// through the handle, then fire `schedule`-ordered sub-batches from
/// `sessions` interleaved sessions. With `overlap` every ticket is
/// submitted before any is redeemed, so shard queues back up and workers
/// fuse cross-session bursts through one staged pipeline; without it each
/// ticket is awaited immediately — the serial witness with the identical
/// per-shard arrival order. Returns the per-submission responses and
/// stamps (in firing order), the engine-wide forensic residual count, and
/// the merged audit chain head.
fn concurrent_run(
    backend: BackendKind,
    seed: u64,
    sessions: usize,
    shards: usize,
    schedule: &[usize],
    overlap: bool,
) -> (StampedReplies, usize, [u8; 32]) {
    let config = EngineConfig::p_base()
        .with_backend(backend)
        .with_decision_cache(1024);
    let engine = ConcurrentEngine::new(config, shards);
    let handle = engine.handle();
    let controller = Session::new(Actor::Controller);
    let mut bench = GdprBench::new(seed, 60);
    let load: Vec<Request> = bench.load_phase(50).iter().map(Request::from).collect();
    handle.submit(&controller, &load).wait();
    // Per-session request streams, pre-chunked into sub-batches. Actors
    // rotate so enforcement sees genuinely different sessions.
    let actors = [Actor::Subject, Actor::Processor, Actor::Controller];
    let streams: Vec<(Session, Vec<Vec<Request>>)> = (0..sessions)
        .map(|s| {
            let chunks = bench
                .ops(24, Mix::wcus())
                .chunks(6)
                .map(|c| c.iter().map(Request::from).collect())
                .collect();
            (Session::new(actors[s % actors.len()]), chunks)
        })
        .collect();
    let mut cursors = vec![0usize; sessions];
    let mut fired = Vec::new();
    let mut tickets = Vec::new();
    for &s in schedule {
        let (session, chunks) = &streams[s];
        let Some(batch) = chunks.get(cursors[s]) else {
            continue;
        };
        cursors[s] += 1;
        let ticket = handle.submit(session, batch);
        if overlap {
            tickets.push(ticket);
        } else {
            fired.push(ticket.wait());
        }
    }
    fired.extend(tickets.into_iter().map(Ticket::wait));
    drop(handle);
    let mut frontends = engine.shutdown();
    let head = merged_chain_head(&mut frontends);
    let residuals = frontends
        .iter_mut()
        .map(|fe| fe.forensic().scan(b"person=").total())
        .sum();
    (fired, residuals, head)
}

/// One full run: load `records`, then execute `txns` WCus requests in
/// submissions of `batch_size`, with the pipeline forced on or off and a
/// decision cache of `cache` entries. Returns the outcome stream, the
/// meter counters, the count of forensic residuals for the workload's
/// payload marker, and the audit chain's head MAC.
#[allow(clippy::too_many_arguments)]
fn run(
    backend: BackendKind,
    profile: ProfileKind,
    seed: u64,
    records: usize,
    txns: usize,
    batch_size: usize,
    pipeline: bool,
    cache: usize,
) -> (
    Vec<Result<Reply, EngineError>>,
    MeterSnapshot,
    usize,
    [u8; 32],
) {
    let mut config = EngineConfig::for_profile(profile)
        .with_backend(backend)
        .with_pipeline(pipeline)
        .with_decision_cache(cache);
    config.maintenance_every = 25;
    // Force several apply-stage workers so the scoped-thread fan-out path
    // is exercised (and proven identical) regardless of host core count,
    // and drop the byte threshold so these small GDPRBench payloads
    // actually cross it.
    config.pipeline_workers = 3;
    config.pipeline_fanout_bytes = 0;
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(seed, 60);
    let controller = Session::new(Actor::Controller);
    let subject = Session::new(Actor::Subject);
    let mut outcomes = Vec::new();
    for chunk in bench.load_phase(records).chunks(batch_size) {
        for r in fe.submit_ops(&controller, chunk) {
            outcomes.push(r.outcome);
        }
    }
    for chunk in bench.ops(txns, Mix::wcus()).chunks(batch_size) {
        for r in fe.submit_ops(&subject, chunk) {
            outcomes.push(r.outcome);
        }
    }
    let work = fe.meter().snapshot();
    let chain = fe.forensic().chain_head();
    // GDPRBench payloads embed a "person=" marker; the residual count is
    // the physical-retention fingerprint of the whole run.
    let residuals = fe.forensic().scan(b"person=").total();
    (outcomes, work, residuals, chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch-submit ≡ sequential-execute, on heap and LSM: the reply
    /// stream, the meter snapshot, and the forensic-residual count all
    /// agree between single-request submissions and arbitrary batch
    /// sizes.
    #[test]
    fn batch_submit_matches_sequential_execute(
        seed in 0u64..10_000,
        batch_size in 2usize..96,
        txns in 40usize..120,
    ) {
        for backend in BackendKind::ALL {
            for profile in [ProfileKind::PBase, ProfileKind::PSys] {
                let sequential = run(backend, profile, seed, 60, txns, 1, true, 0);
                let batched = run(backend, profile, seed, 60, txns, batch_size, true, 0);
                prop_assert_eq!(
                    &sequential.0,
                    &batched.0,
                    "{:?}/{:?}: reply streams diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
                prop_assert_eq!(
                    sequential.1,
                    batched.1,
                    "{:?}/{:?}: meter snapshots diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
                prop_assert_eq!(
                    sequential.2,
                    batched.2,
                    "{:?}/{:?}: forensic residuals diverged (batch={})",
                    backend,
                    profile,
                    batch_size
                );
            }
        }
    }

    /// Pipeline parity: with the pipeline forced on and off over the same
    /// request stream (and with or without the decision cache), replies,
    /// meter counters, forensic residuals, **and the audit chain's
    /// bytes** all agree — every record's sequence number, timestamp, and
    /// payload is identical, or the chain-head MACs would diverge.
    #[test]
    fn pipeline_on_and_off_produce_identical_runs_and_audit_chains(
        seed in 0u64..10_000,
        batch_size in 24usize..128,
        txns in 60usize..160,
        cached in proptest::bool::ANY,
    ) {
        let cache = if cached { 1024 } else { 0 };
        for backend in BackendKind::ALL {
            for profile in [ProfileKind::PBase, ProfileKind::PSys] {
                let serial = run(backend, profile, seed, 60, txns, batch_size, false, cache);
                let piped = run(backend, profile, seed, 60, txns, batch_size, true, cache);
                prop_assert_eq!(
                    &serial.0,
                    &piped.0,
                    "{:?}/{:?}: reply streams diverged between modes",
                    backend,
                    profile
                );
                prop_assert_eq!(
                    serial.1,
                    piped.1,
                    "{:?}/{:?}: meter snapshots diverged between modes",
                    backend,
                    profile
                );
                prop_assert_eq!(
                    serial.2,
                    piped.2,
                    "{:?}/{:?}: forensic residuals diverged between modes",
                    backend,
                    profile
                );
                prop_assert_eq!(
                    serial.3,
                    piped.3,
                    "{:?}/{:?}: audit chains are not byte-identical between modes",
                    backend,
                    profile
                );
            }
        }
    }

    /// The erasure compliance path obeys the same parity: a batch of
    /// erase requests equals one-by-one erasure, down to the forensic
    /// residual count.
    #[test]
    fn erase_batches_match_sequential_erasure(
        seed in 0u64..10_000,
        erased_keys in proptest::collection::vec(0u64..40, 1..12),
    ) {
        for backend in BackendKind::ALL {
            let mk = || {
                let mut config = EngineConfig::p_sys().with_backend(backend);
                config.tuple_encryption = None;
                let mut fe = Frontend::new(config);
                let mut bench = GdprBench::new(seed, 60);
                fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(40));
                fe
            };
            let controller = Session::new(Actor::Controller);
            let requests: Vec<Request> = erased_keys
                .iter()
                .map(|&key| Request::Erase {
                    key,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                })
                .collect();

            let mut fe_seq = mk();
            let seq: Vec<_> = requests
                .iter()
                .map(|r| fe_seq.run(&controller, r.clone()).outcome)
                .collect();
            let seq_residuals = fe_seq.forensic().scan(b"person=").total();

            let mut fe_batch = mk();
            let batch: Vec<_> = fe_batch
                .submit(&controller, &Batch::from(requests))
                .into_iter()
                .map(|r| r.outcome)
                .collect();
            prop_assert_eq!(
                fe_seq.forensic().chain_head(),
                fe_batch.forensic().chain_head(),
                "{:?}: erase audit chains diverged",
                backend
            );
            let batch_residuals = fe_batch.forensic().scan(b"person=").total();

            prop_assert_eq!(&seq, &batch, "{:?}: erase outcomes diverged", backend);
            prop_assert_eq!(
                seq_residuals,
                batch_residuals,
                "{:?}: erase residuals diverged",
                backend
            );
        }
    }

    /// Multi-session parity: ≥3 sessions firing interleaved sub-batches
    /// into the sharded concurrent engine — tickets outstanding
    /// simultaneously, shard workers fusing cross-session bursts — must be
    /// indistinguishable from replaying the same per-shard arrival order
    /// one submission at a time: same replies, same (shard, seq) stamps,
    /// same forensic residuals, and a byte-identical merged audit chain.
    /// On heap and LSM both.
    #[test]
    fn multi_session_interleavings_replay_serially(
        seed in 0u64..10_000,
        sessions in 3usize..6,
        schedule in proptest::collection::vec(0usize..6, 10..24),
    ) {
        for backend in BackendKind::ALL {
            let schedule: Vec<usize> = schedule.iter().map(|&s| s % sessions).collect();
            let concurrent = concurrent_run(backend, seed, sessions, 3, &schedule, true);
            let serial = concurrent_run(backend, seed, sessions, 3, &schedule, false);
            prop_assert_eq!(
                &concurrent.0,
                &serial.0,
                "{:?}: concurrent replies or stamps diverged from serial replay",
                backend
            );
            prop_assert_eq!(
                concurrent.1,
                serial.1,
                "{:?}: forensic residuals diverged",
                backend
            );
            prop_assert_eq!(
                concurrent.2,
                serial.2,
                "{:?}: merged audit chains are not byte-identical",
                backend
            );
        }
    }
}
