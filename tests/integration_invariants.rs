//! Cross-crate integration: the invariant catalog against engine-produced
//! model state, including violation injection and multinational verdicts.

use data_case::core::action::Action;
use data_case::core::history::HistoryTuple;
use data_case::prelude::*;
use data_case::workloads::gdprbench::{GdprBench, Mix};

fn loaded(profile: ProfileKind) -> Frontend {
    let mut fe = Frontend::new(EngineConfig::for_profile(profile));
    let mut bench = GdprBench::new(99, 50);
    fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(100));
    fe.submit_ops(&Session::new(Actor::Subject), &bench.ops(150, Mix::wcus()));
    fe
}

#[test]
fn engine_run_passes_full_gdpr_catalog() {
    let mut fe = loaded(ProfileKind::PSys);
    let report = fe.compliance_report(&Regulation::gdpr());
    assert!(
        report.is_compliant(),
        "{:?}",
        &report.violations[..report.violations.len().min(5)]
    );
    assert_eq!(report.outcomes.len(), 12);
}

#[test]
fn injected_rogue_read_breaks_g6_and_iv_only() {
    let mut fe = loaded(ProfileKind::PBase);
    let unit = fe.unit_of_key(5).expect("loaded");
    let rogue = fe.entities().by_name("AdPartner").unwrap().id;
    let at = fe.clock().now();
    fe.forensic().inject_history(HistoryTuple {
        unit,
        purpose: data_case::core::purpose::well_known::advertising(),
        entity: rogue,
        action: Action::Read,
        at,
    });
    let report = fe.compliance_report(&Regulation::gdpr());
    assert!(!report.is_compliant());
    assert_eq!(report.of_invariant("G6").len(), 1);
    assert_eq!(report.of_invariant("IV").len(), 1);
    assert!(report.of_invariant("G17").is_empty());
    assert!(report.of_invariant("I").is_empty());
}

#[test]
fn overdue_erasure_breaks_g17() {
    let mut fe = Frontend::new(EngineConfig::p_base());
    let controller = Session::new(Actor::Controller);
    let metadata = GdprMetadata {
        subject: 2,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: Ts::from_secs(10),
        origin_device: 0,
        objects_to_sharing: false,
    };
    fe.run(
        &controller,
        Request::Create {
            key: 1,
            payload: b"soon-overdue".to_vec(),
            metadata,
        },
    );
    // Let the deadline + grace pass without erasing.
    fe.clock().advance_to(Ts::from_secs(30 * 24 * 3600));
    let report = fe.compliance_report(&Regulation::gdpr());
    assert!(!report.is_compliant());
    assert!(!report.of_invariant("G17").is_empty());
    // Erase and the violation clears.
    assert!(fe
        .run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::Deleted,
            },
        )
        .outcome
        .is_ok());
    let after = fe.compliance_report(&Regulation::gdpr());
    // The erase happened after the grace window, so the record-keeping
    // side is satisfied but G17 still flags lateness… unless the erase
    // action stands. Our grounding accepts any erase ≤ now with status
    // satisfied — the late erase leaves a breach of timeliness only if
    // recorded later than due; assert the *status* violation cleared.
    assert!(after
        .of_invariant("G17")
        .iter()
        .all(|v| !v.message.contains("regulation requires")));
}

#[test]
fn multinational_verdicts_differ_by_grounding() {
    // Deleted (plain) satisfies GDPR & CCPA but not the strict member
    // state that grounds erasure as strong deletion.
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut fe = Frontend::new(config);
    let controller = Session::new(Actor::Controller);
    let metadata = GdprMetadata {
        subject: 9,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: Ts::from_secs(3600),
        origin_device: 1,
        objects_to_sharing: false,
    };
    fe.run(
        &controller,
        Request::Create {
            key: 1,
            payload: b"cross-border".to_vec(),
            metadata,
        },
    );
    assert!(fe
        .run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::Deleted,
            },
        )
        .outcome
        .is_ok());
    fe.clock().advance_to(Ts::from_secs(90 * 24 * 3600));

    assert!(fe.compliance_report(&Regulation::gdpr()).is_compliant());
    assert!(fe.compliance_report(&Regulation::ccpa()).is_compliant());
    assert!(!fe
        .compliance_report(&Regulation::gdpr_strict_member_state())
        .is_compliant());
}

#[test]
fn ccpa_does_not_require_assessments() {
    // A CCPA-only deployment that never records DPIAs still passes (III is
    // not enforced), while GDPR flags nothing either since the engine
    // records assessments at startup.
    let mut fe = loaded(ProfileKind::PBase);
    let ccpa = fe.compliance_report(&Regulation::ccpa());
    assert!(ccpa.is_compliant());
    assert!(!ccpa.outcomes.iter().any(|o| o.id == "III"));
}

#[test]
fn audit_chain_feeds_invariant_ix() {
    let mut fe = loaded(ProfileKind::PSys);
    assert!(fe.forensic().verify_chain());
    let report = fe.compliance_report(&Regulation::gdpr());
    assert!(report.of_invariant("IX").is_empty());
}
