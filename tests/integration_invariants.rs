//! Cross-crate integration: the invariant catalog against engine-produced
//! model state, including violation injection and multinational verdicts.

use data_case::core::action::Action;
use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::history::HistoryTuple;
use data_case::core::regulation::Regulation;
use data_case::engine::db::{Actor, CompliantDb};
use data_case::engine::erasure::erase_now;
use data_case::engine::profiles::{EngineConfig, ProfileKind};
use data_case::workloads::gdprbench::{GdprBench, Mix};
use data_case::workloads::opstream::Op;
use data_case::workloads::record::GdprMetadata;

fn loaded(profile: ProfileKind) -> CompliantDb {
    let mut db = CompliantDb::new(EngineConfig::for_profile(profile));
    let mut bench = GdprBench::new(99, 50);
    for op in bench.load_phase(100) {
        db.execute(&op, Actor::Controller);
    }
    let ops = bench.ops(150, Mix::wcus());
    for op in &ops {
        db.execute(op, Actor::Subject);
    }
    db
}

#[test]
fn engine_run_passes_full_gdpr_catalog() {
    let mut db = loaded(ProfileKind::PSys);
    let report = db.compliance_report(&Regulation::gdpr());
    assert!(
        report.is_compliant(),
        "{:?}",
        &report.violations[..report.violations.len().min(5)]
    );
    assert_eq!(report.outcomes.len(), 11);
}

#[test]
fn injected_rogue_read_breaks_g6_and_iv_only() {
    let mut db = loaded(ProfileKind::PBase);
    let unit = db.unit_of_key(5).expect("loaded");
    let rogue = db.entities().by_name("AdPartner").unwrap().id;
    db.record_history(HistoryTuple {
        unit,
        purpose: data_case::core::purpose::well_known::advertising(),
        entity: rogue,
        action: Action::Read,
        at: db.clock().now(),
    });
    let report = db.compliance_report(&Regulation::gdpr());
    assert!(!report.is_compliant());
    assert_eq!(report.of_invariant("G6").len(), 1);
    assert_eq!(report.of_invariant("IV").len(), 1);
    assert!(report.of_invariant("G17").is_empty());
    assert!(report.of_invariant("I").is_empty());
}

#[test]
fn overdue_erasure_breaks_g17() {
    let mut db = CompliantDb::new(EngineConfig::p_base());
    let metadata = GdprMetadata {
        subject: 2,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: data_case::sim::time::Ts::from_secs(10),
        origin_device: 0,
        objects_to_sharing: false,
    };
    db.execute(
        &Op::Create {
            key: 1,
            payload: b"soon-overdue".to_vec(),
            metadata,
        },
        Actor::Controller,
    );
    // Let the deadline + grace pass without erasing.
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(30 * 24 * 3600));
    let report = db.compliance_report(&Regulation::gdpr());
    assert!(!report.is_compliant());
    assert!(!report.of_invariant("G17").is_empty());
    // Erase and the violation clears.
    assert!(erase_now(&mut db, 1, ErasureInterpretation::Deleted));
    let after = db.compliance_report(&Regulation::gdpr());
    // The erase happened after the grace window, so the record-keeping
    // side is satisfied but G17 still flags lateness… unless the erase
    // action stands. Our grounding accepts any erase ≤ now with status
    // satisfied — the late erase leaves a breach of timeliness only if
    // recorded later than due; assert the *status* violation cleared.
    assert!(after
        .of_invariant("G17")
        .iter()
        .all(|v| !v.message.contains("regulation requires")));
}

#[test]
fn multinational_verdicts_differ_by_grounding() {
    // Deleted (plain) satisfies GDPR & CCPA but not the strict member
    // state that grounds erasure as strong deletion.
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut db = CompliantDb::new(config);
    let metadata = GdprMetadata {
        subject: 9,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: data_case::sim::time::Ts::from_secs(3600),
        origin_device: 1,
        objects_to_sharing: false,
    };
    db.execute(
        &Op::Create {
            key: 1,
            payload: b"cross-border".to_vec(),
            metadata,
        },
        Actor::Controller,
    );
    assert!(erase_now(&mut db, 1, ErasureInterpretation::Deleted));
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(90 * 24 * 3600));

    assert!(db.compliance_report(&Regulation::gdpr()).is_compliant());
    assert!(db.compliance_report(&Regulation::ccpa()).is_compliant());
    assert!(!db
        .compliance_report(&Regulation::gdpr_strict_member_state())
        .is_compliant());
}

#[test]
fn ccpa_does_not_require_assessments() {
    // A CCPA-only deployment that never records DPIAs still passes (III is
    // not enforced), while GDPR flags nothing either since the engine
    // records assessments at startup.
    let mut db = loaded(ProfileKind::PBase);
    let ccpa = db.compliance_report(&Regulation::ccpa());
    assert!(ccpa.is_compliant());
    assert!(!ccpa.outcomes.iter().any(|o| o.id == "III"));
}

#[test]
fn audit_chain_feeds_invariant_ix() {
    let mut db = loaded(ProfileKind::PSys);
    assert!(db.logger_mut().verify_chain());
    let report = db.compliance_report(&Regulation::gdpr());
    assert!(report.of_invariant("IX").is_empty());
}
