//! The introduction's replication scenario end to end: Mall readings
//! replicated across nodes; naive primary-only erasure violates the
//! "remove it completely" interpretation, copy-tracked erasure satisfies it.

use data_case::storage::heap::HeapConfig;
use data_case::storage::replica::ReplicatedHeap;
use data_case::workloads::record::{MallGenerator, MallReading};

#[test]
fn replicated_mall_readings_require_tracked_erasure() {
    let mut cluster = ReplicatedHeap::new(2, HeapConfig::default());
    let mut gen = MallGenerator::new(77, 50, 8);
    let mut victim_key = None;
    for key in 0..200u64 {
        let (reading, _, payload) = gen.record();
        cluster.insert(key, key, &payload).unwrap();
        if victim_key.is_none() && reading.person == 7 {
            victim_key = Some(key);
        }
    }
    let victim_key = victim_key.expect("subject 7 appears in 200 readings");
    let needle = MallReading::person_needle(7);

    // Subject 7 asks for erasure; a replication-unaware system deletes on
    // the primary only.
    cluster.erase_primary_only(victim_key).unwrap();
    assert_eq!(cluster.read(victim_key), None);
    assert!(
        cluster.readable_copies(victim_key) > 0,
        "replica copies survive the naive erase — the intro's hazard"
    );

    // The copy tracker chases every remaining copy.
    cluster.erase_all_copies(victim_key).unwrap();
    assert_eq!(cluster.readable_copies(victim_key), 0);

    // Note: the needle may still appear for *other* readings of subject 7
    // (erasure was per-record). Verify the erased record's page bytes are
    // gone by checking readable copies only; other records are unaffected.
    let other_alive = (0..200u64)
        .filter(|&k| k != victim_key)
        .filter(|&k| cluster.readable_copies(k) == 3)
        .count();
    assert_eq!(other_alive, 199, "only the victim record was erased");
    let _ = needle;
}

#[test]
fn cluster_forensics_locates_every_node_holding_residuals() {
    let mut cluster = ReplicatedHeap::new(3, HeapConfig::default());
    cluster.insert(1, 1, b"CLUSTER-RESIDUAL-MARKER").unwrap();
    let hits = cluster.forensic(b"CLUSTER-RESIDUAL-MARKER");
    assert_eq!(hits.len(), 4, "all four nodes hold the bytes");
    cluster.erase_all_copies(1).unwrap();
    let after = cluster.forensic(b"CLUSTER-RESIDUAL-MARKER");
    // Pages are vacuumed everywhere; what remains is WAL retention per
    // node (the log hazard, handled by permanent-deletion plans).
    for (_, f) in &after {
        assert!(f.file_pages.is_empty(), "{}", f.describe());
    }
}
