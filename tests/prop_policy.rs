//! Property-based tests over the policy enforcement substrates.
//!
//! The central property: the *unit-scoped* mechanisms (metadata-table and
//! FGAC, indexed or not) are decision-equivalent — they differ in cost and
//! metadata footprint, never in verdict. That is exactly the paper's
//! framing: interpretations differ in system-actions and overheads, while
//! a fixed grounding fixes the semantics.

use proptest::prelude::*;
use std::sync::Arc;

use data_case::core::action::ActionKind;
use data_case::core::ids::{EntityId, UnitId};
use data_case::core::policy::Policy;
use data_case::core::purpose::PurposeId;
use data_case::policy::enforcer::{AccessRequest, PolicyEnforcer};
use data_case::policy::fgac::{FgacConfig, FgacEnforcer};
use data_case::policy::metatable::MetaTableEnforcer;
use data_case::sim::time::Ts;
use data_case::sim::{Meter, SimClock};

fn purposes() -> Vec<PurposeId> {
    vec![
        PurposeId::new("prop-billing"),
        PurposeId::new("prop-analytics"),
        PurposeId::new("prop-retention"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unit_scoped_enforcers_are_decision_equivalent(
        grants in proptest::collection::vec(
            (0u64..6, 0u32..4, 0usize..3, 0u64..50, 50u64..100), 0..25),
        checks in proptest::collection::vec(
            (0u64..6, 0u32..4, 0usize..3, 0u64..120), 1..40),
        revoke in proptest::option::of((0u64..6, 0u64..110)),
    ) {
        let ps = purposes();
        let mk_meta = || MetaTableEnforcer::new(SimClock::commodity(), Arc::new(Meter::new()));
        let mk_fgac = |idx: bool| FgacEnforcer::new(
            FgacConfig { use_index: idx, ..FgacConfig::default() },
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        let mut meta = mk_meta();
        let mut fgac_i = mk_fgac(true);
        let mut fgac_l = mk_fgac(false);

        for &(unit, entity, pi, from, until) in &grants {
            let policy = Policy::new(
                ps[pi],
                EntityId(entity),
                Ts::from_secs(from),
                Ts::from_secs(until),
            );
            meta.grant(UnitId(unit), policy);
            fgac_i.grant(UnitId(unit), policy);
            fgac_l.grant(UnitId(unit), policy);
        }
        if let Some((unit, at)) = revoke {
            let at = Ts::from_secs(at);
            let a = meta.revoke_all(UnitId(unit), at);
            let b = fgac_i.revoke_all(UnitId(unit), at);
            let c = fgac_l.revoke_all(UnitId(unit), at);
            prop_assert_eq!(a, b);
            prop_assert_eq!(b, c);
        }
        for &(unit, entity, pi, at) in &checks {
            let req = AccessRequest {
                unit: UnitId(unit),
                entity: EntityId(entity),
                purpose: ps[pi],
                action: ActionKind::Read,
                at: Ts::from_secs(at),
            };
            let m = meta.check(&req).is_allow();
            let fi = fgac_i.check(&req).is_allow();
            let fl = fgac_l.check(&req).is_allow();
            prop_assert_eq!(m, fi, "metatable vs indexed FGAC on {:?}", req);
            prop_assert_eq!(fi, fl, "indexed vs linear FGAC on {:?}", req);
        }
    }

    /// Forgetting a unit removes all its grants from every mechanism.
    #[test]
    fn forget_unit_is_complete(
        grants in proptest::collection::vec((0u64..4, 0u32..3), 1..15),
        victim in 0u64..4,
    ) {
        let p = PurposeId::new("prop-forget");
        for idx in [true, false] {
            let mut e = FgacEnforcer::new(
                FgacConfig { use_index: idx, ..FgacConfig::default() },
                SimClock::commodity(),
                Arc::new(Meter::new()),
            );
            for &(unit, entity) in &grants {
                e.grant(UnitId(unit), Policy::open_ended(p, EntityId(entity), Ts::ZERO));
            }
            e.forget_unit(UnitId(victim));
            for &(unit, entity) in &grants {
                let req = AccessRequest {
                    unit: UnitId(unit),
                    entity: EntityId(entity),
                    purpose: p,
                    action: ActionKind::Read,
                    at: Ts::from_secs(1),
                };
                if unit == victim {
                    prop_assert!(!e.check(&req).is_allow(), "forgotten unit still grants");
                }
            }
        }
    }

    /// Metadata footprint is monotone in the number of live policies.
    #[test]
    fn metadata_bytes_monotone(n in 1usize..60) {
        let p = PurposeId::new("prop-bytes");
        let mut e = FgacEnforcer::new(
            FgacConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        let mut last = e.metadata_bytes();
        for i in 0..n {
            e.grant(
                UnitId(i as u64),
                Policy::open_ended(p, EntityId(1), Ts::ZERO),
            );
            let now = e.metadata_bytes();
            prop_assert!(now > last);
            last = now;
        }
    }
}
