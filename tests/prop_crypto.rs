//! Crypto-equivalence gate: the throughput-oriented crypto hot path must
//! be byte-identical to the retained byte-oriented reference
//! implementation.
//!
//! The fast path — fused-T-table AES rounds, the equivalent inverse
//! cipher, and the u128-lane CTR XOR — and the reference path — the
//! original FIPS-197 byte rounds and byte-at-a-time XOR — coexist in
//! `datacase_crypto`. This suite pins them together on random keys, IVs
//! and *unaligned* lengths for all three key sizes, so any future round
//! tweak that diverges from FIPS-197 fails CI by name ("Crypto-equivalence
//! gate") instead of silently corrupting ciphertexts. The FIPS/NIST known
//! vectors live next to the implementations in `crates/crypto`.

//! PR 9 extends the gate across the **backend cross-product**: every
//! property also pins hardware (AES-NI, when the host has it) ≡ software
//! ≡ reference under the `CryptoBackend` selector — the `backend_`-named
//! properties below are CI's "HW-crypto equivalence gate". A forced
//! `Software` run keeps the dispatch path covered on hosts without
//! AES-NI, where `Hardware` resolves to the same software stream.

use proptest::prelude::*;

use data_case::crypto::aes::{Aes, KeySize};
use data_case::crypto::ctr::AesCtr;
use data_case::crypto::sector::SectorCipher;
use data_case::crypto::vault::KeyVault;
use data_case::crypto::{aesni, ActiveBackend, CryptoBackend};

const ALL_SIZES: [KeySize; 3] = [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256];

/// The full selector cross-product every `backend_` property runs:
/// `Hardware` resolves to AES-NI exactly on capable hosts (elsewhere it
/// is a second software run — the forced-fallback coverage the CI gate
/// wants), `Software` forces the T-table path everywhere, and
/// `Reference` is the byte-oriented oracle.
const ALL_BACKENDS: [CryptoBackend; 4] = [
    CryptoBackend::Auto,
    CryptoBackend::Software,
    CryptoBackend::Hardware,
    CryptoBackend::Reference,
];

proptest! {
    /// Block level: T-table encrypt/decrypt ≡ reference rounds, and the
    /// pair still round-trips.
    #[test]
    fn block_paths_agree(key in proptest::collection::vec(0u8..=255, 32),
                         pt in proptest::collection::vec(0u8..=255, 16)) {
        let block: [u8; 16] = pt.try_into().unwrap();
        for size in ALL_SIZES {
            let aes = Aes::new(size, &key[..size.key_len()]);
            let mut fast = block;
            let mut slow = block;
            aes.encrypt_block(&mut fast);
            aes.encrypt_block_ref(&mut slow);
            prop_assert_eq!(fast, slow, "{:?} encrypt diverged", size);
            aes.decrypt_block(&mut fast);
            aes.decrypt_block_ref(&mut slow);
            prop_assert_eq!(fast, slow, "{:?} decrypt diverged", size);
            prop_assert_eq!(fast, block, "{:?} round-trip broken", size);
        }
    }

    /// Stream level: lane-XOR CTR ≡ reference CTR on random IVs (counter
    /// carries included) and ragged lengths — empty, sub-block, aligned,
    /// and straddling buffers.
    #[test]
    fn ctr_paths_agree(key in proptest::collection::vec(0u8..=255, 32),
                       iv in proptest::collection::vec(0u8..=255, 16),
                       data in proptest::collection::vec(0u8..=255, 0..300)) {
        let iv: [u8; 16] = iv.try_into().unwrap();
        for size in ALL_SIZES {
            let ctr = AesCtr::from_key(size, &key[..size.key_len()]);
            let mut fast = data.clone();
            let mut slow = data.clone();
            ctr.apply(iv, &mut fast);
            ctr.apply_ref(iv, &mut slow);
            prop_assert_eq!(&fast, &slow, "{:?} CTR diverged", size);
            // Involution through the fast path alone.
            ctr.apply(iv, &mut fast);
            prop_assert_eq!(&fast, &data, "{:?} CTR involution broken", size);
        }
    }

    /// The whole-block entry used for page work must agree with the
    /// general entry (and therefore with the reference).
    #[test]
    fn apply_blocks_agrees_with_apply(key in proptest::collection::vec(0u8..=255, 16),
                                      nonce in any::<u64>(),
                                      blocks in 0usize..20) {
        let ctr = AesCtr::from_key(KeySize::Aes128, &key);
        let iv = AesCtr::iv_from_nonce(nonce);
        let data: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
        let mut a = data.clone();
        let mut b = data;
        ctr.apply(iv, &mut a);
        ctr.apply_blocks(iv, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Offset entry: the four-lane batched keystream reached through
    /// `apply_at` must agree, at every key size, with the reference path
    /// applied over a longer buffer that *contains* the offset region —
    /// i.e. starting `start_block` blocks into the stream is the same as
    /// skipping that prefix. Lengths are ragged so the x4 bulk loop, the
    /// scalar block remainder, and the partial tail are all crossed with
    /// nonzero block offsets.
    #[test]
    fn batched_offset_keystream_agrees_with_reference(
        key in proptest::collection::vec(0u8..=255, 32),
        iv in proptest::collection::vec(0u8..=255, 16),
        start_block in 0u64..40,
        data in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        let iv: [u8; 16] = iv.try_into().unwrap();
        for size in ALL_SIZES {
            let ctr = AesCtr::from_key(size, &key[..size.key_len()]);
            let mut fast = data.clone();
            ctr.apply_at(iv, start_block, &mut fast);
            // Oracle: reference-encrypt a zero prefix plus the data and
            // keep the tail past the prefix.
            let prefix = start_block as usize * 16;
            let mut whole = vec![0u8; prefix];
            whole.extend_from_slice(&data);
            ctr.apply_ref(iv, &mut whole);
            prop_assert_eq!(&fast, &whole[prefix..], "{:?} offset keystream diverged", size);
            // Involution through the offset entry alone.
            ctr.apply_at(iv, start_block, &mut fast);
            prop_assert_eq!(&fast, &data, "{:?} offset involution broken", size);
        }
    }

    /// Sector level: the page fast path under the ESSIV-flavoured IV
    /// binding matches its reference twin.
    #[test]
    fn sector_paths_agree(pass in proptest::collection::vec(0u8..=255, 1..24),
                          sector in any::<u64>(),
                          data in proptest::collection::vec(0u8..=255, 0..300)) {
        for size in ALL_SIZES {
            let sc = SectorCipher::from_passphrase(&pass, size);
            let mut fast = data.clone();
            let mut slow = data.clone();
            sc.apply(sector, &mut fast);
            sc.apply_ref(sector, &mut slow);
            prop_assert_eq!(&fast, &slow, "{:?} sector cipher diverged", size);
        }
    }

    // ---- HW-crypto equivalence gate: the backend cross-product ----

    /// Block level across backends: the AES-NI rounds (when the host has
    /// them) must agree with the T-table rounds on encrypt *and* the
    /// equivalent-inverse-cipher decrypt, for all three key sizes.
    #[test]
    fn backend_block_paths_agree(key in proptest::collection::vec(0u8..=255, 32),
                                 pt in proptest::collection::vec(0u8..=255, 16)) {
        let block: [u8; 16] = pt.try_into().unwrap();
        for size in ALL_SIZES {
            let sw = Aes::new(size, &key[..size.key_len()]);
            let mut expect = block;
            sw.encrypt_block(&mut expect);
            if let Some(hw) = aesni::AesNi::new(size, &key[..size.key_len()]) {
                let mut got = block;
                hw.encrypt_block(&mut got);
                prop_assert_eq!(got, expect, "{:?} hw encrypt diverged", size);
                hw.decrypt_block(&mut got);
                prop_assert_eq!(got, block, "{:?} hw decrypt diverged", size);
            } else {
                prop_assert!(!CryptoBackend::hardware_available(),
                             "AesNi::new must only fail without AES-NI");
            }
        }
    }

    /// Stream level across the full selector cross-product: every
    /// backend's CTR output is pinned to the reference oracle on random
    /// IVs (counter carries included) and ragged lengths, for all three
    /// key sizes. `Software` is always a forced run, so dispatch coverage
    /// survives CI hosts without AES-NI.
    #[test]
    fn backend_ctr_cross_product_agrees(key in proptest::collection::vec(0u8..=255, 32),
                                        iv in proptest::collection::vec(0u8..=255, 16),
                                        data in proptest::collection::vec(0u8..=255, 0..300)) {
        let iv: [u8; 16] = iv.try_into().unwrap();
        for size in ALL_SIZES {
            let oracle = AesCtr::from_key(size, &key[..size.key_len()]);
            let mut expect = data.clone();
            oracle.apply_ref(iv, &mut expect);
            for backend in ALL_BACKENDS {
                let ctr = AesCtr::from_key(size, &key[..size.key_len()]).with_backend(backend);
                let mut got = data.clone();
                ctr.apply(iv, &mut got);
                prop_assert_eq!(&got, &expect, "{:?} {} CTR diverged", size, backend);
                ctr.apply(iv, &mut got);
                prop_assert_eq!(&got, &data, "{:?} {} involution broken", size, backend);
            }
        }
    }

    /// Offset entry across backends: nonzero `apply_at` block offsets —
    /// crossing the hardware 8-wide loop, its scalar remainder, and the
    /// partial tail — must equal skipping the same prefix of a reference
    /// stream, for every backend and key size.
    #[test]
    fn backend_offset_keystream_cross_product(
        key in proptest::collection::vec(0u8..=255, 32),
        iv in proptest::collection::vec(0u8..=255, 16),
        start_block in 1u64..40,
        data in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        let iv: [u8; 16] = iv.try_into().unwrap();
        for size in ALL_SIZES {
            let prefix = start_block as usize * 16;
            let oracle = AesCtr::from_key(size, &key[..size.key_len()]);
            let mut whole = vec![0u8; prefix];
            whole.extend_from_slice(&data);
            oracle.apply_ref(iv, &mut whole);
            for backend in ALL_BACKENDS {
                let ctr = AesCtr::from_key(size, &key[..size.key_len()]).with_backend(backend);
                let mut got = data.clone();
                ctr.apply_at(iv, start_block, &mut got);
                prop_assert_eq!(&got, &whole[prefix..],
                                "{:?} {} offset keystream diverged", size, backend);
                ctr.apply_at(iv, start_block, &mut got);
                prop_assert_eq!(&got, &data, "{:?} {} offset involution broken", size, backend);
            }
        }
    }

    /// Sector level across backends: the ESSIV IV binding and the page
    /// fast path agree with the reference twin under every selector.
    #[test]
    fn backend_sector_cross_product(pass in proptest::collection::vec(0u8..=255, 1..24),
                                    sector in any::<u64>(),
                                    data in proptest::collection::vec(0u8..=255, 0..300)) {
        for size in ALL_SIZES {
            let oracle = SectorCipher::from_passphrase(&pass, size);
            let mut expect = data.clone();
            oracle.apply_ref(sector, &mut expect);
            for backend in ALL_BACKENDS {
                let sc = SectorCipher::from_passphrase(&pass, size).with_backend(backend);
                let mut got = data.clone();
                sc.apply(sector, &mut got);
                prop_assert_eq!(&got, &expect, "{:?} {} sector cipher diverged", size, backend);
            }
        }
    }
}

/// Dispatch sanity for the gate: forced selectors resolve to themselves,
/// `Auto` and `Hardware` track detection, and a constructed cipher
/// reports the backend it actually runs.
#[test]
fn backend_dispatch_resolves_and_reports_consistently() {
    let hw = CryptoBackend::hardware_available();
    for backend in ALL_BACKENDS {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[0x42; 16]).with_backend(backend);
        let expect = match backend {
            CryptoBackend::Reference => ActiveBackend::Reference,
            CryptoBackend::Software => ActiveBackend::Software,
            CryptoBackend::Auto | CryptoBackend::Hardware => {
                if hw {
                    ActiveBackend::Hardware
                } else {
                    ActiveBackend::Software
                }
            }
        };
        assert_eq!(ctr.active_backend(), expect, "{backend} misreported");
        assert_eq!(ctr.backend(), backend);
    }
}

/// Keystream-cache × hardware-backend interaction: a vault's cached
/// stream must be byte-identical no matter which backend generated it,
/// a warm hit must serve the same bytes as a cold generate, and
/// `destroy_key` must purge the cache under every backend (crypto-erasure
/// is backend-independent).
#[test]
fn backend_keystream_cache_interaction() {
    let unit = 7u64;
    let iv = AesCtr::iv_from_nonce(unit);
    let plain: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for backend in ALL_BACKENDS {
        let mut vault = KeyVault::new(b"gate-master", KeySize::Aes256)
            .with_backend(backend)
            .with_keystream_cache(8);
        vault.ensure_key(unit);
        // Cold: generates through `backend` and caches.
        let mut cold = plain.clone();
        assert_eq!(vault.keystream_apply(unit, iv, &mut cold), Ok(true));
        assert_eq!(vault.cached_keystreams(), 1);
        // Warm: served from cache, byte-identical to the cold pass.
        let mut warm = plain.clone();
        assert_eq!(vault.keystream_apply(unit, iv, &mut warm), Ok(true));
        assert_eq!(warm, cold, "{backend} warm hit diverged from generate");
        streams.push(cold);
        // Crypto-erasure purges the cached stream regardless of backend.
        assert!(vault.destroy_key(unit));
        assert_eq!(
            vault.cached_keystreams(),
            0,
            "{backend} left keystream behind after destroy_key"
        );
        let mut after = plain.clone();
        assert!(
            vault.keystream_apply(unit, iv, &mut after).is_err(),
            "{backend} served a stream for a destroyed key"
        );
    }
    for pair in streams.windows(2) {
        assert_eq!(pair[0], pair[1], "cached streams differ across backends");
    }
}
