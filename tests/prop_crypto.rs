//! Crypto-equivalence gate: the throughput-oriented crypto hot path must
//! be byte-identical to the retained byte-oriented reference
//! implementation.
//!
//! The fast path — fused-T-table AES rounds, the equivalent inverse
//! cipher, and the u128-lane CTR XOR — and the reference path — the
//! original FIPS-197 byte rounds and byte-at-a-time XOR — coexist in
//! `datacase_crypto`. This suite pins them together on random keys, IVs
//! and *unaligned* lengths for all three key sizes, so any future round
//! tweak that diverges from FIPS-197 fails CI by name ("Crypto-equivalence
//! gate") instead of silently corrupting ciphertexts. The FIPS/NIST known
//! vectors live next to the implementations in `crates/crypto`.

use proptest::prelude::*;

use data_case::crypto::aes::{Aes, KeySize};
use data_case::crypto::ctr::AesCtr;
use data_case::crypto::sector::SectorCipher;

const ALL_SIZES: [KeySize; 3] = [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256];

proptest! {
    /// Block level: T-table encrypt/decrypt ≡ reference rounds, and the
    /// pair still round-trips.
    #[test]
    fn block_paths_agree(key in proptest::collection::vec(0u8..=255, 32),
                         pt in proptest::collection::vec(0u8..=255, 16)) {
        let block: [u8; 16] = pt.try_into().unwrap();
        for size in ALL_SIZES {
            let aes = Aes::new(size, &key[..size.key_len()]);
            let mut fast = block;
            let mut slow = block;
            aes.encrypt_block(&mut fast);
            aes.encrypt_block_ref(&mut slow);
            prop_assert_eq!(fast, slow, "{:?} encrypt diverged", size);
            aes.decrypt_block(&mut fast);
            aes.decrypt_block_ref(&mut slow);
            prop_assert_eq!(fast, slow, "{:?} decrypt diverged", size);
            prop_assert_eq!(fast, block, "{:?} round-trip broken", size);
        }
    }

    /// Stream level: lane-XOR CTR ≡ reference CTR on random IVs (counter
    /// carries included) and ragged lengths — empty, sub-block, aligned,
    /// and straddling buffers.
    #[test]
    fn ctr_paths_agree(key in proptest::collection::vec(0u8..=255, 32),
                       iv in proptest::collection::vec(0u8..=255, 16),
                       data in proptest::collection::vec(0u8..=255, 0..300)) {
        let iv: [u8; 16] = iv.try_into().unwrap();
        for size in ALL_SIZES {
            let ctr = AesCtr::from_key(size, &key[..size.key_len()]);
            let mut fast = data.clone();
            let mut slow = data.clone();
            ctr.apply(iv, &mut fast);
            ctr.apply_ref(iv, &mut slow);
            prop_assert_eq!(&fast, &slow, "{:?} CTR diverged", size);
            // Involution through the fast path alone.
            ctr.apply(iv, &mut fast);
            prop_assert_eq!(&fast, &data, "{:?} CTR involution broken", size);
        }
    }

    /// The whole-block entry used for page work must agree with the
    /// general entry (and therefore with the reference).
    #[test]
    fn apply_blocks_agrees_with_apply(key in proptest::collection::vec(0u8..=255, 16),
                                      nonce in any::<u64>(),
                                      blocks in 0usize..20) {
        let ctr = AesCtr::from_key(KeySize::Aes128, &key);
        let iv = AesCtr::iv_from_nonce(nonce);
        let data: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
        let mut a = data.clone();
        let mut b = data;
        ctr.apply(iv, &mut a);
        ctr.apply_blocks(iv, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Offset entry: the four-lane batched keystream reached through
    /// `apply_at` must agree, at every key size, with the reference path
    /// applied over a longer buffer that *contains* the offset region —
    /// i.e. starting `start_block` blocks into the stream is the same as
    /// skipping that prefix. Lengths are ragged so the x4 bulk loop, the
    /// scalar block remainder, and the partial tail are all crossed with
    /// nonzero block offsets.
    #[test]
    fn batched_offset_keystream_agrees_with_reference(
        key in proptest::collection::vec(0u8..=255, 32),
        iv in proptest::collection::vec(0u8..=255, 16),
        start_block in 0u64..40,
        data in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        let iv: [u8; 16] = iv.try_into().unwrap();
        for size in ALL_SIZES {
            let ctr = AesCtr::from_key(size, &key[..size.key_len()]);
            let mut fast = data.clone();
            ctr.apply_at(iv, start_block, &mut fast);
            // Oracle: reference-encrypt a zero prefix plus the data and
            // keep the tail past the prefix.
            let prefix = start_block as usize * 16;
            let mut whole = vec![0u8; prefix];
            whole.extend_from_slice(&data);
            ctr.apply_ref(iv, &mut whole);
            prop_assert_eq!(&fast, &whole[prefix..], "{:?} offset keystream diverged", size);
            // Involution through the offset entry alone.
            ctr.apply_at(iv, start_block, &mut fast);
            prop_assert_eq!(&fast, &data, "{:?} offset involution broken", size);
        }
    }

    /// Sector level: the page fast path under the ESSIV-flavoured IV
    /// binding matches its reference twin.
    #[test]
    fn sector_paths_agree(pass in proptest::collection::vec(0u8..=255, 1..24),
                          sector in any::<u64>(),
                          data in proptest::collection::vec(0u8..=255, 0..300)) {
        for size in ALL_SIZES {
            let sc = SectorCipher::from_passphrase(&pass, size);
            let mut fast = data.clone();
            let mut slow = data.clone();
            sc.apply(sector, &mut fast);
            sc.apply_ref(sector, &mut slow);
            prop_assert_eq!(&fast, &slow, "{:?} sector cipher diverged", size);
        }
    }
}
