//! Property suite for the Data-CASE wire protocol.
//!
//! Three contracts:
//!
//! * **Total round-trip** — every [`Request`], [`Reply`], and
//!   [`EngineError`] variant (and every control frame) survives
//!   encode → decode byte-exactly, for arbitrary field values.
//! * **Malformed input never panics** — seeded corruption of payload
//!   bytes either still decodes or yields a typed [`WireError`]; header
//!   corruption (magic, version, oversized length) yields the matching
//!   *fatal* error before any allocation.
//! * **Payload errors never desynchronize** — after a well-framed but
//!   undecodable payload, the next frame on the stream still parses:
//!   the length prefix alone delimits frames, so one poisoned payload
//!   cannot eat its successors.

use proptest::prelude::*;

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::purpose::PurposeId;
use data_case::prelude::*;
use data_case::server::wire::{self, Frame, WireError, HEADER_LEN, MAX_FRAME};
use data_case::workloads::opstream::{MetaField, MetaSelector};

fn purpose(i: u8) -> PurposeId {
    let names = ["billing", "retention", "advertising", "analytics"];
    PurposeId::new(names[i as usize % names.len()])
}

fn interpretation(i: u8) -> ErasureInterpretation {
    match i % 4 {
        0 => ErasureInterpretation::ReversiblyInaccessible,
        1 => ErasureInterpretation::Deleted,
        2 => ErasureInterpretation::StronglyDeleted,
        _ => ErasureInterpretation::PermanentlyDeleted,
    }
}

/// One request per wire tag, fields driven by the drawn scalars — so a
/// single case exercises the codec's whole Request vocabulary.
fn all_requests(key: u64, subject: u32, aux: u8, payload_len: usize) -> Vec<Request> {
    let payload: Vec<u8> = (0..payload_len)
        .map(|i| (i as u8).wrapping_mul(aux))
        .collect();
    vec![
        Request::Create {
            key,
            payload: payload.clone(),
            metadata: GdprMetadata {
                subject,
                purpose: purpose(aux),
                ttl: Ts(key.rotate_left(7)),
                origin_device: subject.wrapping_add(3),
                objects_to_sharing: aux & 1 == 1,
            },
        },
        Request::Read { key },
        Request::Update { key, payload },
        Request::Delete { key },
        Request::ReadMeta { key },
        Request::UpdateMeta {
            key,
            field: match aux % 3 {
                0 => MetaField::Ttl,
                1 => MetaField::Purpose,
                _ => MetaField::Objection,
            },
        },
        Request::ReadByMeta {
            selector: if aux & 1 == 0 {
                MetaSelector::ByPurpose(purpose(aux))
            } else {
                MetaSelector::BySubject(subject)
            },
        },
        Request::Erase {
            key,
            interpretation: interpretation(aux),
        },
        Request::Restore { key },
    ]
}

/// One response per (reply | error) variant, so a single Replies frame
/// exercises the codec's whole outcome vocabulary.
fn all_responses(key: u64, n: u64, aux: u8) -> Vec<Response> {
    let outcomes: Vec<Result<Reply, EngineError>> = vec![
        Ok(Reply::Done),
        Ok(Reply::Value(n as usize)),
        Ok(Reply::Rows(n as usize)),
        Ok(Reply::Erased(interpretation(aux))),
        Ok(Reply::Restored),
        Err(EngineError::Denied {
            reason: format!("denied-{aux}"),
        }),
        Err(EngineError::NotFound { key }),
        Err(EngineError::RetentionExpired {
            key,
            since: Ts(n.rotate_left(3)),
        }),
        Err(EngineError::Backend {
            detail: format!("backend-{n}"),
        }),
    ];
    outcomes
        .into_iter()
        .enumerate()
        .map(|(index, outcome)| Response {
            index,
            outcome,
            audit: AuditRef {
                start: n.wrapping_add(index as u64),
                records: u64::from(aux),
                at: Ts(n ^ key),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Request variant round-trips byte-exactly for arbitrary
    /// field values, in one Batch frame.
    #[test]
    fn every_request_variant_round_trips(
        key in any::<u64>(),
        subject in any::<u32>(),
        aux in any::<u8>(),
        payload_len in 0usize..64,
    ) {
        let frame = Frame::Batch(all_requests(key, subject, aux, payload_len));
        let bytes = frame.encode();
        let decoded = wire::read_frame(&mut bytes.as_slice()).expect("round trip");
        prop_assert_eq!(decoded, frame);
    }

    /// Every Reply and EngineError variant round-trips inside a Replies
    /// frame, along with the submit stamps.
    #[test]
    fn every_outcome_variant_round_trips(
        key in any::<u64>(),
        n in 0u64..(1 << 40),
        aux in any::<u8>(),
        shards in proptest::collection::vec((0usize..16, any::<u64>()), 0..5),
    ) {
        let frame = Frame::Replies {
            responses: all_responses(key, n, aux),
            stamps: shards
                .iter()
                .map(|&(shard, seq)| SubmitStamp { shard, seq })
                .collect(),
        };
        let bytes = frame.encode();
        let decoded = wire::read_frame(&mut bytes.as_slice()).expect("round trip");
        prop_assert_eq!(decoded, frame);
    }

    /// Control frames (handshake and errors) round-trip for arbitrary
    /// string contents and ids.
    #[test]
    fn control_frames_round_trip(
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u16>(),
        actor_tag in 0u8..3,
    ) {
        let actor = [Actor::Controller, Actor::Processor, Actor::Subject][actor_tag as usize];
        for frame in [
            Frame::Hello {
                tenant: format!("tenant-{a}"),
                token: format!("token-{b}"),
                actor,
            },
            Frame::Welcome { tenant_id: b, shards: c },
            Frame::ProtocolError {
                code: format!("code-{c}"),
                detail: format!("detail-{a}"),
            },
            Frame::Goodbye,
        ] {
            let bytes = frame.encode();
            let decoded = wire::read_frame(&mut bytes.as_slice()).expect("round trip");
            prop_assert_eq!(decoded, frame);
        }
    }

    /// Seeded payload corruption never panics, and — because the length
    /// prefix alone delimits frames — never desynchronizes: whatever the
    /// corrupted frame decodes to (or fails to), the next frame on the
    /// stream still parses cleanly.
    #[test]
    fn corrupted_payloads_neither_panic_nor_desync(
        key in any::<u64>(),
        subject in any::<u32>(),
        aux in any::<u8>(),
        flips in proptest::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = Frame::Batch(all_requests(key, subject, aux, 16)).encode();
        let payload_len = bytes.len() - HEADER_LEN;
        for &(pos, value) in &flips {
            bytes[HEADER_LEN + pos as usize % payload_len] = value;
        }
        bytes.extend_from_slice(&Frame::Goodbye.encode());
        let mut stream = bytes.as_slice();
        match wire::read_frame(&mut stream) {
            Ok(_) => {}
            Err(err) => prop_assert!(
                !err.is_fatal(),
                "payload-level corruption must stay recoverable, got {err:?}"
            ),
        }
        // The stream is still on a frame boundary.
        prop_assert_eq!(wire::read_frame(&mut stream).expect("resync"), Frame::Goodbye);
        prop_assert!(stream.is_empty());
    }

    /// Truncating a frame at any point yields a clean error, never a
    /// panic: header truncation and payload truncation both surface as
    /// fatal transport errors.
    #[test]
    fn truncated_streams_error_cleanly(
        key in any::<u64>(),
        subject in any::<u32>(),
        aux in any::<u8>(),
        cut in any::<u32>(),
    ) {
        let bytes = Frame::Batch(all_requests(key, subject, aux, 16)).encode();
        let cut = cut as usize % bytes.len();
        let err = wire::read_frame(&mut &bytes[..cut]).expect_err("truncated stream");
        prop_assert!(err.is_fatal(), "mid-frame EOF loses sync, got {err:?}");
    }

    /// Header-level garbage — bad magic, bad version, oversized declared
    /// length — is rejected as fatal before any payload allocation.
    #[test]
    fn bad_headers_are_fatal(
        magic in any::<u8>(),
        version in 2u8..=u8::MAX,
        oversize in (MAX_FRAME + 1)..=u32::MAX,
    ) {
        let good = Frame::Goodbye.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = magic | 0x80; // high bit set, so never b'D'
        let err = wire::read_frame(&mut bad_magic.as_slice()).expect_err("bad magic");
        prop_assert_eq!(&err, &WireError::BadMagic);
        prop_assert!(err.is_fatal());

        let mut bad_version = good.clone();
        bad_version[2] = version;
        let err = wire::read_frame(&mut bad_version.as_slice()).expect_err("bad version");
        prop_assert_eq!(&err, &WireError::BadVersion(version));
        prop_assert!(err.is_fatal());

        let mut oversized = good;
        oversized[4..8].copy_from_slice(&oversize.to_be_bytes());
        let err = wire::read_frame(&mut oversized.as_slice()).expect_err("oversized");
        prop_assert_eq!(&err, &WireError::Oversized(oversize));
        prop_assert!(err.is_fatal());
    }

    /// Unknown enum tags inside a well-framed payload are typed,
    /// recoverable errors.
    #[test]
    fn unknown_tags_are_recoverable(tag in 9u8..=u8::MAX, key in any::<u64>()) {
        // A Batch of one request whose leading variant tag is unknown.
        let mut payload = 1u32.to_be_bytes().to_vec();
        payload.push(tag);
        payload.extend_from_slice(&key.to_be_bytes());
        let err = Frame::decode(0x03, &payload).expect_err("unknown tag");
        prop_assert_eq!(&err, &WireError::UnknownTag { what: "request", tag });
        prop_assert!(!err.is_fatal());
    }
}
