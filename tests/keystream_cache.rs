//! Keystream-cache gate: the hot-tuple keystream cache must be invisible
//! in every reported number and must die with the key.
//!
//! Two families of assertions, on both storage substrates:
//!
//! 1. **Parity** — the same request stream produces bit-identical
//!    simulated time, meter counters, responses, and audit chain with the
//!    cache on and off. The cache only changes *host* work (AES collapses
//!    to a XOR on a hit); it must never move a simulated cost.
//! 2. **Erasure** — cached keystream is purged by crypto-erasure, a
//!    permanently-deleted payload leaves zero forensic residuals in any
//!    layer, and a recreated key never decrypts against the destroyed
//!    generation's stream (the stale-keystream hazard).

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::prelude::*;
use data_case::storage::backend::BackendKind;
use data_case::workloads::gdprbench::{GdprBench, Mix};

/// P_SYS (per-unit AES-128 tuple keys — the profile the cache serves),
/// with an optional keystream cache, over either substrate.
fn engine(backend: BackendKind, cache: usize) -> Frontend {
    Frontend::new(
        EngineConfig::p_sys()
            .with_backend(backend)
            .with_keystream_cache(cache),
    )
}

fn metadata(subject: u32) -> GdprMetadata {
    GdprMetadata {
        subject,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: Ts::from_secs(1_000_000),
        origin_device: 0,
        objects_to_sharing: false,
    }
}

fn create(fe: &mut Frontend, key: u64, payload: &[u8]) {
    let r = fe.run(
        &Session::new(Actor::Controller),
        Request::Create {
            key,
            payload: payload.to_vec(),
            metadata: metadata(key as u32),
        },
    );
    assert!(r.is_done(), "{:?}", r.outcome);
}

fn read(fe: &mut Frontend, key: u64) -> Option<usize> {
    fe.run(&Session::new(Actor::Processor), Request::Read { key })
        .value()
}

#[test]
fn cache_is_invisible_in_sim_time_meter_and_audit_chain() {
    // The same mixed GDPR stream (reads, updates, deletes — including
    // erasures that destroy keys mid-run), with the cache off and on:
    // every simulated observable must agree bit-for-bit.
    for backend in BackendKind::ALL {
        let mut runs = Vec::new();
        for cache in [0, 4096] {
            let mut fe = engine(backend, cache);
            let mut bench = GdprBench::new(17, 60);
            let mut ops = bench.load_phase(120);
            ops.extend(bench.ops(300, Mix::wcus()));
            let outcomes: Vec<String> = fe
                .submit_ops(&Session::new(Actor::Controller), &ops)
                .iter()
                .map(|r| format!("{:?}", r.outcome))
                .collect();
            let sim = fe.clock().now();
            let meter = fe.meter().snapshot();
            let head = fe.forensic().chain_head();
            runs.push((outcomes, sim, meter, head));
        }
        let (off, on) = (&runs[0], &runs[1]);
        assert_eq!(off.0, on.0, "{backend:?}: responses diverged");
        assert_eq!(off.1, on.1, "{backend:?}: simulated time diverged");
        assert_eq!(off.2, on.2, "{backend:?}: meter diverged");
        assert_eq!(off.3, on.3, "{backend:?}: audit chain diverged");
    }
}

#[test]
fn erasure_purges_cached_keystream_and_all_residuals() {
    let secret = b"KEYSTREAM-CACHE-ERASE-TARGET";
    for backend in BackendKind::ALL {
        let mut fe = engine(backend, 1024);
        create(&mut fe, 1, secret);
        create(&mut fe, 2, b"bystander-record");
        // Hot re-reads warm the cache for key 1's unit.
        for _ in 0..4 {
            assert_eq!(read(&mut fe, 1), Some(secret.len()), "{backend:?}");
        }
        let warm = fe.forensic().cached_keystreams();
        assert!(warm > 0, "{backend:?}: cache never warmed");

        let r = fe.run(
            &Session::new(Actor::Controller),
            Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::PermanentlyDeleted,
            },
        );
        assert!(r.outcome.is_ok(), "{backend:?}: {:?}", r.outcome);

        // destroy_key dropped the erased unit's stream with its key …
        assert!(
            fe.forensic().cached_keystreams() < warm,
            "{backend:?}: erasure left the unit's keystream cached"
        );
        // … and no layer retains the payload (with tuple encryption the
        // plaintext never hit storage; erasure also seals the ciphertext).
        let f = fe.forensic().scan(secret);
        assert!(
            !f.any(),
            "{backend:?}: residuals after erase: {}",
            f.describe()
        );
        // The bystander is untouched.
        assert_eq!(read(&mut fe, 2), Some(b"bystander-record".len()));
    }
}

#[test]
fn rekeyed_unit_is_not_decrypted_with_the_stale_stream() {
    // The stale-keystream hazard needs the same (unit, IV) pair across a
    // key change, and a unit is re-keyed when a write follows a forensic
    // `destroy_key` (`ensure_key` mints a fresh generation for the same
    // unit id — the tuple IV, derived from that id, repeats exactly).
    // Warm the cache on the first generation, destroy the key, update
    // (encrypts under the new generation), and re-read. If the destroyed
    // generation's cached stream were ever served, the decrypted payload
    // bytes — which feed the audit records — would diverge from the
    // cache-off engine, and so would the chain heads. Both substrates.
    for backend in BackendKind::ALL {
        let mut heads = Vec::new();
        for cache in [0, 1024] {
            let mut fe = engine(backend, cache);
            create(&mut fe, 7, b"first-generation-bytes");
            for _ in 0..3 {
                assert_eq!(read(&mut fe, 7), Some(b"first-generation-bytes".len()));
            }
            let unit = fe.unit_of_key(7).expect("key 7 exists");
            assert!(fe.forensic().destroy_key(unit), "{backend:?}");
            // Unreadable while the unit has no key: empty decryption —
            // and never the cached first-generation plaintext.
            assert_eq!(read(&mut fe, 7), Some(0), "{backend:?} cache={cache}");
            // A write re-keys the unit under a fresh generation.
            let r = fe.run(
                &Session::new(Actor::Controller),
                Request::Update {
                    key: 7,
                    payload: b"second-generation-bytes".to_vec(),
                },
            );
            assert!(r.is_done(), "{backend:?}: {:?}", r.outcome);
            for _ in 0..3 {
                assert_eq!(
                    read(&mut fe, 7),
                    Some(b"second-generation-bytes".len()),
                    "{backend:?} cache={cache}"
                );
            }
            heads.push(fe.forensic().chain_head());
        }
        assert_eq!(
            heads[0], heads[1],
            "{backend:?}: stale keystream corrupted a decrypted payload"
        );
    }
}
