//! Property-based tests over the Data-CASE model.

use proptest::prelude::*;

use data_case::core::action::Action;
use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::history::{ActionHistory, HistoryTuple};
use data_case::core::ids::EntityId;
use data_case::core::policy::{Policy, PolicySet};
use data_case::core::purpose::PurposeId;
use data_case::core::timeline::ErasureTimeline;
use data_case::sim::time::Ts;

fn interp_strategy() -> impl Strategy<Value = ErasureInterpretation> {
    prop_oneof![
        Just(ErasureInterpretation::ReversiblyInaccessible),
        Just(ErasureInterpretation::Deleted),
        Just(ErasureInterpretation::StronglyDeleted),
        Just(ErasureInterpretation::PermanentlyDeleted),
    ]
}

proptest! {
    /// `P(t)` is exactly the set of granted, unexpired, unrevoked windows.
    #[test]
    fn active_policy_set_matches_window_algebra(
        grants in proptest::collection::vec((0u64..100, 0u64..100, 0u32..4), 1..20),
        revoke_at in proptest::option::of(0u64..120),
        query in 0u64..140,
    ) {
        let e = EntityId(1);
        let p = PurposeId::new("prop-core-purpose");
        let mut set = PolicySet::new();
        let mut windows = Vec::new();
        for (a, b, _) in &grants {
            let (from, until) = (Ts::from_secs(*a.min(b)), Ts::from_secs(*a.max(b)));
            set.grant(Policy::new(p, e, from, until), Ts::ZERO);
            windows.push((from, until));
        }
        if let Some(r) = revoke_at {
            set.revoke(p, e, Ts::from_secs(r));
        }
        let q = Ts::from_secs(query);
        // Reference semantics: a grant authorises at q iff its window
        // covers q, and — if a revocation at r clipped it (i.e. the window
        // covered r) — only for q strictly before r.
        let expected = windows.iter().any(|(f, u)| {
            if !q.within(*f, *u) {
                return false;
            }
            match revoke_at {
                Some(r) => {
                    let r = Ts::from_secs(r);
                    !r.within(*f, *u) || q < r
                }
                None => true,
            }
        });
        prop_assert_eq!(set.authorises(p, e, q), expected);
    }

    /// Restrictiveness is a total order: for any two interpretations one
    /// implies the other, and implication agrees with rank.
    #[test]
    fn erasure_lattice_total_order(a in interp_strategy(), b in interp_strategy()) {
        prop_assert!(a.implies(b) || b.implies(a));
        prop_assert_eq!(a.implies(b), a.rank() >= b.rank());
    }

    /// Timelines reconstructed from arbitrary erase sequences are always
    /// monotone, and a stricter erase stamps all weaker stages.
    #[test]
    fn timelines_are_monotone(
        stages in proptest::collection::vec((interp_strategy(), 1u64..1000), 1..8)
    ) {
        let unit = data_case::core::ids::UnitId(1);
        let mut h = ActionHistory::new();
        h.record(HistoryTuple {
            unit,
            purpose: data_case::core::purpose::well_known::contract(),
            entity: EntityId(0),
            action: Action::Create,
            at: Ts::ZERO,
        });
        let mut t = 0u64;
        for (interp, dt) in stages {
            t += dt;
            h.record(HistoryTuple {
                unit,
                purpose: data_case::core::purpose::well_known::compliance_erase(),
                entity: EntityId(0),
                action: Action::Erase(interp),
                at: Ts::from_secs(t),
            });
        }
        let tl = ErasureTimeline::from_history(&h, unit);
        prop_assert!(tl.is_monotone());
        if tl.permanently_deleted.is_some() {
            prop_assert!(tl.strongly_deleted.is_some());
            prop_assert!(tl.deleted.is_some());
            prop_assert!(tl.reversibly_inaccessible.is_some());
        }
    }

    /// Derived policy sets never grant more than every parent allows.
    #[test]
    fn derivation_restricts_policies(
        parent_windows in proptest::collection::vec(
            proptest::collection::vec((0u64..50, 50u64..100), 0..4), 1..4),
        query in 0u64..120,
    ) {
        let e = EntityId(3);
        let p = PurposeId::new("prop-derive-purpose");
        let now = Ts::from_secs(60);
        let sets: Vec<PolicySet> = parent_windows.iter().map(|ws| {
            let mut s = PolicySet::new();
            for (a, b) in ws {
                s.grant(Policy::new(p, e, Ts::from_secs(*a), Ts::from_secs(*b)), Ts::ZERO);
            }
            s
        }).collect();
        let refs: Vec<&PolicySet> = sets.iter().collect();
        let derived = PolicySet::restrict_for_derivation(&refs, now);
        let q = Ts::from_secs(query);
        if derived.authorises(p, e, q) {
            for s in &sets {
                prop_assert!(s.authorises(p, e, q),
                    "derived policy must be within every parent's grants");
            }
        }
    }
}
