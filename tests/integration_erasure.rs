//! Cross-crate integration: erasure groundings, forensics, Table 1 probes.

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::grounding::properties::ErasureProperties;
use data_case::engine::db::{Actor, CompliantDb, OpResult};
use data_case::engine::erasure::{erase_now, lsm_erase, probe, restore_now};
use data_case::engine::profiles::{DeleteStrategy, EngineConfig};
use data_case::storage::lsm::LsmTree;
use data_case::workloads::opstream::Op;
use data_case::workloads::record::GdprMetadata;

fn seeded_db() -> CompliantDb {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut db = CompliantDb::new(config);
    let metadata = GdprMetadata {
        subject: 5,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: data_case::sim::time::Ts::from_secs(1_000_000),
        origin_device: 2,
        objects_to_sharing: false,
    };
    assert_eq!(
        db.execute(
            &Op::Create {
                key: 1,
                payload: b"INTEGRATION-ERASE-TARGET".to_vec(),
                metadata,
            },
            Actor::Controller,
        ),
        OpResult::Done
    );
    db
}

#[test]
fn table1_probes_match_expected_matrix_end_to_end() {
    for interp in ErasureInterpretation::ALL {
        let p = probe(interp);
        assert_eq!(
            p.measured,
            ErasureProperties::expected(interp),
            "{interp}: {:?}",
            p.notes
        );
    }
}

#[test]
fn delete_leaves_online_residuals_strong_delete_clears_file() {
    let mut db = seeded_db();
    assert!(erase_now(&mut db, 1, ErasureInterpretation::Deleted));
    let f = db.forensic(b"INTEGRATION-ERASE-TARGET");
    // Vacuum wiped the page, but the WAL retains the payload.
    assert!(!f.wal_lsns.is_empty(), "WAL retention: {}", f.describe());

    let mut db2 = seeded_db();
    assert!(erase_now(
        &mut db2,
        1,
        ErasureInterpretation::PermanentlyDeleted
    ));
    let f2 = db2.forensic(b"INTEGRATION-ERASE-TARGET");
    assert!(
        !f2.any(),
        "permanent deletion must clear all layers: {}",
        f2.describe()
    );
}

#[test]
fn staged_escalation_reaches_permanent() {
    let mut db = seeded_db();
    assert!(erase_now(
        &mut db,
        1,
        ErasureInterpretation::ReversiblyInaccessible
    ));
    assert!(erase_now(&mut db, 1, ErasureInterpretation::Deleted));
    assert!(erase_now(
        &mut db,
        1,
        ErasureInterpretation::StronglyDeleted
    ));
    assert!(erase_now(
        &mut db,
        1,
        ErasureInterpretation::PermanentlyDeleted
    ));
    let unit = db.unit_of_key(1).unwrap();
    let tl = data_case::core::timeline::ErasureTimeline::from_history(db.history(), unit);
    assert!(tl.is_monotone());
    assert!(tl.permanently_deleted.is_some());
}

#[test]
fn restore_works_only_before_physical_deletion() {
    let mut db = seeded_db();
    assert!(erase_now(
        &mut db,
        1,
        ErasureInterpretation::ReversiblyInaccessible
    ));
    assert!(restore_now(&mut db, 1));
    assert!(erase_now(&mut db, 1, ErasureInterpretation::Deleted));
    assert!(!restore_now(&mut db, 1));
}

#[test]
fn tombstone_strategy_keeps_data_readable_by_controller_view() {
    let mut config = EngineConfig::stock(DeleteStrategy::TombstoneAttribute);
    config.maintenance_every = u64::MAX;
    let mut db = CompliantDb::new(config);
    let metadata = GdprMetadata {
        subject: 1,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: data_case::sim::time::Ts::from_secs(1_000_000),
        origin_device: 0,
        objects_to_sharing: false,
    };
    db.execute(
        &Op::Create {
            key: 9,
            payload: b"hidden-not-gone".to_vec(),
            metadata,
        },
        Actor::Controller,
    );
    db.execute(&Op::DeleteData { key: 9 }, Actor::Controller);
    // Normal reads can no longer see it…
    assert_eq!(
        db.execute(&Op::ReadData { key: 9 }, Actor::Processor),
        OpResult::NotFound
    );
    // …but the bytes are physically present (the paper's hazard).
    let f = db.forensic(b"hidden-not-gone");
    assert!(f.online(), "{}", f.describe());
}

#[test]
fn lsm_erasure_groundings_full_cycle() {
    let mut tree = LsmTree::default_single();
    for i in 0..200u64 {
        tree.put(i, i, format!("lsm-unit-{i:04}").as_bytes());
    }
    tree.flush();
    // Plain tombstone delete retains bytes until compaction.
    tree.delete(7, 7);
    assert!(tree.scan_physical(b"lsm-unit-0007") > 0);
    let out = lsm_erase(&mut tree, 8, 8, ErasureInterpretation::Deleted);
    assert!(out.compacted);
    assert_eq!(tree.scan_physical(b"lsm-unit-0008"), 0);
    // Permanent purge removes all entries of the unit.
    let out2 = lsm_erase(&mut tree, 9, 9, ErasureInterpretation::PermanentlyDeleted);
    assert!(out2.compacted);
    assert_eq!(tree.scan_physical(b"lsm-unit-0009"), 0);
    // Unrelated units intact.
    assert!(tree.get(100).is_some());
}

#[test]
fn crypto_erasure_seals_ciphertext_forever() {
    let mut db = CompliantDb::new(EngineConfig::p_sys()); // per-unit AES keys
    let metadata = GdprMetadata {
        subject: 3,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: data_case::sim::time::Ts::from_secs(1_000_000),
        origin_device: 0,
        objects_to_sharing: false,
    };
    db.execute(
        &Op::Create {
            key: 4,
            payload: b"crypto-erase-me".to_vec(),
            metadata,
        },
        Actor::Controller,
    );
    // Plaintext never reaches persistent storage under tuple encryption.
    let f = db.forensic(b"crypto-erase-me");
    assert!(f.file_pages.is_empty(), "{}", f.describe());
    // Destroy the key: the unit is now permanently unreadable.
    let unit = db.unit_of_key(4).unwrap();
    assert!(db.vault_mut().unwrap().destroy_key(unit.0));
    match db.execute(&Op::ReadData { key: 4 }, Actor::Processor) {
        OpResult::Value(0) => {} // unreadable: empty decryption
        OpResult::Denied | OpResult::NotFound => {}
        other => panic!("expected unreadable content, got {other:?}"),
    }
}
