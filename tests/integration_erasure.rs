//! Cross-crate integration: erasure groundings, forensics, Table 1 probes
//! — all driven through the session frontend's `Erase`/`Restore`
//! requests.

use data_case::core::grounding::properties::ErasureProperties;
use data_case::engine::{lsm_erase, probe};
use data_case::prelude::*;
use data_case::storage::lsm::LsmTree;

fn seeded_frontend() -> Frontend {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut fe = Frontend::new(config);
    let metadata = GdprMetadata {
        subject: 5,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: Ts::from_secs(1_000_000),
        origin_device: 2,
        objects_to_sharing: false,
    };
    assert!(fe
        .run(
            &Session::new(Actor::Controller),
            Request::Create {
                key: 1,
                payload: b"INTEGRATION-ERASE-TARGET".to_vec(),
                metadata,
            },
        )
        .is_done());
    fe
}

fn erase(fe: &mut Frontend, key: u64, interpretation: ErasureInterpretation) -> bool {
    fe.run(
        &Session::new(Actor::Controller),
        Request::Erase {
            key,
            interpretation,
        },
    )
    .outcome
    .is_ok()
}

fn restore(fe: &mut Frontend, key: u64) -> bool {
    fe.run(&Session::new(Actor::Controller), Request::Restore { key })
        .outcome
        .is_ok()
}

#[test]
fn table1_probes_match_expected_matrix_end_to_end() {
    for interp in ErasureInterpretation::ALL {
        let p = probe(interp);
        assert_eq!(
            p.measured,
            ErasureProperties::expected(interp),
            "{interp}: {:?}",
            p.notes
        );
    }
}

#[test]
fn delete_leaves_online_residuals_strong_delete_clears_file() {
    let mut fe = seeded_frontend();
    assert!(erase(&mut fe, 1, ErasureInterpretation::Deleted));
    let f = fe.forensic().scan(b"INTEGRATION-ERASE-TARGET");
    // Vacuum wiped the page, but the WAL retains the payload.
    assert!(!f.wal_lsns.is_empty(), "WAL retention: {}", f.describe());

    let mut fe2 = seeded_frontend();
    assert!(erase(
        &mut fe2,
        1,
        ErasureInterpretation::PermanentlyDeleted
    ));
    let f2 = fe2.forensic().scan(b"INTEGRATION-ERASE-TARGET");
    assert!(
        !f2.any(),
        "permanent deletion must clear all layers: {}",
        f2.describe()
    );
}

#[test]
fn staged_escalation_reaches_permanent() {
    let mut fe = seeded_frontend();
    assert!(erase(
        &mut fe,
        1,
        ErasureInterpretation::ReversiblyInaccessible
    ));
    assert!(erase(&mut fe, 1, ErasureInterpretation::Deleted));
    assert!(erase(&mut fe, 1, ErasureInterpretation::StronglyDeleted));
    assert!(erase(&mut fe, 1, ErasureInterpretation::PermanentlyDeleted));
    let unit = fe.unit_of_key(1).unwrap();
    let tl = data_case::core::timeline::ErasureTimeline::from_history(fe.history(), unit);
    assert!(tl.is_monotone());
    assert!(tl.permanently_deleted.is_some());
}

#[test]
fn restore_works_only_before_physical_deletion() {
    let mut fe = seeded_frontend();
    assert!(erase(
        &mut fe,
        1,
        ErasureInterpretation::ReversiblyInaccessible
    ));
    assert!(restore(&mut fe, 1));
    assert!(erase(&mut fe, 1, ErasureInterpretation::Deleted));
    assert!(!restore(&mut fe, 1));
}

#[test]
fn tombstone_strategy_keeps_data_readable_by_controller_view() {
    let mut config = EngineConfig::stock(DeleteStrategy::TombstoneAttribute);
    config.maintenance_every = u64::MAX;
    let mut fe = Frontend::new(config);
    let controller = Session::new(Actor::Controller);
    let metadata = GdprMetadata {
        subject: 1,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: Ts::from_secs(1_000_000),
        origin_device: 0,
        objects_to_sharing: false,
    };
    fe.run(
        &controller,
        Request::Create {
            key: 9,
            payload: b"hidden-not-gone".to_vec(),
            metadata,
        },
    );
    fe.run(&controller, Request::Delete { key: 9 });
    // Normal reads can no longer see it — and the error says *why*…
    let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 9 });
    assert!(
        r.err().is_some_and(EngineError::is_retention_expired),
        "{:?}",
        r.outcome
    );
    // …but the bytes are physically present (the paper's hazard).
    let f = fe.forensic().scan(b"hidden-not-gone");
    assert!(f.online(), "{}", f.describe());
}

#[test]
fn lsm_erasure_groundings_full_cycle() {
    let mut tree = LsmTree::default_single();
    for i in 0..200u64 {
        tree.put(i, i, format!("lsm-unit-{i:04}").as_bytes());
    }
    tree.flush();
    // Plain tombstone delete retains bytes until compaction.
    tree.delete(7, 7);
    assert!(tree.scan_physical(b"lsm-unit-0007") > 0);
    let out = lsm_erase(&mut tree, 8, 8, ErasureInterpretation::Deleted);
    assert!(out.compacted);
    assert_eq!(tree.scan_physical(b"lsm-unit-0008"), 0);
    // Permanent purge removes all entries of the unit.
    let out2 = lsm_erase(&mut tree, 9, 9, ErasureInterpretation::PermanentlyDeleted);
    assert!(out2.compacted);
    assert_eq!(tree.scan_physical(b"lsm-unit-0009"), 0);
    // Unrelated units intact.
    assert!(tree.get(100).is_some());
}

#[test]
fn crypto_erasure_seals_ciphertext_forever() {
    let mut fe = Frontend::new(EngineConfig::p_sys()); // per-unit AES keys
    let metadata = GdprMetadata {
        subject: 3,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: Ts::from_secs(1_000_000),
        origin_device: 0,
        objects_to_sharing: false,
    };
    fe.run(
        &Session::new(Actor::Controller),
        Request::Create {
            key: 4,
            payload: b"crypto-erase-me".to_vec(),
            metadata,
        },
    );
    // Plaintext never reaches persistent storage under tuple encryption.
    let f = fe.forensic().scan(b"crypto-erase-me");
    assert!(f.file_pages.is_empty(), "{}", f.describe());
    // Destroy the key: the unit is now permanently unreadable.
    let unit = fe.unit_of_key(4).unwrap();
    assert!(fe.forensic().destroy_key(unit));
    match fe
        .run(&Session::new(Actor::Processor), Request::Read { key: 4 })
        .outcome
    {
        Ok(Reply::Value(0)) => {} // unreadable: empty decryption
        Err(EngineError::Denied { .. })
        | Err(EngineError::NotFound { .. })
        | Err(EngineError::RetentionExpired { .. }) => {}
        other => panic!("expected unreadable content, got {other:?}"),
    }
}
