//! Quickstart: collect personal data compliantly, process it through
//! session-scoped requests, and demonstrate compliance with a checker
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use data_case::prelude::*;

fn main() {
    // A P_Base-profile engine behind the session frontend: RBAC + CSV
    // response logging + AES-256 at rest + DELETE+VACUUM erasure. The
    // frontend is the only write path — there is no way to touch the
    // substrate without a session.
    let mut fe = Frontend::new(EngineConfig::p_base());

    // MetaSpace collects a smart-space reading about subject #7 with
    // consent, a purpose, and a retention deadline (the compliance-erase
    // policy Data-CASE's G17 invariant keys on).
    let controller = Session::new(Actor::Controller);
    let metadata = GdprMetadata {
        subject: 7,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: Ts::from_secs(90 * 24 * 3600),
        origin_device: 12,
        objects_to_sharing: false,
    };
    let resp = fe.run(
        &controller,
        Request::Create {
            key: 1,
            payload: b"dev=000012 person=000007 zone=004 ts=000000001000;".to_vec(),
            metadata,
        },
    );
    assert!(resp.is_done());
    println!(
        "collected 1 record (consent capture + policy grants, audit seq {})",
        resp.audit.start
    );

    // The processor reads it under its declared collection purpose —
    // policy-consistent, purpose limitation made explicit at the boundary.
    let processor = Session::new(Actor::Processor)
        .for_purpose(data_case::core::purpose::well_known::smart_space());
    match fe.run(&processor, Request::Read { key: 1 }).outcome {
        Ok(Reply::Value(n)) => println!("processor read {n} bytes (authorised)"),
        other => println!("unexpected: {other:?}"),
    }

    // The subject reads their own data — the subject-access policy path.
    // Requests can also go out in batches; each gets its own response.
    let subject = Session::new(Actor::Subject);
    let batch = Batch::new()
        .with(Request::Read { key: 1 })
        .with(Request::ReadMeta { key: 1 });
    for r in fe.submit(&subject, &batch) {
        match r.outcome {
            Ok(Reply::Value(n)) => {
                println!("subject request #{} returned {n} bytes", r.index)
            }
            other => println!("unexpected: {other:?}"),
        }
    }

    // The typed error taxonomy at work: a read of a key that was never
    // stored is NotFound — distinct from a policy denial.
    match fe.run(&processor, Request::Read { key: 999 }).outcome {
        Err(EngineError::NotFound { key }) => println!("key {key} was never collected"),
        other => println!("unexpected: {other:?}"),
    }

    // Demonstrate compliance: run the full GDPR invariant catalog over the
    // engine's Data-CASE model (state + action history).
    let report = fe.compliance_report(&Regulation::gdpr());
    println!("\n{}", report.render());
    assert!(report.is_compliant());

    println!(
        "simulated time elapsed: {} | denied ops: {}",
        fe.clock().now(),
        fe.denied()
    );
}
