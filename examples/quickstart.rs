//! Quickstart: collect personal data compliantly, process it, and
//! demonstrate compliance with a checker report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use data_case::prelude::*;

fn main() {
    // A P_Base-profile engine: RBAC + CSV response logging + AES-256 at
    // rest + DELETE+VACUUM erasure.
    let mut db = CompliantDb::new(EngineConfig::p_base());

    // MetaSpace collects a smart-space reading about subject #7 with
    // consent, a purpose, and a retention deadline (the compliance-erase
    // policy Data-CASE's G17 invariant keys on).
    let metadata = GdprMetadata {
        subject: 7,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: data_case::sim::time::Ts::from_secs(90 * 24 * 3600),
        origin_device: 12,
        objects_to_sharing: false,
    };
    let create = Op::Create {
        key: 1,
        payload: b"dev=000012 person=000007 zone=004 ts=000000001000;".to_vec(),
        metadata,
    };
    assert_eq!(db.execute(&create, Actor::Controller), OpResult::Done);
    println!("collected 1 record (with consent capture + policy grants)");

    // The processor reads it for the collection purpose — policy-consistent.
    match db.execute(&Op::ReadData { key: 1 }, Actor::Processor) {
        OpResult::Value(n) => println!("processor read {n} bytes (authorised)"),
        other => println!("unexpected: {other:?}"),
    }

    // The subject reads their own data — the subject-access policy path.
    match db.execute(&Op::ReadData { key: 1 }, Actor::Subject) {
        OpResult::Value(n) => println!("subject read {n} bytes (their right of access)"),
        other => println!("unexpected: {other:?}"),
    }

    // Demonstrate compliance: run the full GDPR invariant catalog over the
    // engine's Data-CASE model (state + action history).
    let report = db.compliance_report(&Regulation::gdpr());
    println!("\n{}", report.render());
    assert!(report.is_compliant());

    println!(
        "simulated time elapsed: {} | denied ops: {}",
        db.clock().now(),
        db.denied()
    );
}
