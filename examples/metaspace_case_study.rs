//! Case Study 1 (paper §4.1): MetaSpace wants strong erasure semantics
//! for G17 and uses Data-CASE to pick an interpretation its PSQL-style
//! engine can afford — by benchmarking the groundings on its own customer
//! workload (20 % deletes, 80 % reads).
//!
//! ```sh
//! cargo run --release --example metaspace_case_study
//! ```

use data_case::core::grounding::table::{Backend, GroundingTable};
use data_case::engine::driver::run_ops;
use data_case::prelude::*;
use data_case::workloads::gdprbench::{GdprBench, Mix};

fn main() {
    let records = 10_000usize;
    let txns = 5_000usize;
    println!(
        "MetaSpace customer workload: {records} records, {txns} txns (20% deletes / 80% reads)\n"
    );

    let groundings = GroundingTable::standard();
    println!("candidate groundings (Table 1):");
    for interp in ErasureInterpretation::ALL {
        if let Some(plan) = groundings.plan(Backend::Heap, interp) {
            println!("  {:<24} -> {}", interp.label(), plan.describe());
        }
    }
    println!();

    let mut results = Vec::new();
    for strategy in DeleteStrategy::ALL {
        let mut config = EngineConfig::stock(strategy);
        config.maintenance_every = (txns as u64 / 35).max(20);
        config.heap.buffer_pages = (records / 390).max(32);
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(777, 1000);
        fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(records));
        let ops = bench.ops(txns, Mix::fig4a_customer());
        let stats = run_ops(&mut fe, &ops, Actor::Subject);
        let storage = fe.backend_stats();
        println!(
            "{:<24} completion={:>8}   dead-tuples-left={:<6} pages={}",
            strategy.label(),
            format!("{}", stats.simulated),
            storage.dead_entries,
            storage.segments,
        );
        results.push((strategy, stats.simulated));
    }

    results.sort_by_key(|(_, d)| *d);
    println!(
        "\ndecision: '{}' is the cheapest grounding that still achieves\n\
         physical deletion on this workload — the 'surprising' Figure 4a\n\
         result (VACUUM's cost is repaid by the other 80% of operations).",
        results
            .iter()
            .map(|(s, _)| *s)
            .find(|s| *s == DeleteStrategy::DeleteVacuum)
            .map(|s| s.label())
            .unwrap_or("DELETE + VACUUM")
    );
}
