//! Pipelined batch execution with the versioned policy-decision cache.
//!
//! A processor hammers a hot working set through large batches — exactly
//! the "heavy traffic" regime where compliance checking must not become
//! the bottleneck. The engine answers with its staged pipeline:
//!
//! * the **decide** stage resolves repeated policy checks from an
//!   epoch-versioned cache (allows *and* denials), invalidated by epoch
//!   comparison the instant any grant/revoke/erasure lands;
//! * the **apply** stage coalesces and fans out per-tuple AES work;
//! * the **account** stage commits audit records in batch order, so the
//!   tamper-evidence chain is byte-identical to serial execution.
//!
//! Run with `cargo run --example pipelined_batches`.

use std::time::Instant;

use data_case::engine::driver::RunStats;
use data_case::prelude::*;
use data_case::workloads::ycsb::{Ycsb, YcsbWorkload};

fn run(pipeline: bool, cache: usize) -> (RunStats, [u8; 32], u64) {
    let config = EngineConfig::p_base()
        .with_pipeline(pipeline)
        .with_decision_cache(cache);
    let mut fe = Frontend::new(config);
    let mut y = Ycsb::new(11, 5_000);
    data_case::engine::driver::run_ops_batched(&mut fe, &y.load_phase(), Actor::Controller, 256);
    let ops = y.ops(10_000, YcsbWorkload::B);
    let stats = data_case::engine::driver::run_ops_batched(&mut fe, &ops, Actor::Processor, 256);
    let checks = fe.meter().snapshot().policy_checks;
    (stats, fe.forensic().chain_head(), checks)
}

fn main() {
    println!("== Pipelined batches vs serial submit (YCSB-B, P_Base) ==\n");
    // Same configuration, only the execution mode differs: the pipeline's
    // contract is that everything observable — simulated completion and
    // the audit chain's bytes — is identical, and only wall-clock moves
    // (coalesced AES work here; thread fan-out on multi-core hosts).
    let wall = Instant::now();
    let (serial, serial_chain, _) = run(false, 4096);
    let serial_wall = wall.elapsed();
    let wall = Instant::now();
    let (piped, piped_chain, _) = run(true, 4096);
    let piped_wall = wall.elapsed();
    println!(
        "serial submit:    {:>8.1} ms wall",
        serial_wall.as_secs_f64() * 1e3,
    );
    println!(
        "pipelined submit: {:>8.1} ms wall",
        piped_wall.as_secs_f64() * 1e3,
    );
    assert_eq!(serial.simulated, piped.simulated);
    assert_eq!(serial_chain, piped_chain);
    println!(
        "simulated completion identical: true ({:.3} sim s)",
        piped.simulated.as_secs_f64(),
    );
    println!("audit chains byte-identical:    true");

    // The versioned decision cache amortizes enforcement across the hot
    // set — independently of the pipeline, and off by default so the
    // paper's measured costs stay faithful.
    let (_, _, uncached_checks) = run(true, 0);
    let (_, _, cached_checks) = run(true, 4096);
    println!(
        "\npolicy checks over 10k requests: {uncached_checks} uncached -> {cached_checks} with the epoch cache",
    );

    // The cache is *versioned*, not a TTL: revoke in one session and the
    // next read — any session — re-evaluates at the new epoch.
    let mut fe = Frontend::new(EngineConfig::p_sys().with_decision_cache(1024));
    let mut y = Ycsb::new(3, 100);
    data_case::engine::driver::run_ops_batched(&mut fe, &y.load_phase(), Actor::Controller, 64);
    let processor = Session::new(Actor::Processor);
    let before = fe.policy_epoch();
    assert!(fe
        .run(&processor, Request::Read { key: 42 })
        .value()
        .is_some());
    let subject = Session::new(Actor::Subject);
    fe.run(
        &subject,
        Request::Erase {
            key: 42,
            interpretation: ErasureInterpretation::Deleted,
        },
    );
    let r = fe.run(&processor, Request::Read { key: 42 });
    println!(
        "\nepoch {before} -> {} after erasure; processor's cached allow now: {:?}",
        fe.policy_epoch(),
        r.outcome.err().map(|e| e.to_string()).unwrap_or_default(),
    );
}
