//! The right to be forgotten, under all four groundings of "erase" —
//! on *both* storage backends.
//!
//! A subject requests erasure (GDPR Art. 17). The same request is executed
//! under each interpretation on a fresh engine — once over the
//! PostgreSQL-style heap and once over the Cassandra-style LSM tree — and
//! after each one the forensic scanner reports what a seized disk would
//! still reveal. Table 1 and Figure 3, live, with the paper's claim that
//! groundings hold independently of the underlying system made visible:
//! the residual *mechanics* differ per backend (dead tuples and WAL
//! records vs shadowed run entries), but the grounded *properties* agree.
//!
//! Everything compliant goes through sessions (`Request::Erase` /
//! `Request::Restore`); only the seized-disk simulation uses the
//! clearly-marked forensic guard.
//!
//! ```sh
//! cargo run --release --example right_to_be_forgotten
//! ```

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::timeline::ErasureTimeline;
use data_case::prelude::*;
use data_case::storage::backend::BackendKind;

const PAYLOAD: &[u8] = b"SUBJECT-42-LOCATION-TRACE-SENSITIVE";

fn fresh_frontend(backend: BackendKind) -> Frontend {
    let mut config = EngineConfig::p_sys().with_backend(backend);
    config.tuple_encryption = None; // keep bytes visible so forensics bite
    let mut fe = Frontend::new(config);
    let metadata = GdprMetadata {
        subject: 42,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: Ts::from_secs(90 * 24 * 3600),
        origin_device: 3,
        objects_to_sharing: false,
    };
    let r = fe.run(
        &Session::new(Actor::Controller),
        Request::Create {
            key: 1,
            payload: PAYLOAD.to_vec(),
            metadata,
        },
    );
    assert!(r.is_done());
    // A derived analytics mirror — identifying and invertible — so the
    // illegal-inference property has something to find. Planting it is a
    // forensic-guard action: it models data copied outside the request
    // path.
    let unit = fe.unit_of_key(1).expect("created");
    fe.forensic()
        .plant_derived(&[unit], "analytics-mirror", true, true, PAYLOAD, 2);
    // Data at rest before the request arrives (flushed pages / runs).
    fe.forensic().checkpoint();
    fe
}

fn main() {
    let controller = Session::new(Actor::Controller);
    for interp in ErasureInterpretation::ALL {
        println!("== erase as: {interp} ==");
        for backend in BackendKind::ALL {
            let mut fe = fresh_frontend(backend);
            assert!(fe
                .run(
                    &controller,
                    Request::Erase {
                        key: 1,
                        interpretation: interp,
                    },
                )
                .outcome
                .is_ok());

            let read_back = fe
                .run(&Session::new(Actor::Processor), Request::Read { key: 1 })
                .outcome;
            let findings = fe.forensic().scan(PAYLOAD);
            println!(
                "   [{:<4}] read-after-erase: {read_back:?}",
                backend.label()
            );
            println!(
                "   [{:<4}] forensic residuals: {} ({})",
                backend.label(),
                findings.total(),
                findings.describe()
            );
            let restored = fe
                .run(&controller, Request::Restore { key: 1 })
                .outcome
                .is_ok();
            println!(
                "   [{:<4}] restore attempt: {restored} ({})",
                backend.label(),
                if interp == ErasureInterpretation::ReversiblyInaccessible {
                    "this grounding is invertible"
                } else {
                    "irreversible"
                }
            );
        }
        println!();
    }

    // Figure 3: one unit staged through every interpretation over time
    // (heap-backed; the staging is identical on the LSM).
    let mut fe = fresh_frontend(BackendKind::Heap);
    let unit = fe.unit_of_key(1).expect("created");
    let mut stage = |at_secs: u64, interpretation: ErasureInterpretation| {
        fe.clock().advance_to(Ts::from_secs(at_secs));
        fe.run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation,
            },
        );
    };
    stage(3600, ErasureInterpretation::ReversiblyInaccessible);
    stage(7200, ErasureInterpretation::Deleted);
    stage(9000, ErasureInterpretation::StronglyDeleted);
    stage(10800, ErasureInterpretation::PermanentlyDeleted);
    let tl = ErasureTimeline::from_history(fe.history(), unit);
    println!("{}", tl.render());
}
