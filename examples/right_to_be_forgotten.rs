//! The right to be forgotten, under all four groundings of "erase" —
//! on *both* storage backends.
//!
//! A subject requests erasure (GDPR Art. 17). The same request is executed
//! under each interpretation on a fresh engine — once over the
//! PostgreSQL-style heap and once over the Cassandra-style LSM tree — and
//! after each one the forensic scanner reports what a seized disk would
//! still reveal. Table 1 and Figure 3, live, with the paper's claim that
//! groundings hold independently of the underlying system made visible:
//! the residual *mechanics* differ per backend (dead tuples and WAL
//! records vs shadowed run entries), but the grounded *properties* agree.
//!
//! ```sh
//! cargo run --release --example right_to_be_forgotten
//! ```

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::timeline::ErasureTimeline;
use data_case::engine::db::{Actor, CompliantDb, OpResult};
use data_case::engine::erasure::{erase_now, restore_now};
use data_case::engine::profiles::EngineConfig;
use data_case::storage::backend::BackendKind;
use data_case::workloads::opstream::Op;
use data_case::workloads::record::GdprMetadata;

const PAYLOAD: &[u8] = b"SUBJECT-42-LOCATION-TRACE-SENSITIVE";

fn fresh_db(backend: BackendKind) -> CompliantDb {
    let mut config = EngineConfig::p_sys().with_backend(backend);
    config.tuple_encryption = None; // keep bytes visible so forensics bite
    let mut db = CompliantDb::new(config);
    let metadata = GdprMetadata {
        subject: 42,
        purpose: data_case::core::purpose::well_known::smart_space(),
        ttl: data_case::sim::time::Ts::from_secs(90 * 24 * 3600),
        origin_device: 3,
        objects_to_sharing: false,
    };
    let r = db.execute(
        &Op::Create {
            key: 1,
            payload: PAYLOAD.to_vec(),
            metadata,
        },
        Actor::Controller,
    );
    assert_eq!(r, OpResult::Done);
    // A derived analytics mirror — identifying and invertible — so the
    // illegal-inference property has something to find.
    let unit = db.unit_of_key(1).expect("created");
    let now = db.clock().now();
    let derived = db.state_mut().derive(
        &[unit],
        "analytics-mirror",
        true,
        true,
        data_case::core::value::Value::Bytes(PAYLOAD.to_vec()),
        now,
    );
    db.backend_mut()
        .insert(2, derived.0, PAYLOAD)
        .expect("mirror insert");
    db.bind_derived_key(derived, 2);
    // Data at rest before the request arrives (flushed pages / runs).
    db.backend_mut().checkpoint();
    db
}

fn main() {
    for interp in ErasureInterpretation::ALL {
        println!("== erase as: {interp} ==");
        for backend in BackendKind::ALL {
            let mut db = fresh_db(backend);
            assert!(erase_now(&mut db, 1, interp));

            let read_back = db.execute(&Op::ReadData { key: 1 }, Actor::Processor);
            let findings = db.forensic(PAYLOAD);
            println!(
                "   [{:<4}] read-after-erase: {read_back:?}",
                backend.label()
            );
            println!(
                "   [{:<4}] forensic residuals: {} ({})",
                backend.label(),
                findings.total(),
                findings.describe()
            );
            let restored = restore_now(&mut db, 1);
            println!(
                "   [{:<4}] restore attempt: {restored} ({})",
                backend.label(),
                if interp == ErasureInterpretation::ReversiblyInaccessible {
                    "this grounding is invertible"
                } else {
                    "irreversible"
                }
            );
        }
        println!();
    }

    // Figure 3: one unit staged through every interpretation over time
    // (heap-backed; the staging is identical on the LSM).
    let mut db = fresh_db(BackendKind::Heap);
    let unit = db.unit_of_key(1).expect("created");
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(3600));
    erase_now(&mut db, 1, ErasureInterpretation::ReversiblyInaccessible);
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(7200));
    erase_now(&mut db, 1, ErasureInterpretation::Deleted);
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(9000));
    erase_now(&mut db, 1, ErasureInterpretation::StronglyDeleted);
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(10800));
    erase_now(&mut db, 1, ErasureInterpretation::PermanentlyDeleted);
    let tl = ErasureTimeline::from_history(db.history(), unit);
    println!("{}", tl.render());
}
