//! Compliance by construction (paper §4.4 + §6): a pre-deployment PIA on
//! the engine configuration, a retention sweeper that erases data *before*
//! G17 can break, and a regulator-style certification at the end.
//!
//! ```sh
//! cargo run --release --example compliance_by_construction
//! ```

use data_case::engine::pia::{assess, certify};
use data_case::engine::sweeper::{next_due, sweep, SweeperConfig};
use data_case::prelude::*;

fn main() {
    // 1. PIA first (GDPR Art. 35): assess candidate configurations before
    //    any personal data is touched.
    println!("--- pre-deployment impact assessment ---\n");
    for config in [
        EngineConfig::stock(DeleteStrategy::DeleteOnly),
        EngineConfig::p_base(),
        EngineConfig::p_sys(),
    ] {
        let pia = assess(&config);
        println!("{}", pia.render());
        println!(
            "acceptable for GDPR without retrofit: {}\n",
            pia.acceptable_for(&Regulation::gdpr())
        );
    }

    // 2. Deploy the acceptable profile and collect data with staggered
    //    retention deadlines — one batch, one session, one response per
    //    record.
    let mut fe = Frontend::new(EngineConfig::p_base());
    let controller = Session::new(Actor::Controller);
    let collect: Batch = (0..6u64)
        .map(|i| Request::Create {
            key: i,
            payload: format!("reading-{i}").into_bytes(),
            metadata: GdprMetadata {
                subject: i as u32,
                purpose: data_case::core::purpose::well_known::smart_space(),
                ttl: Ts::from_secs(3600 * (i + 1)), // expire hourly, staggered
                origin_device: 1,
                objects_to_sharing: false,
            },
        })
        .collect();
    for r in fe.submit(&controller, &collect) {
        assert!(r.is_done());
    }

    // 3. Run the sweeper at each due instant: G17 never breaks.
    let sweeper = SweeperConfig {
        lead: Dur::from_secs(300),
        ..SweeperConfig::default()
    };
    println!("--- retention sweeping ---\n");
    while let Some(due) = next_due(&fe, sweeper) {
        fe.clock().advance_to(due);
        let report = sweep(&mut fe, sweeper);
        let check = fe.compliance_report(&Regulation::gdpr());
        println!(
            "sweep at {:>10}: erased {:?} | G17 violations: {}",
            format!("{}", fe.clock().now()),
            report.erased,
            check.of_invariant("G17").len(),
        );
        assert!(check.of_invariant("G17").is_empty());
    }

    // 4. Certification (the DPA's process): checker + empirical probes +
    //    declared groundings.
    println!("\n--- certification ---\n");
    let cert = certify(&mut fe, &Regulation::gdpr());
    println!(
        "regulation: {} | checker: {} | probes: {}/{}",
        cert.regulation, cert.checker_compliant, cert.probes_passed, cert.probes_total
    );
    for g in &cert.declared_groundings {
        println!("  declared: {g}");
    }
    println!(
        "\ncertificate {}",
        if cert.granted() { "GRANTED" } else { "DENIED" }
    );
    assert!(cert.granted());
}
