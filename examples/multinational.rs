//! Multinational compliance (paper §4.3): one system trace, three
//! regulations, three different verdicts — the point of making the
//! grounding explicit instead of baked-in.
//!
//! ```sh
//! cargo run --release --example multinational
//! ```

use data_case::prelude::*;

fn billing_record() -> Request {
    Request::Create {
        key: 1,
        payload: b"billing-record-of-subject-9".to_vec(),
        metadata: GdprMetadata {
            subject: 9,
            purpose: data_case::core::purpose::well_known::billing(),
            ttl: Ts::from_secs(3600), // 1 simulated hour
            origin_device: 1,
            objects_to_sharing: true,
        },
    }
}

fn main() {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut fe = Frontend::new(config);
    let controller = Session::new(Actor::Controller);

    // Collect a record whose retention deadline is short; then let the
    // deadline pass and erase with plain deletion.
    assert!(fe.run(&controller, billing_record()).is_done());

    // Erase *before* the deadline with plain deletion.
    assert!(fe
        .run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::Deleted,
            },
        )
        .outcome
        .is_ok());
    // Jump past the deadline plus every regulation's grace window.
    fe.clock().advance_to(Ts::from_secs(60 * 24 * 3600));

    let regulations = [
        Regulation::gdpr(),
        Regulation::gdpr_strict_member_state(),
        Regulation::ccpa(),
    ];
    for reg in &regulations {
        let report = fe.compliance_report(reg);
        println!(
            "{:<28} min-erasure={:<24} verdict: {}",
            reg.name,
            reg.min_erasure.label(),
            if report.is_compliant() {
                "COMPLIANT"
            } else {
                "NON-COMPLIANT"
            }
        );
        for v in report.violations.iter().take(2) {
            println!("    {v}");
        }
    }

    println!(
        "\nThe same trace satisfies GDPR and CCPA (minimum grounding: delete)\n\
         but fails the strict member state, which grounds erasure as STRONG\n\
         deletion — plain deletion leaves identifying derived data eligible.\n\
         Fixing it is a grounding decision, not a code rewrite: erase with\n\
         StronglyDeleted instead."
    );

    // Do it right for the strict regime on a fresh engine.
    let mut config2 = EngineConfig::p_sys();
    config2.tuple_encryption = None;
    let mut fe2 = Frontend::new(config2);
    fe2.run(&controller, billing_record());
    assert!(fe2
        .run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::StronglyDeleted,
            },
        )
        .outcome
        .is_ok());
    fe2.clock().advance_to(Ts::from_secs(60 * 24 * 3600));
    let strict = fe2.compliance_report(&Regulation::gdpr_strict_member_state());
    println!(
        "\nre-grounded erase as strong deletion → strict member state: {}",
        if strict.is_compliant() {
            "COMPLIANT"
        } else {
            "NON-COMPLIANT"
        }
    );
}
