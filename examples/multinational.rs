//! Multinational compliance (paper §4.3): one system trace, three
//! regulations, three different verdicts — the point of making the
//! grounding explicit instead of baked-in.
//!
//! ```sh
//! cargo run --release --example multinational
//! ```

use data_case::core::grounding::erasure::ErasureInterpretation;
use data_case::core::regulation::Regulation;
use data_case::engine::db::{Actor, CompliantDb};
use data_case::engine::erasure::erase_now;
use data_case::engine::profiles::EngineConfig;
use data_case::workloads::opstream::Op;
use data_case::workloads::record::GdprMetadata;

fn main() {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut db = CompliantDb::new(config);

    // Collect a record whose retention deadline is short; then let the
    // deadline pass and erase with plain deletion.
    let metadata = GdprMetadata {
        subject: 9,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: data_case::sim::time::Ts::from_secs(3600), // 1 simulated hour
        origin_device: 1,
        objects_to_sharing: true,
    };
    db.execute(
        &Op::Create {
            key: 1,
            payload: b"billing-record-of-subject-9".to_vec(),
            metadata,
        },
        Actor::Controller,
    );

    // Erase *before* the deadline with plain deletion.
    assert!(erase_now(&mut db, 1, ErasureInterpretation::Deleted));
    // Jump past the deadline plus every regulation's grace window.
    db.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(60 * 24 * 3600));

    let regulations = [
        Regulation::gdpr(),
        Regulation::gdpr_strict_member_state(),
        Regulation::ccpa(),
    ];
    for reg in &regulations {
        let report = db.compliance_report(reg);
        println!(
            "{:<28} min-erasure={:<24} verdict: {}",
            reg.name,
            reg.min_erasure.label(),
            if report.is_compliant() {
                "COMPLIANT"
            } else {
                "NON-COMPLIANT"
            }
        );
        for v in report.violations.iter().take(2) {
            println!("    {v}");
        }
    }

    println!(
        "\nThe same trace satisfies GDPR and CCPA (minimum grounding: delete)\n\
         but fails the strict member state, which grounds erasure as STRONG\n\
         deletion — plain deletion leaves identifying derived data eligible.\n\
         Fixing it is a grounding decision, not a code rewrite: erase with\n\
         StronglyDeleted instead."
    );

    // Do it right for the strict regime on a fresh engine.
    let mut config2 = EngineConfig::p_sys();
    config2.tuple_encryption = None;
    let mut db2 = CompliantDb::new(config2);
    let metadata2 = GdprMetadata {
        subject: 9,
        purpose: data_case::core::purpose::well_known::billing(),
        ttl: data_case::sim::time::Ts::from_secs(3600),
        origin_device: 1,
        objects_to_sharing: true,
    };
    db2.execute(
        &Op::Create {
            key: 1,
            payload: b"billing-record-of-subject-9".to_vec(),
            metadata: metadata2,
        },
        Actor::Controller,
    );
    assert!(erase_now(
        &mut db2,
        1,
        ErasureInterpretation::StronglyDeleted
    ));
    db2.clock()
        .advance_to(data_case::sim::time::Ts::from_secs(60 * 24 * 3600));
    let strict = db2.compliance_report(&Regulation::gdpr_strict_member_state());
    println!(
        "\nre-grounded erase as strong deletion → strict member state: {}",
        if strict.is_compliant() {
            "COMPLIANT"
        } else {
            "NON-COMPLIANT"
        }
    );
}
