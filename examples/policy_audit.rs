//! Policy-consistent processing (G6) and demonstrable compliance (IX).
//!
//! An ad partner tries to read personal data it has no policy for; the
//! enforcement layer denies it, so the action history stays
//! policy-consistent and the compliance checker stays green. Then the same
//! rogue read is *injected* into the history (as if enforcement had been
//! bypassed) and the checker catches it. Finally the auditor verifies the
//! tamper-evident log chain — the paper's "demonstrable compliance".
//!
//! ```sh
//! cargo run --release --example policy_audit
//! ```

use data_case::core::action::Action;
use data_case::core::history::HistoryTuple;
use data_case::core::regulation::Regulation;
use data_case::engine::db::{Actor, CompliantDb, OpResult};
use data_case::engine::profiles::EngineConfig;
use data_case::workloads::gdprbench::GdprBench;

fn main() {
    let mut db = CompliantDb::new(EngineConfig::p_sys());
    let mut bench = GdprBench::new(2024, 100);
    for op in bench.load_phase(500) {
        db.execute(&op, Actor::Controller);
    }
    println!("loaded 500 records under P_SYS (FGAC + encrypted logs)");

    // Legitimate processing.
    for op in bench.ops(200, data_case::workloads::gdprbench::Mix::wcus()) {
        db.execute(&op, Actor::Subject);
    }

    // The ad partner has no policy on unit 1 — FGAC denies the read
    // *before* it reaches storage. Denied actions never enter the history,
    // which is exactly how enforcement preserves G6.
    let rogue_entity = db.entities().by_name("AdPartner").expect("registered").id;
    let denied_before = db.denied();
    let probe = db.execute(
        &data_case::workloads::opstream::Op::ReadData { key: 1 },
        Actor::Processor, // processor acting outside its purpose windows
    );
    println!(
        "in-band probe outcome: {probe:?} (denials so far: {})",
        db.denied()
    );
    assert!(db.denied() >= denied_before);

    let clean = db.compliance_report(&Regulation::gdpr());
    println!("\n-- with enforcement --\n{}", clean.render());
    assert!(clean.is_compliant());

    // Now simulate an enforcement bypass: the rogue read gets recorded in
    // the action history without any covering policy.
    let unit = db.unit_of_key(1).expect("loaded");
    db.record_history(HistoryTuple {
        unit,
        purpose: data_case::core::purpose::well_known::advertising(),
        entity: rogue_entity,
        action: Action::Read,
        at: db.clock().now(),
    });
    let dirty = db.compliance_report(&Regulation::gdpr());
    println!(
        "-- after a bypassed read is found in the history --\n{}",
        dirty.render()
    );
    assert!(!dirty.is_compliant());
    for v in dirty.of_invariant("G6") {
        println!("  {v}");
    }

    // The auditor's integrity check over the encrypted log.
    println!(
        "\naudit log: {} records, tamper-evident chain valid: {}",
        db.logger().records(),
        db.logger_mut().verify_chain()
    );
    let r = db.execute(
        &data_case::workloads::opstream::Op::ReadMeta { key: 1 },
        Actor::Controller,
    );
    assert!(!matches!(r, OpResult::Denied), "controller meta access");
}
