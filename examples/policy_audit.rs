//! Policy-consistent processing (G6) and demonstrable compliance (IX).
//!
//! An ad partner tries to read personal data it has no policy for; the
//! enforcement layer denies it, so the action history stays
//! policy-consistent and the compliance checker stays green. Then the same
//! rogue read is *injected* into the history (as if enforcement had been
//! bypassed — which is exactly what the forensic guard models) and the
//! checker catches it. Finally the auditor verifies the tamper-evident
//! log chain — the paper's "demonstrable compliance".
//!
//! ```sh
//! cargo run --release --example policy_audit
//! ```

use data_case::core::action::Action;
use data_case::core::history::HistoryTuple;
use data_case::prelude::*;
use data_case::workloads::gdprbench::GdprBench;

fn main() {
    let mut fe = Frontend::new(EngineConfig::p_sys());
    let mut bench = GdprBench::new(2024, 100);
    fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(500));
    println!("loaded 500 records under P_SYS (FGAC + encrypted logs)");

    // Legitimate processing.
    fe.submit_ops(
        &Session::new(Actor::Subject),
        &bench.ops(200, data_case::workloads::gdprbench::Mix::wcus()),
    );

    // The ad partner has no policy on unit 1 — FGAC denies the read
    // *before* it reaches storage, and the typed error says why. Denied
    // actions never enter the history, which is exactly how enforcement
    // preserves G6.
    let rogue_entity = fe.entities().by_name("AdPartner").expect("registered").id;
    let denied_before = fe.denied();
    let probe = fe.run(
        // processor declaring a purpose it holds no policy for
        &Session::new(Actor::Processor).for_purpose(data_case::core::purpose::well_known::audit()),
        Request::Read { key: 1 },
    );
    println!(
        "in-band probe outcome: {:?} (denials so far: {})",
        probe.outcome,
        fe.denied()
    );
    assert!(probe.is_denied());
    assert!(fe.denied() > denied_before);

    let clean = fe.compliance_report(&Regulation::gdpr());
    println!("\n-- with enforcement --\n{}", clean.render());
    assert!(clean.is_compliant());

    // Now simulate an enforcement bypass: the rogue read gets recorded in
    // the action history without any covering policy.
    let unit = fe.unit_of_key(1).expect("loaded");
    let at = fe.clock().now();
    fe.forensic().inject_history(HistoryTuple {
        unit,
        purpose: data_case::core::purpose::well_known::advertising(),
        entity: rogue_entity,
        action: Action::Read,
        at,
    });
    let dirty = fe.compliance_report(&Regulation::gdpr());
    println!(
        "-- after a bypassed read is found in the history --\n{}",
        dirty.render()
    );
    assert!(!dirty.is_compliant());
    for v in dirty.of_invariant("G6") {
        println!("  {v}");
    }

    // The auditor's integrity check over the encrypted log.
    println!(
        "\naudit log: {} records, tamper-evident chain valid: {}",
        fe.audit_records(),
        fe.forensic().verify_chain()
    );
    let r = fe.run(
        &Session::new(Actor::Controller),
        Request::ReadMeta { key: 1 },
    );
    assert!(!r.is_denied(), "controller meta access");
}
