//! Served engine: two tenants share one concurrent engine through the
//! binary wire protocol, over real loopback sockets.
//!
//! ```sh
//! cargo run --release --example served_engine
//! ```
//!
//! The gateway authenticates each connection with a tenant handshake,
//! rewrites tenant-local keys into the tenant's block of the shared
//! keyspace, and executes every batch under a key-range-scoped engine
//! session — so the same local key `1` names different records for
//! different tenants, and no request can cross the block boundary.

use data_case::prelude::*;
use data_case::server::{Client, Server, TenantSpec};

fn record(key: u64, subject: u32, note: &str) -> Request {
    Request::Create {
        key,
        payload: format!("person={subject:06} note={note};").into_bytes(),
        metadata: GdprMetadata {
            subject,
            purpose: data_case::core::purpose::well_known::smart_space(),
            ttl: Ts::from_secs(90 * 24 * 3600),
            origin_device: 3,
            objects_to_sharing: false,
        },
    }
}

fn main() {
    // One 4-shard P_Base engine behind a loopback TCP gateway, hosting
    // two tenants. Tenant ids (and so keyspace blocks) follow
    // registration order: acme = 1, globex = 2.
    let server = Server::spawn(
        EngineConfig::p_base(),
        4,
        &[
            TenantSpec::new("acme", "a-token"),
            TenantSpec::new("globex", "g-token"),
        ],
    );
    println!("gateway listening on {}", server.addr());

    // Each tenant dials in with its own credentials. The Welcome frame
    // carries the assigned tenant id and the engine's shard count.
    let mut acme = Client::connect(server.addr(), "acme", "a-token", Actor::Controller)
        .expect("acme handshake");
    let mut globex = Client::connect(server.addr(), "globex", "g-token", Actor::Controller)
        .expect("globex handshake");
    println!(
        "acme is tenant {} — globex is tenant {} — {} shards behind the gateway",
        acme.tenant_id, globex.tenant_id, acme.shards
    );

    // Both tenants store under the SAME local key 1. The gateway's
    // namespacing keeps the records apart; neither ever sees a global key.
    acme.call(&[record(1, 7, "acme-meter-reading")])
        .expect("acme create");
    globex
        .call(&[record(1, 7, "globex-badge-swipe-entrance")])
        .expect("globex create");

    for (name, client) in [("acme", &mut acme), ("globex", &mut globex)] {
        let replies = client
            .call(&[Request::Read { key: 1 }])
            .expect("read own record");
        match replies[0].outcome {
            Ok(Reply::Value(n)) => println!("{name} reads its own key 1: {n} bytes"),
            ref other => println!("{name}: unexpected {other:?}"),
        }
    }

    // Wrong credentials never reach the engine.
    match Client::connect(server.addr(), "acme", "guessed", Actor::Processor) {
        Err(err) => println!("bad token rejected at the handshake: {err}"),
        Ok(_) => unreachable!("the gateway must reject a bad token"),
    }

    // A key outside the tenant's 32-bit block is refused at the gateway —
    // and because the frame itself was well-formed, the connection
    // survives and keeps serving.
    match acme.call(&[Request::Read { key: 1 << 32 }]) {
        Err(err) => println!("out-of-block key refused: {err}"),
        Ok(_) => unreachable!("the gateway must refuse out-of-block keys"),
    }
    assert!(acme.call(&[Request::Read { key: 1 }]).is_ok());

    // Orderly teardown: clients say goodbye, then the gateway drains its
    // connections and returns the per-shard frontends for inspection.
    acme.goodbye().expect("acme goodbye");
    globex.goodbye().expect("globex goodbye");
    let mut frontends = server.shutdown();
    let head = merged_chain_head(&mut frontends);
    println!(
        "gateway drained: {} shards, merged audit chain head {:02x}{:02x}..{:02x}{:02x}",
        frontends.len(),
        head[0],
        head[1],
        head[30],
        head[31]
    );
    for (shard, fe) in frontends.iter_mut().enumerate() {
        let report = fe.compliance_report(&Regulation::gdpr());
        println!(
            "shard {shard}: audit chain verifies = {}, TenantIsolation violations = {}",
            fe.forensic().verify_chain(),
            report.of_invariant("X").len()
        );
        assert!(report.of_invariant("X").is_empty());
    }
}
