#![warn(missing_docs)]
//! # datacase-policy
//!
//! The three policy-enforcement substrates behind the paper's compliance
//! profiles (§4.2):
//!
//! * [`rbac`] — role-based access control: the coarse, cheap enforcement
//!   P_Base uses (roles, role attributes, memberships);
//! * [`metatable`] — policies stored in a *separate metadata table*, so
//!   every data operation pays a join/lookup against it (P_GBench);
//! * [`fgac`] — Sieve-style fine-grained access control middleware:
//!   per-unit policies, an (entity, purpose) policy index with
//!   time-interval filtering, and per-tuple guard evaluation (P_SYS).
//!
//! All three implement [`enforcer::PolicyEnforcer`], charge their distinct
//! cost signatures to the shared [`datacase_sim::SimClock`], and report the
//! metadata bytes they occupy (Table 2's space accounting).

pub mod enforcer;
pub mod fgac;
pub mod metatable;
pub mod rbac;

pub use enforcer::{
    AccessRequest, Decision, DecisionScope, PolicyEnforcer, PolicyEpoch, StampedDecision,
    UnitClass, VersionedEnforcer,
};
pub use fgac::{FgacConfig, FgacEnforcer};
pub use metatable::MetaTableEnforcer;
pub use rbac::{RbacEnforcer, Role};
