//! Role-based access control — P_Base's enforcement (paper §4.2: "roles,
//! role attributes, and role memberships").
//!
//! RBAC is *coarse*: authorisation depends on (role, purpose, action),
//! not on the individual data unit. That is why it is the cheapest (one
//! hash lookup per check) and the least restrictive interpretation of
//! lawful processing — per-unit consent windows are not consulted.

use std::collections::{HashMap, HashSet};

use datacase_core::action::ActionKind;
use datacase_core::ids::{EntityId, UnitId};
use datacase_core::policy::Policy;
use datacase_core::purpose::PurposeId;
use datacase_sim::time::Ts;
use datacase_sim::{Meter, SimClock};

use crate::enforcer::{AccessRequest, Decision, DecisionScope, PolicyEnforcer};

/// A role: a named set of (purpose, action-kind) capabilities.
#[derive(Clone, Debug, Default)]
pub struct Role {
    /// Role name.
    pub name: String,
    /// Capabilities: purpose × allowed action kinds.
    pub grants: Vec<(PurposeId, Vec<ActionKind>)>,
}

impl Role {
    /// A role with the given grants.
    pub fn new(name: &str, grants: Vec<(PurposeId, Vec<ActionKind>)>) -> Role {
        Role {
            name: name.to_owned(),
            grants,
        }
    }

    fn permits(&self, purpose: PurposeId, action: ActionKind) -> bool {
        self.grants
            .iter()
            .any(|(p, kinds)| *p == purpose && kinds.contains(&action))
    }
}

/// The RBAC enforcer.
pub struct RbacEnforcer {
    roles: Vec<Role>,
    membership: HashMap<EntityId, HashSet<usize>>,
    subject_role: Option<usize>,
    units: usize,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for RbacEnforcer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RbacEnforcer")
            .field("roles", &self.roles.len())
            .field("members", &self.membership.len())
            .finish()
    }
}

impl RbacEnforcer {
    /// An enforcer with no roles.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> RbacEnforcer {
        RbacEnforcer {
            roles: Vec::new(),
            membership: HashMap::new(),
            subject_role: None,
            units: 0,
            clock,
            meter,
        }
    }

    /// Designate the role newly seen data-subjects are enrolled into.
    pub fn set_subject_role(&mut self, role_id: usize) {
        assert!(role_id < self.roles.len(), "unknown role id");
        self.subject_role = Some(role_id);
    }

    /// Define a role, returning its id.
    pub fn define_role(&mut self, role: Role) -> usize {
        self.roles.push(role);
        self.roles.len() - 1
    }

    /// Add an entity to a role.
    pub fn add_member(&mut self, entity: EntityId, role_id: usize) {
        assert!(role_id < self.roles.len(), "unknown role id");
        self.membership.entry(entity).or_default().insert(role_id);
    }

    /// Remove an entity from a role.
    pub fn remove_member(&mut self, entity: EntityId, role_id: usize) {
        if let Some(rs) = self.membership.get_mut(&entity) {
            rs.remove(&role_id);
        }
    }
}

impl PolicyEnforcer for RbacEnforcer {
    fn name(&self) -> &'static str {
        "RBAC (P_Base)"
    }

    fn register_unit(&mut self, _unit: UnitId, _policies: &[Policy]) {
        // RBAC keeps no per-unit state — that is exactly its coarseness.
        self.units += 1;
    }

    fn on_new_subject(&mut self, entity: EntityId) {
        if let Some(role) = self.subject_role {
            self.membership.entry(entity).or_default().insert(role);
        }
    }

    fn grant(&mut self, _unit: UnitId, _policy: Policy) {}

    fn revoke_all(&mut self, _unit: UnitId, _at: Ts) -> usize {
        0
    }

    fn forget_unit(&mut self, _unit: UnitId) -> u64 {
        self.units = self.units.saturating_sub(1);
        0
    }

    fn check(&mut self, req: &AccessRequest) -> Decision {
        self.clock
            .charge_nanos(self.clock.model().policy_check_coarse);
        Meter::bump(&self.meter.policy_checks, 1);
        let allowed = self
            .membership
            .get(&req.entity)
            .map(|roles| {
                roles
                    .iter()
                    .any(|&r| self.roles[r].permits(req.purpose, req.action))
            })
            .unwrap_or(false);
        if allowed {
            Decision::Allow
        } else {
            Meter::bump(&self.meter.denials, 1);
            Decision::Deny(format!(
                "no role of {} grants {:?} for {}",
                req.entity, req.action, req.purpose
            ))
        }
    }

    fn decision_scope(&self) -> DecisionScope {
        // Authorisation depends on (role, purpose, action) only — one
        // cached decision is valid for every unit. This is the coarseness
        // that makes P_Base cheap, surfaced as cache granularity.
        DecisionScope::Global
    }

    fn metadata_bytes(&self) -> u64 {
        let roles: u64 = self
            .roles
            .iter()
            .map(|r| 32 + r.grants.len() as u64 * 24)
            .sum();
        let members: u64 = self
            .membership
            .values()
            .map(|s| 16 + s.len() as u64 * 8)
            .sum();
        roles + members
    }

    fn policy_count(&self) -> usize {
        self.roles.iter().map(|r| r.grants.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_core::purpose::well_known as wk;
    use std::sync::Arc;

    fn mk() -> RbacEnforcer {
        RbacEnforcer::new(SimClock::commodity(), Arc::new(Meter::new()))
    }

    fn req(entity: u32, purpose: PurposeId, action: ActionKind) -> AccessRequest {
        AccessRequest {
            unit: UnitId(1),
            entity: EntityId(entity),
            purpose,
            action,
            at: Ts::from_secs(10),
        }
    }

    #[test]
    fn role_grants_access() {
        let mut e = mk();
        let billing = e.define_role(Role::new(
            "billing-service",
            vec![(wk::billing(), vec![ActionKind::Read, ActionKind::ReadMeta])],
        ));
        e.add_member(EntityId(1), billing);
        assert!(e.check(&req(1, wk::billing(), ActionKind::Read)).is_allow());
        assert!(!e
            .check(&req(1, wk::billing(), ActionKind::UpdateValue))
            .is_allow());
        assert!(!e.check(&req(2, wk::billing(), ActionKind::Read)).is_allow());
    }

    #[test]
    fn multiple_roles_union() {
        let mut e = mk();
        let r1 = e.define_role(Role::new(
            "reader",
            vec![(wk::billing(), vec![ActionKind::Read])],
        ));
        let r2 = e.define_role(Role::new(
            "eraser",
            vec![(wk::compliance_erase(), vec![ActionKind::Erase])],
        ));
        e.add_member(EntityId(1), r1);
        e.add_member(EntityId(1), r2);
        assert!(e.check(&req(1, wk::billing(), ActionKind::Read)).is_allow());
        assert!(e
            .check(&req(1, wk::compliance_erase(), ActionKind::Erase))
            .is_allow());
    }

    #[test]
    fn membership_revocation() {
        let mut e = mk();
        let r = e.define_role(Role::new(
            "reader",
            vec![(wk::billing(), vec![ActionKind::Read])],
        ));
        e.add_member(EntityId(1), r);
        assert!(e.check(&req(1, wk::billing(), ActionKind::Read)).is_allow());
        e.remove_member(EntityId(1), r);
        assert!(!e.check(&req(1, wk::billing(), ActionKind::Read)).is_allow());
    }

    #[test]
    fn rbac_ignores_per_unit_policies() {
        // The coarseness property: consent windows are not consulted.
        let mut e = mk();
        let r = e.define_role(Role::new(
            "reader",
            vec![(wk::billing(), vec![ActionKind::Read])],
        ));
        e.add_member(EntityId(1), r);
        e.register_unit(UnitId(9), &[]);
        // No unit policy exists, yet RBAC allows: least restrictive.
        assert!(e
            .check(&AccessRequest {
                unit: UnitId(9),
                entity: EntityId(1),
                purpose: wk::billing(),
                action: ActionKind::Read,
                at: Ts::from_secs(1),
            })
            .is_allow());
    }

    #[test]
    fn denials_are_metered() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut e = RbacEnforcer::new(clock, meter.clone());
        let _ = e.check(&req(1, wk::billing(), ActionKind::Read));
        let s = meter.snapshot();
        assert_eq!(s.policy_checks, 1);
        assert_eq!(s.denials, 1);
    }

    #[test]
    fn metadata_footprint_is_small() {
        let mut e = mk();
        let r = e.define_role(Role::new(
            "reader",
            vec![(wk::billing(), vec![ActionKind::Read])],
        ));
        for i in 0..100 {
            e.add_member(EntityId(i), r);
        }
        // Constant in the number of data units: the whole point of P_Base.
        for u in 0..10_000u64 {
            e.register_unit(UnitId(u), &[]);
        }
        assert!(e.metadata_bytes() < 10_000);
    }

    #[test]
    #[should_panic(expected = "unknown role")]
    fn unknown_role_panics() {
        let mut e = mk();
        e.add_member(EntityId(1), 99);
    }
}
