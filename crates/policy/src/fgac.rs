//! Sieve-style fine-grained access control — P_SYS's middleware (paper
//! §4.2: "retrofitted with a middleware that comprises Sieve \[51\] and
//! associated metadata which implements FGAC by exploiting a variety of
//! its features such as UDFs, index usage hints, etc. to scale to a large
//! number of policies").
//!
//! Mechanics reproduced:
//!
//! * per-unit fine-grained policies (arbitrary cardinality);
//! * a **policy index** keyed by `(entity, purpose)` whose postings are
//!   sorted by unit id for binary search — Sieve's answer to "don't scan
//!   every policy on every tuple";
//! * per-tuple **guard evaluation** at the fine-check cost — the reason
//!   P_SYS dominates read-heavy WPro in Figure 4b;
//! * guard metadata (UDF descriptors, index hints) accounted as the large
//!   per-policy metadata footprint behind Table 2's 17.1× space factor.
//!
//! The index can be disabled ([`FgacConfig::use_index`]) to reproduce
//! Sieve's motivating ablation: policy checks degrade to a linear scan
//! over the unit's policy list.

use std::collections::HashMap;

use datacase_core::ids::EntityId;
use datacase_core::ids::UnitId;
use datacase_core::policy::Policy;
use datacase_core::purpose::PurposeId;
use datacase_sim::time::Ts;
use datacase_sim::{Meter, SimClock};

use crate::enforcer::{AccessRequest, Decision, PolicyEnforcer};

/// FGAC middleware configuration.
#[derive(Clone, Copy, Debug)]
pub struct FgacConfig {
    /// Use the (entity, purpose) policy index (Sieve). Disabling it is the
    /// ablation: linear scans over per-unit policies.
    pub use_index: bool,
    /// Guard metadata bytes modelled per policy (UDF descriptors, hints,
    /// provenance of the policy). Sieve's "associated metadata".
    pub guard_bytes_per_policy: u64,
}

impl Default for FgacConfig {
    fn default() -> Self {
        FgacConfig {
            use_index: true,
            guard_bytes_per_policy: 96,
        }
    }
}

/// One stored fine-grained policy with its guard id.
#[derive(Clone, Debug)]
struct StoredPolicy {
    policy: Policy,
    revoked_at: Option<Ts>,
}

impl StoredPolicy {
    fn active_at(&self, t: Ts) -> bool {
        self.policy.active_at(t) && self.revoked_at.map(|r| t < r).unwrap_or(true)
    }
}

/// The FGAC enforcer.
pub struct FgacEnforcer {
    config: FgacConfig,
    /// unit → its policies.
    by_unit: HashMap<UnitId, Vec<StoredPolicy>>,
    /// (entity, purpose) → sorted unit postings (the Sieve index).
    index: HashMap<(EntityId, PurposeId), Vec<UnitId>>,
    policies: usize,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for FgacEnforcer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FgacEnforcer")
            .field("policies", &self.policies)
            .field("index_keys", &self.index.len())
            .field("indexed", &self.config.use_index)
            .finish()
    }
}

impl FgacEnforcer {
    /// A fresh enforcer.
    pub fn new(config: FgacConfig, clock: SimClock, meter: std::sync::Arc<Meter>) -> FgacEnforcer {
        FgacEnforcer {
            config,
            by_unit: HashMap::new(),
            index: HashMap::new(),
            policies: 0,
            clock,
            meter,
        }
    }

    fn index_insert(&mut self, unit: UnitId, policy: &Policy) {
        if !self.config.use_index {
            return;
        }
        let postings = self
            .index
            .entry((policy.entity, policy.purpose))
            .or_default();
        match postings.binary_search(&unit) {
            Ok(_) => {}
            Err(pos) => postings.insert(pos, unit),
        }
    }

    fn add_policy(&mut self, unit: UnitId, policy: Policy) {
        self.index_insert(unit, &policy);
        self.by_unit.entry(unit).or_default().push(StoredPolicy {
            policy,
            revoked_at: None,
        });
        self.policies += 1;
    }
}

impl PolicyEnforcer for FgacEnforcer {
    fn name(&self) -> &'static str {
        "Sieve-style FGAC (P_SYS)"
    }

    fn register_unit(&mut self, unit: UnitId, policies: &[Policy]) {
        // Guard compilation + index insertion per policy.
        let model = self.clock.model().clone();
        self.clock
            .charge_nanos((model.index_maintain + model.policy_check_fine) * policies.len() as u64);
        for p in policies {
            self.add_policy(unit, *p);
        }
    }

    fn grant(&mut self, unit: UnitId, policy: Policy) {
        let model = self.clock.model().clone();
        self.clock
            .charge_nanos(model.index_maintain + model.policy_check_fine);
        self.add_policy(unit, policy);
    }

    fn revoke_all(&mut self, unit: UnitId, at: Ts) -> usize {
        let mut n = 0;
        if let Some(rows) = self.by_unit.get_mut(&unit) {
            for p in rows.iter_mut() {
                if p.revoked_at.is_none() && p.policy.active_at(at) {
                    p.revoked_at = Some(at);
                    n += 1;
                }
            }
        }
        n
    }

    fn forget_unit(&mut self, unit: UnitId) -> u64 {
        let Some(rows) = self.by_unit.remove(&unit) else {
            return 0;
        };
        for row in &rows {
            if let Some(postings) = self.index.get_mut(&(row.policy.entity, row.policy.purpose)) {
                if let Ok(pos) = postings.binary_search(&unit) {
                    postings.remove(pos);
                }
            }
        }
        self.policies -= rows.len();
        rows.len() as u64 * (64 + self.config.guard_bytes_per_policy)
    }

    fn check(&mut self, req: &AccessRequest) -> Decision {
        self.check_with_horizon(req).0
    }

    fn check_with_horizon(&mut self, req: &AccessRequest) -> (Decision, Ts) {
        let model = self.clock.model().clone();
        Meter::bump(&self.meter.policy_checks, 1);
        let rows = self
            .by_unit
            .get(&req.unit)
            .map(|r| r.len() as u64)
            .unwrap_or(0);
        if self.config.use_index {
            // Sieve path: one index probe narrows to the posting list and
            // the index-usage hints let the rewritten query evaluate only
            // the guards attached to this tuple.
            self.clock.charge_nanos(model.index_probe);
            Meter::bump(&self.meter.index_probes, 1);
            let candidate = self
                .index
                .get(&(req.entity, req.purpose))
                .map(|postings| postings.binary_search(&req.unit).is_ok())
                .unwrap_or(false);
            if !candidate {
                Meter::bump(&self.meter.denials, 1);
                // No posting: no policy ⟨entity, purpose⟩ was ever granted
                // on this unit, so only a grant (an epoch bump) can flip
                // the decision.
                let reason = format!(
                    "policy index has no entry ({}, {}) covering unit {}",
                    req.entity, req.purpose, req.unit
                );
                return (Decision::Deny(reason), Ts::MAX);
            }
            // Per-tuple guard evaluation (UDF calls): one per policy row
            // attached to the tuple.
            self.clock
                .charge_nanos(model.policy_check_fine * rows.max(1));
        } else {
            // Ablation — no policy index: the middleware scans the policy
            // rows to find applicable ones AND the rewritten query cannot
            // prune guard evaluation with index hints, so the UDF guard
            // set is several times larger (Sieve's measured 3–5× effect).
            self.clock.charge_nanos(
                model.policy_check_coarse * rows + model.policy_check_fine * rows.max(1) * 4,
            );
        }
        // Allow horizon: the latest effective end (window end, clipped by
        // revocation) among active rows. Deny horizon: just before the
        // earliest not-yet-active window.
        let mut allow_until: Option<Ts> = None;
        let mut deny_until = Ts::MAX;
        for row in self
            .by_unit
            .get(&req.unit)
            .map(|r| r.as_slice())
            .unwrap_or(&[])
        {
            if row.policy.entity != req.entity || row.policy.purpose != req.purpose {
                continue;
            }
            if row.active_at(req.at) {
                let mut end = row.policy.until;
                if let Some(revoked) = row.revoked_at {
                    end = end.min(Ts(revoked.0.saturating_sub(1)));
                }
                allow_until = Some(allow_until.map_or(end, |u| u.max(end)));
            } else if row.policy.from > req.at && row.revoked_at.is_none() {
                deny_until = deny_until.min(Ts(row.policy.from.0.saturating_sub(1)));
            }
        }
        match allow_until {
            Some(until) => (Decision::Allow, until),
            None => {
                Meter::bump(&self.meter.denials, 1);
                let reason = format!(
                    "no active fine-grained policy ⟨{}, {}⟩ on unit {} at {}",
                    req.purpose, req.entity, req.unit, req.at
                );
                (Decision::Deny(reason), deny_until)
            }
        }
    }

    fn metadata_bytes(&self) -> u64 {
        let policy_rows = self.policies as u64 * 64;
        let guards = self.policies as u64 * self.config.guard_bytes_per_policy;
        let index: u64 = self.index.values().map(|p| 24 + p.len() as u64 * 8).sum();
        policy_rows + guards + index
    }

    fn policy_count(&self) -> usize {
        self.policies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_core::action::ActionKind;
    use datacase_core::purpose::well_known as wk;
    use std::sync::Arc;

    fn mk(use_index: bool) -> FgacEnforcer {
        FgacEnforcer::new(
            FgacConfig {
                use_index,
                ..FgacConfig::default()
            },
            SimClock::commodity(),
            Arc::new(Meter::new()),
        )
    }

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn req(unit: u64, entity: u32, at: Ts) -> AccessRequest {
        AccessRequest {
            unit: UnitId(unit),
            entity: EntityId(entity),
            purpose: wk::billing(),
            action: ActionKind::Read,
            at,
        }
    }

    #[test]
    fn fine_grained_windows_enforced() {
        for use_index in [true, false] {
            let mut e = mk(use_index);
            e.register_unit(
                UnitId(1),
                &[Policy::new(wk::billing(), EntityId(1), t(0), t(100))],
            );
            assert!(e.check(&req(1, 1, t(50))).is_allow(), "index={use_index}");
            assert!(!e.check(&req(1, 1, t(200))).is_allow());
            assert!(!e.check(&req(1, 2, t(50))).is_allow());
            assert!(!e.check(&req(2, 1, t(50))).is_allow());
        }
    }

    #[test]
    fn revocation_respected() {
        let mut e = mk(true);
        e.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), t(0))],
        );
        assert_eq!(e.revoke_all(UnitId(1), t(10)), 1);
        assert!(!e.check(&req(1, 1, t(11))).is_allow());
    }

    #[test]
    fn forget_unit_cleans_index_and_bytes() {
        let mut e = mk(true);
        e.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), t(0))],
        );
        let before = e.metadata_bytes();
        let freed = e.forget_unit(UnitId(1));
        assert!(freed > 0);
        assert!(e.metadata_bytes() < before);
        assert!(!e.check(&req(1, 1, t(5))).is_allow());
        assert_eq!(e.policy_count(), 0);
    }

    #[test]
    fn checks_cost_more_than_metatable() {
        let c1 = SimClock::commodity();
        let mut fg = FgacEnforcer::new(FgacConfig::default(), c1.clone(), Arc::new(Meter::new()));
        fg.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), t(0))],
        );
        let t0 = c1.now();
        let _ = fg.check(&req(1, 1, t(5)));
        let fg_cost = c1.now().since(t0);
        // The fine guard evaluation alone exceeds a coarse check.
        assert!(fg_cost.0 >= c1.model().policy_check_fine);
    }

    #[test]
    fn index_scales_better_than_linear_scan() {
        // Many policies on one unit: the ablation's point.
        let policies: Vec<Policy> = (0..200u32)
            .map(|i| Policy::open_ended(wk::billing(), EntityId(i), t(0)))
            .collect();

        let c_idx = SimClock::commodity();
        let mut with_index =
            FgacEnforcer::new(FgacConfig::default(), c_idx.clone(), Arc::new(Meter::new()));
        with_index.register_unit(UnitId(1), &policies);
        let t0 = c_idx.now();
        let _ = with_index.check(&req(1, 7, t(5)));
        let idx_cost = c_idx.now().since(t0);

        let c_lin = SimClock::commodity();
        let mut without = FgacEnforcer::new(
            FgacConfig {
                use_index: false,
                ..FgacConfig::default()
            },
            c_lin.clone(),
            Arc::new(Meter::new()),
        );
        without.register_unit(UnitId(1), &policies);
        let t1 = c_lin.now();
        let _ = without.check(&req(1, 7, t(5)));
        let lin_cost = c_lin.now().since(t1);

        assert!(
            lin_cost.0 > 3 * idx_cost.0,
            "linear {lin_cost:?} vs indexed {idx_cost:?}"
        );
    }

    #[test]
    fn metadata_footprint_grows_with_policies() {
        let mut e = mk(true);
        for u in 0..100u64 {
            e.register_unit(
                UnitId(u),
                &[
                    Policy::open_ended(wk::billing(), EntityId(1), t(0)),
                    Policy::open_ended(wk::retention(), EntityId(2), t(0)),
                ],
            );
        }
        assert_eq!(e.policy_count(), 200);
        // 200 policies × (64 + 96 guard bytes) plus index postings.
        assert!(e.metadata_bytes() > 200 * 160);
    }

    #[test]
    fn duplicate_grants_index_once() {
        let mut e = mk(true);
        e.grant(
            UnitId(1),
            Policy::new(wk::billing(), EntityId(1), t(0), t(10)),
        );
        e.grant(
            UnitId(1),
            Policy::new(wk::billing(), EntityId(1), t(20), t(30)),
        );
        // Two windows, one posting; both enforced.
        assert!(e.check(&req(1, 1, t(5))).is_allow());
        assert!(!e.check(&req(1, 1, t(15))).is_allow());
        assert!(e.check(&req(1, 1, t(25))).is_allow());
    }
}
