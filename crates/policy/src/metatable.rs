//! Metadata-table policy enforcement — P_GBench's mechanism (paper §4.2:
//! "stores policies and other metadata in a table separate from the one
//! containing personal data. Thus, all queries must perform joins to
//! implement appropriate policies").
//!
//! Every check pays the metadata-join cost plus a per-candidate policy
//! evaluation — finer than RBAC (real per-unit consent windows), coarser
//! and cheaper than Sieve-style FGAC.

use std::collections::HashMap;

use datacase_core::ids::UnitId;
use datacase_core::policy::Policy;
use datacase_sim::time::Ts;
use datacase_sim::{Meter, SimClock};

use crate::enforcer::{AccessRequest, Decision, PolicyEnforcer};

/// The separate policy table: unit → its policy rows.
pub struct MetaTableEnforcer {
    table: HashMap<UnitId, Vec<Policy>>,
    policies: usize,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for MetaTableEnforcer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaTableEnforcer")
            .field("units", &self.table.len())
            .field("policies", &self.policies)
            .finish()
    }
}

impl MetaTableEnforcer {
    /// An empty policy table.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> MetaTableEnforcer {
        MetaTableEnforcer {
            table: HashMap::new(),
            policies: 0,
            clock,
            meter,
        }
    }
}

impl PolicyEnforcer for MetaTableEnforcer {
    fn name(&self) -> &'static str {
        "metadata-table join (P_GBench)"
    }

    fn register_unit(&mut self, unit: UnitId, policies: &[Policy]) {
        // Each policy row is an insert into the separate metadata table.
        let model = self.clock.model().clone();
        self.clock
            .charge_nanos((model.metadata_join + model.index_maintain) * policies.len() as u64);
        self.policies += policies.len();
        self.table.insert(unit, policies.to_vec());
    }

    fn grant(&mut self, unit: UnitId, policy: Policy) {
        let model = self.clock.model().clone();
        self.clock
            .charge_nanos(model.metadata_join + model.index_maintain);
        self.table.entry(unit).or_default().push(policy);
        self.policies += 1;
    }

    fn revoke_all(&mut self, unit: UnitId, at: Ts) -> usize {
        // Model revocation as clipping windows to end now.
        let mut n = 0;
        if let Some(rows) = self.table.get_mut(&unit) {
            for p in rows.iter_mut() {
                if p.active_at(at) {
                    p.until = at;
                    n += 1;
                }
            }
        }
        n
    }

    fn forget_unit(&mut self, unit: UnitId) -> u64 {
        if let Some(rows) = self.table.remove(&unit) {
            self.policies -= rows.len();
            16 + rows.len() as u64 * 32
        } else {
            0
        }
    }

    fn check(&mut self, req: &AccessRequest) -> Decision {
        self.check_with_horizon(req).0
    }

    fn check_with_horizon(&mut self, req: &AccessRequest) -> (Decision, Ts) {
        let model = self.clock.model().clone();
        // The join against the separate table.
        self.clock
            .charge_nanos(model.metadata_join + model.index_probe);
        Meter::bump(&self.meter.policy_checks, 1);
        Meter::bump(&self.meter.index_probes, 1);
        let rows = self.table.get(&req.unit);
        let candidates = rows.map(|r| r.len()).unwrap_or(0) as u64;
        self.clock
            .charge_nanos(model.policy_check_coarse * candidates);
        let rows: &[Policy] = rows.map(|r| r.as_slice()).unwrap_or(&[]);
        let matching = rows
            .iter()
            .filter(|p| p.entity == req.entity && p.purpose == req.purpose);
        // Allow horizon: the latest window end among currently active
        // rows. Deny horizon: just before the earliest not-yet-active
        // window (a future `from` flips the decision without any grant).
        let mut allow_until: Option<Ts> = None;
        let mut deny_until = Ts::MAX;
        for p in matching {
            if p.active_at(req.at) {
                allow_until = Some(allow_until.map_or(p.until, |u| u.max(p.until)));
            } else if p.from > req.at {
                deny_until = deny_until.min(Ts(p.from.0.saturating_sub(1)));
            }
        }
        match allow_until {
            Some(until) => (Decision::Allow, until),
            None => {
                Meter::bump(&self.meter.denials, 1);
                let reason = format!(
                    "no policy row ⟨{}, {}⟩ active at {} for unit {}",
                    req.purpose, req.entity, req.at, req.unit
                );
                (Decision::Deny(reason), deny_until)
            }
        }
    }

    fn metadata_bytes(&self) -> u64 {
        // Rows + the per-unit index on the policy table.
        self.policies as u64 * 32 + self.table.len() as u64 * 24
    }

    fn policy_count(&self) -> usize {
        self.policies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_core::action::ActionKind;
    use datacase_core::ids::EntityId;
    use datacase_core::purpose::well_known as wk;
    use std::sync::Arc;

    fn mk() -> MetaTableEnforcer {
        MetaTableEnforcer::new(SimClock::commodity(), Arc::new(Meter::new()))
    }

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn req(unit: u64, entity: u32, at: Ts) -> AccessRequest {
        AccessRequest {
            unit: UnitId(unit),
            entity: EntityId(entity),
            purpose: wk::billing(),
            action: ActionKind::Read,
            at,
        }
    }

    #[test]
    fn per_unit_windows_enforced() {
        let mut e = mk();
        e.register_unit(
            UnitId(1),
            &[Policy::new(wk::billing(), EntityId(1), t(0), t(100))],
        );
        assert!(e.check(&req(1, 1, t(50))).is_allow());
        assert!(!e.check(&req(1, 1, t(150))).is_allow(), "window expired");
        assert!(!e.check(&req(1, 2, t(50))).is_allow(), "wrong entity");
        assert!(!e.check(&req(2, 1, t(50))).is_allow(), "unknown unit");
    }

    #[test]
    fn grant_and_revoke_all() {
        let mut e = mk();
        e.register_unit(UnitId(1), &[]);
        e.grant(
            UnitId(1),
            Policy::open_ended(wk::billing(), EntityId(1), t(0)),
        );
        assert!(e.check(&req(1, 1, t(10))).is_allow());
        assert_eq!(e.revoke_all(UnitId(1), t(20)), 1);
        assert!(!e.check(&req(1, 1, t(21))).is_allow());
        // Paper semantics: the policy row records its own end.
        assert!(e.check(&req(1, 1, t(20))).is_allow(), "inclusive end");
    }

    #[test]
    fn forget_unit_frees_metadata() {
        let mut e = mk();
        e.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), t(0))],
        );
        let before = e.metadata_bytes();
        let freed = e.forget_unit(UnitId(1));
        assert!(freed > 0);
        assert!(e.metadata_bytes() < before);
        assert_eq!(e.policy_count(), 0);
    }

    #[test]
    fn join_cost_charged_per_check() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut e = MetaTableEnforcer::new(clock.clone(), meter.clone());
        e.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), t(0))],
        );
        let t0 = clock.now();
        let _ = e.check(&req(1, 1, t(10)));
        let cost = clock.now().since(t0);
        assert!(
            cost.0 >= clock.model().metadata_join,
            "each check pays the join"
        );
        assert_eq!(meter.snapshot().policy_checks, 1);
    }

    #[test]
    fn costlier_than_rbac() {
        // The profile ordering P_Base < P_GBench on checks.
        let c1 = SimClock::commodity();
        let m1 = Arc::new(Meter::new());
        let mut rbac = crate::rbac::RbacEnforcer::new(c1.clone(), m1);
        let role = rbac.define_role(crate::rbac::Role::new(
            "r",
            vec![(wk::billing(), vec![ActionKind::Read])],
        ));
        rbac.add_member(EntityId(1), role);
        let t0 = c1.now();
        let _ = rbac.check(&req(1, 1, t(10)));
        let rbac_cost = c1.now().since(t0);

        let c2 = SimClock::commodity();
        let m2 = Arc::new(Meter::new());
        let mut mt = MetaTableEnforcer::new(c2.clone(), m2);
        mt.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), t(0))],
        );
        let t1 = c2.now();
        let _ = mt.check(&req(1, 1, t(10)));
        let mt_cost = c2.now().since(t1);
        assert!(mt_cost > rbac_cost);
    }
}
