//! The common enforcement interface, and the versioned wrapper that makes
//! policy decisions *cacheable without staleness*.
//!
//! Every policy-mutating action (grant, revocation, erasure, metadata
//! update) bumps a monotonic [`PolicyEpoch`]; decisions are evaluated
//! through [`VersionedEnforcer::decide_at`], which stamps each outcome
//! with the epoch it was computed at plus a time horizon it provably
//! holds until. A cache that compares stamps against the current epoch
//! can therefore never serve a stale decision — invalidation is a
//! structural property, not a TTL heuristic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datacase_core::action::ActionKind;
use datacase_core::ids::{EntityId, UnitId};
use datacase_core::policy::Policy;
use datacase_core::purpose::PurposeId;
use datacase_sim::time::Ts;

/// One access request: entity `e` wants to perform `action` on `unit` for
/// `purpose` at time `at` — the inputs of the paper's policy-consistency
/// predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRequest {
    /// The data unit being touched.
    pub unit: UnitId,
    /// The acting entity.
    pub entity: EntityId,
    /// The claimed purpose.
    pub purpose: PurposeId,
    /// The action kind.
    pub action: ActionKind,
    /// When.
    pub at: Ts,
}

/// The enforcement outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Permitted.
    Allow,
    /// Denied, with a reason string for the audit log.
    Deny(String),
}

impl Decision {
    /// Was the request allowed?
    pub fn is_allow(&self) -> bool {
        matches!(self, Decision::Allow)
    }
}

/// A monotonic version counter over an enforcer's policy state.
///
/// Bumped by every policy-mutating action; two decisions computed at the
/// same epoch saw the same policy set. `PolicyEpoch` is totally ordered,
/// so "is this cached decision current?" is one integer comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolicyEpoch(pub u64);

impl PolicyEpoch {
    /// The epoch before any mutation.
    pub const ZERO: PolicyEpoch = PolicyEpoch(0);

    /// The next epoch.
    pub fn next(self) -> PolicyEpoch {
        PolicyEpoch(self.0 + 1)
    }
}

impl std::fmt::Display for PolicyEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// How finely a mechanism's decisions vary with the data unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecisionScope {
    /// Decisions depend only on (entity, purpose, action) — RBAC's
    /// coarseness. One cached decision covers every unit.
    Global,
    /// Decisions consult per-unit policy state (metadata tables, FGAC).
    PerUnit,
}

/// The equivalence class of units a decision covers — the unit component
/// of a decision-cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// Unit-independent (a [`DecisionScope::Global`] mechanism).
    Global,
    /// This unit only (a [`DecisionScope::PerUnit`] mechanism).
    Unit(UnitId),
}

/// A [`Decision`] stamped with the [`PolicyEpoch`] it was evaluated at and
/// the instant until which it provably holds absent further mutations
/// (time-based policy expiry: an allow backed by a policy window ending at
/// `t_f` is only guaranteed through `t_f`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StampedDecision {
    /// The outcome.
    pub decision: Decision,
    /// The epoch the outcome was computed at.
    pub epoch: PolicyEpoch,
    /// The decision holds at any `t <= valid_until` at this epoch.
    pub valid_until: Ts,
}

/// A policy enforcement mechanism (one per compliance profile).
pub trait PolicyEnforcer: Send {
    /// The mechanism's display name.
    fn name(&self) -> &'static str;

    /// Register a new unit with its initial policies.
    fn register_unit(&mut self, unit: UnitId, policies: &[Policy]);

    /// A new data-subject entity appeared (RBAC uses this to enrol the
    /// subject into the data-subject role; unit-scoped mechanisms ignore
    /// it).
    fn on_new_subject(&mut self, _entity: EntityId) {}

    /// Grant an additional policy on a unit.
    fn grant(&mut self, unit: UnitId, policy: Policy);

    /// Revoke all policies on a unit (erasure request / consent
    /// withdrawal); returns how many were revoked.
    fn revoke_all(&mut self, unit: UnitId, at: Ts) -> usize;

    /// Remove every trace of the unit from policy metadata (after
    /// erasure). Returns the bytes freed.
    fn forget_unit(&mut self, unit: UnitId) -> u64;

    /// Evaluate an access request.
    fn check(&mut self, req: &AccessRequest) -> Decision;

    /// How finely this mechanism's decisions vary with the unit. Coarse
    /// mechanisms (RBAC) override this to [`DecisionScope::Global`], which
    /// lets a decision cache reuse one outcome across all units.
    fn decision_scope(&self) -> DecisionScope {
        DecisionScope::PerUnit
    }

    /// Evaluate an access request and additionally report how long the
    /// outcome provably holds absent policy mutations. The default is the
    /// conservative choice only for mechanisms whose decisions cannot
    /// expire with time (roles have no windows); window-based mechanisms
    /// must override it with the governing policy window's end.
    fn check_with_horizon(&mut self, req: &AccessRequest) -> (Decision, Ts) {
        (self.check(req), Ts::MAX)
    }

    /// Metadata bytes this mechanism occupies (policies + indexes).
    fn metadata_bytes(&self) -> u64;

    /// Number of live policies tracked.
    fn policy_count(&self) -> usize;
}

/// An engine-wide broadcast channel for [`UnitClass::Global`] policy
/// mutations, connecting the [`VersionedEnforcer`]s of a sharded engine.
///
/// A sharded engine partitions units across shards, so every
/// [`UnitClass::Unit`] mutation and every decision about that unit happen
/// on the same shard — per-unit staleness is already handled by that
/// shard's local epoch. The one class that crosses shards is
/// [`UnitClass::Global`]: a coarse (RBAC-style) mutation observed by one
/// shard must strand cached global allows on *every* shard before their
/// next decide. The bus is exactly that signal: a shared generation
/// counter that publishers bump and subscribers compare against their
/// last-seen value, translating a remote global mutation into a local
/// epoch bump.
///
/// Over-notification is sound (a spurious sync merely re-evaluates
/// decisions against unchanged policy state); missed notification is not,
/// so [`publish`](EpochBus::publish) uses a sequentially-consistent bump
/// and subscribers re-check before every decide batch.
#[derive(Clone, Debug, Default)]
pub struct EpochBus {
    generation: Arc<AtomicU64>,
}

impl EpochBus {
    /// A fresh bus at generation zero.
    pub fn new() -> EpochBus {
        EpochBus::default()
    }

    /// Announce a global-class policy mutation; returns the new
    /// generation.
    pub fn publish(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

/// An enforcer wrapped with epoch versioning: every policy-mutating call
/// routed through this wrapper bumps the [`PolicyEpoch`] and records which
/// [`UnitClass`] it touched, so callers holding stamped decisions can tell
/// — by comparison, not by flushing — whether a decision is still current.
///
/// This is the policy-layer half of a versioned decision cache: the cache
/// itself lives with the caller (it needs the caller's key vocabulary);
/// the wrapper owns the ground truth of *validity*.
pub struct VersionedEnforcer {
    inner: Box<dyn PolicyEnforcer>,
    epoch: PolicyEpoch,
    /// Last epoch at which each unit class was mutated. A stamp `s` for
    /// class `c` is current iff `touched[c] <= s` (or `c` never mutated).
    touched: HashMap<UnitClass, PolicyEpoch>,
    /// Cross-shard propagation of [`UnitClass::Global`] mutations, when
    /// this enforcer is one shard of a concurrent engine.
    bus: Option<EpochBus>,
    /// The bus generation already folded into the local epoch.
    bus_seen: u64,
}

impl std::fmt::Debug for VersionedEnforcer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedEnforcer")
            .field("inner", &self.inner.name())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl VersionedEnforcer {
    /// Wrap a mechanism, starting at [`PolicyEpoch::ZERO`].
    pub fn new(inner: Box<dyn PolicyEnforcer>) -> VersionedEnforcer {
        VersionedEnforcer {
            inner,
            epoch: PolicyEpoch::ZERO,
            touched: HashMap::new(),
            bus: None,
            bus_seen: 0,
        }
    }

    /// Join an [`EpochBus`]: from now on every [`UnitClass::Global`]
    /// mutation made through this enforcer is published to the bus, and
    /// [`sync_bus`](VersionedEnforcer::sync_bus) folds remote global
    /// mutations into the local epoch. Joins at the bus's current
    /// generation — decisions cached before the join are the caller's
    /// responsibility (a fresh enforcer has none).
    pub fn attach_bus(&mut self, bus: EpochBus) {
        self.bus_seen = bus.generation();
        self.bus = Some(bus);
    }

    /// Fold remote [`UnitClass::Global`] mutations into the local epoch:
    /// if any other shard published since the last sync, bump the epoch
    /// for the global class, stranding every cached global-class decision
    /// on this shard. Call before deciding a batch. No-op without a bus,
    /// and one relaxed atomic load on the hot path when nothing changed.
    pub fn sync_bus(&mut self) {
        let Some(bus) = &self.bus else { return };
        let generation = bus.generation();
        if generation != self.bus_seen {
            self.bus_seen = generation;
            self.epoch = self.epoch.next();
            self.touched.insert(UnitClass::Global, self.epoch);
        }
    }

    /// The current policy epoch.
    pub fn epoch(&self) -> PolicyEpoch {
        self.epoch
    }

    /// The cache-key unit class for `unit` under the wrapped mechanism.
    pub fn unit_class(&self, unit: UnitId) -> UnitClass {
        match self.inner.decision_scope() {
            DecisionScope::Global => UnitClass::Global,
            DecisionScope::PerUnit => UnitClass::Unit(unit),
        }
    }

    /// Is a decision stamped at `epoch` for `class` still current — i.e.
    /// has no policy mutation touched that class since?
    pub fn is_current(&self, class: UnitClass, epoch: PolicyEpoch) -> bool {
        self.touched
            .get(&class)
            .map(|&t| t <= epoch)
            .unwrap_or(true)
    }

    /// Evaluate `req` as of `observed` (the epoch the caller last saw).
    ///
    /// Policy state is only materialized at the current epoch, so the
    /// evaluation always runs against it; the returned stamp carries the
    /// epoch the decision is provably valid for, which is ≥ `observed`.
    /// Callers caching the result must key it by
    /// [`unit_class`](VersionedEnforcer::unit_class) and revalidate with
    /// [`is_current`](VersionedEnforcer::is_current).
    pub fn decide_at(&mut self, observed: PolicyEpoch, req: &AccessRequest) -> StampedDecision {
        debug_assert!(observed <= self.epoch, "epochs are monotonic");
        let (decision, valid_until) = self.inner.check_with_horizon(req);
        StampedDecision {
            decision,
            epoch: self.epoch,
            valid_until,
        }
    }

    /// Evaluate without stamping (compatibility surface for callers that
    /// do not cache).
    pub fn check(&mut self, req: &AccessRequest) -> Decision {
        self.inner.check(req)
    }

    fn touch(&mut self, class: UnitClass) {
        self.epoch = self.epoch.next();
        self.touched.insert(class, self.epoch);
        if class == UnitClass::Global {
            if let Some(bus) = &self.bus {
                // Advance past our own publication: the local epoch bump
                // above already stranded this shard's global decisions. If
                // another shard published concurrently, whichever of the
                // two bumps we absorb, ours is the later local
                // invalidation, so no stale decision survives either way.
                self.bus_seen = bus.publish();
            }
        }
    }

    /// Register a new unit with its initial policies. Does **not** bump
    /// the epoch: the unit's id is fresh, so no decision about it can
    /// have been cached, and coarse mechanisms ignore per-unit policies.
    pub fn register_unit(&mut self, unit: UnitId, policies: &[Policy]) {
        self.inner.register_unit(unit, policies);
    }

    /// A new data-subject entity appeared. Does not bump the epoch: the
    /// entity id is fresh, so no decision naming it can have been cached.
    pub fn on_new_subject(&mut self, entity: EntityId) {
        self.inner.on_new_subject(entity);
    }

    /// Grant an additional policy on a unit (policy-mutating: bumps the
    /// epoch for the unit's class on per-unit mechanisms; coarse
    /// mechanisms ignore per-unit grants, so nothing cached can change).
    pub fn grant(&mut self, unit: UnitId, policy: Policy) {
        self.inner.grant(unit, policy);
        if self.inner.decision_scope() == DecisionScope::PerUnit {
            self.touch(UnitClass::Unit(unit));
        }
    }

    /// Revoke all policies on a unit (policy-mutating).
    pub fn revoke_all(&mut self, unit: UnitId, at: Ts) -> usize {
        let revoked = self.inner.revoke_all(unit, at);
        if revoked > 0 || self.inner.decision_scope() == DecisionScope::PerUnit {
            let class = self.unit_class(unit);
            self.touch(class);
        }
        revoked
    }

    /// Remove every trace of the unit from policy metadata
    /// (policy-mutating on per-unit mechanisms; coarse mechanisms keep no
    /// per-unit state, so their decisions cannot have changed).
    pub fn forget_unit(&mut self, unit: UnitId) -> u64 {
        let freed = self.inner.forget_unit(unit);
        if freed > 0 || self.inner.decision_scope() == DecisionScope::PerUnit {
            let class = self.unit_class(unit);
            self.touch(class);
        }
        freed
    }

    /// The wrapped mechanism, read-only.
    pub fn inner(&self) -> &dyn PolicyEnforcer {
        self.inner.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metatable::MetaTableEnforcer;
    use crate::rbac::{RbacEnforcer, Role};
    use datacase_core::purpose::well_known as wk;
    use datacase_sim::{Meter, SimClock};
    use std::sync::Arc;

    #[test]
    fn decision_is_allow() {
        assert!(Decision::Allow.is_allow());
        assert!(!Decision::Deny("no".into()).is_allow());
    }

    #[test]
    fn epoch_is_monotonic_and_ordered() {
        let e = PolicyEpoch::ZERO;
        assert!(e < e.next());
        assert_eq!(e.next().next(), PolicyEpoch(2));
        assert_eq!(format!("{}", PolicyEpoch(3)), "e3");
    }

    fn versioned_metatable() -> VersionedEnforcer {
        let inner = MetaTableEnforcer::new(SimClock::commodity(), Arc::new(Meter::new()));
        VersionedEnforcer::new(Box::new(inner))
    }

    fn req(unit: u64, entity: u32, at_secs: u64) -> AccessRequest {
        AccessRequest {
            unit: UnitId(unit),
            entity: EntityId(entity),
            purpose: wk::billing(),
            action: ActionKind::Read,
            at: Ts::from_secs(at_secs),
        }
    }

    #[test]
    fn mutations_bump_the_epoch_per_unit_class() {
        let mut v = versioned_metatable();
        assert_eq!(v.epoch(), PolicyEpoch::ZERO);
        v.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), Ts::ZERO)],
        );
        // Registration is not a mutation of observable decisions.
        assert_eq!(v.epoch(), PolicyEpoch::ZERO);
        let observed = v.epoch();
        let stamp = v.decide_at(observed, &req(1, 1, 10));
        assert!(stamp.decision.is_allow());
        assert!(v.is_current(v.unit_class(UnitId(1)), stamp.epoch));
        // Revoking unit 1 invalidates unit 1's class, not unit 2's.
        v.register_unit(
            UnitId(2),
            &[Policy::open_ended(wk::billing(), EntityId(1), Ts::ZERO)],
        );
        let stamp2 = v.decide_at(v.epoch(), &req(2, 1, 10));
        assert_eq!(v.revoke_all(UnitId(1), Ts::from_secs(20)), 1);
        assert!(v.epoch() > PolicyEpoch::ZERO);
        assert!(!v.is_current(v.unit_class(UnitId(1)), stamp.epoch));
        assert!(v.is_current(v.unit_class(UnitId(2)), stamp2.epoch));
    }

    #[test]
    fn grant_invalidates_cached_denials() {
        let mut v = versioned_metatable();
        v.register_unit(UnitId(1), &[]);
        let deny = v.decide_at(v.epoch(), &req(1, 1, 10));
        assert!(!deny.decision.is_allow());
        v.grant(
            UnitId(1),
            Policy::open_ended(wk::billing(), EntityId(1), Ts::ZERO),
        );
        assert!(
            !v.is_current(v.unit_class(UnitId(1)), deny.epoch),
            "a cached deny must be re-evaluated after a grant"
        );
        assert!(v.decide_at(v.epoch(), &req(1, 1, 10)).decision.is_allow());
    }

    #[test]
    fn window_end_bounds_the_stamp_horizon() {
        let mut v = versioned_metatable();
        v.register_unit(
            UnitId(1),
            &[Policy::new(
                wk::billing(),
                EntityId(1),
                Ts::ZERO,
                Ts::from_secs(100),
            )],
        );
        let stamp = v.decide_at(v.epoch(), &req(1, 1, 10));
        assert!(stamp.decision.is_allow());
        assert_eq!(
            stamp.valid_until,
            Ts::from_secs(100),
            "allow holds only through the policy window"
        );
    }

    /// A minimal coarse mechanism whose revocations actually change
    /// global decisions — RBAC ignores per-unit revocation, so the bus
    /// path needs a mechanism that doesn't.
    struct GlobalToggle {
        allowed: bool,
    }

    impl PolicyEnforcer for GlobalToggle {
        fn name(&self) -> &'static str {
            "global-toggle"
        }
        fn register_unit(&mut self, _: UnitId, _: &[Policy]) {}
        fn grant(&mut self, _: UnitId, _: Policy) {}
        fn revoke_all(&mut self, _: UnitId, _: Ts) -> usize {
            self.allowed = false;
            1
        }
        fn forget_unit(&mut self, _: UnitId) -> u64 {
            0
        }
        fn check(&mut self, _: &AccessRequest) -> Decision {
            if self.allowed {
                Decision::Allow
            } else {
                Decision::Deny("revoked".into())
            }
        }
        fn decision_scope(&self) -> DecisionScope {
            DecisionScope::Global
        }
        fn metadata_bytes(&self) -> u64 {
            0
        }
        fn policy_count(&self) -> usize {
            0
        }
    }

    #[test]
    fn bus_strands_global_decisions_across_shards() {
        let bus = EpochBus::new();
        let mut a = VersionedEnforcer::new(Box::new(GlobalToggle { allowed: true }));
        let mut b = VersionedEnforcer::new(Box::new(GlobalToggle { allowed: true }));
        a.attach_bus(bus.clone());
        b.attach_bus(bus.clone());
        let stamp = b.decide_at(b.epoch(), &req(1, 1, 10));
        assert!(stamp.decision.is_allow());
        assert!(b.is_current(UnitClass::Global, stamp.epoch));
        // Shard A observes a global revocation; the touch publishes it.
        assert_eq!(a.revoke_all(UnitId(1), Ts::from_secs(20)), 1);
        assert_eq!(bus.generation(), 1);
        // Shard B's cached allow is stranded at its next sync, before its
        // next decide can be served from the cache.
        b.sync_bus();
        assert!(!b.is_current(UnitClass::Global, stamp.epoch));
        // A's own publication is already folded into its local epoch: a
        // sync after publishing must not strand A's fresh decisions.
        let fresh = a.decide_at(a.epoch(), &req(1, 1, 30));
        let before = a.epoch();
        a.sync_bus();
        assert_eq!(a.epoch(), before);
        assert!(a.is_current(UnitClass::Global, fresh.epoch));
    }

    #[test]
    fn per_unit_mutations_stay_off_the_bus() {
        let bus = EpochBus::new();
        let mut v = versioned_metatable();
        v.attach_bus(bus.clone());
        v.register_unit(
            UnitId(1),
            &[Policy::open_ended(wk::billing(), EntityId(1), Ts::ZERO)],
        );
        assert_eq!(v.revoke_all(UnitId(1), Ts::from_secs(5)), 1);
        // Unit classes are shard-disjoint in a sharded engine: a per-unit
        // revocation is the owning shard's business only.
        assert_eq!(bus.generation(), 0);
        // And a sync against an idle bus is a no-op.
        let before = v.epoch();
        v.sync_bus();
        assert_eq!(v.epoch(), before);
    }

    #[test]
    fn coarse_mechanisms_share_one_unit_class() {
        let clock = SimClock::commodity();
        let mut rbac = RbacEnforcer::new(clock, Arc::new(Meter::new()));
        let role = rbac.define_role(Role::new(
            "reader",
            vec![(wk::billing(), vec![ActionKind::Read])],
        ));
        rbac.add_member(EntityId(1), role);
        let mut v = VersionedEnforcer::new(Box::new(rbac));
        assert_eq!(v.unit_class(UnitId(1)), UnitClass::Global);
        assert_eq!(v.unit_class(UnitId(2)), UnitClass::Global);
        // RBAC ignores per-unit revocation: decisions are unchanged, so
        // the epoch (and every cached decision) survives.
        let stamp = v.decide_at(v.epoch(), &req(1, 1, 10));
        assert!(stamp.decision.is_allow());
        assert_eq!(v.revoke_all(UnitId(1), Ts::from_secs(20)), 0);
        assert!(v.is_current(UnitClass::Global, stamp.epoch));
    }
}
