//! The common enforcement interface.

use datacase_core::action::ActionKind;
use datacase_core::ids::{EntityId, UnitId};
use datacase_core::policy::Policy;
use datacase_core::purpose::PurposeId;
use datacase_sim::time::Ts;

/// One access request: entity `e` wants to perform `action` on `unit` for
/// `purpose` at time `at` — the inputs of the paper's policy-consistency
/// predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRequest {
    /// The data unit being touched.
    pub unit: UnitId,
    /// The acting entity.
    pub entity: EntityId,
    /// The claimed purpose.
    pub purpose: PurposeId,
    /// The action kind.
    pub action: ActionKind,
    /// When.
    pub at: Ts,
}

/// The enforcement outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Permitted.
    Allow,
    /// Denied, with a reason string for the audit log.
    Deny(String),
}

impl Decision {
    /// Was the request allowed?
    pub fn is_allow(&self) -> bool {
        matches!(self, Decision::Allow)
    }
}

/// A policy enforcement mechanism (one per compliance profile).
pub trait PolicyEnforcer: Send {
    /// The mechanism's display name.
    fn name(&self) -> &'static str;

    /// Register a new unit with its initial policies.
    fn register_unit(&mut self, unit: UnitId, policies: &[Policy]);

    /// A new data-subject entity appeared (RBAC uses this to enrol the
    /// subject into the data-subject role; unit-scoped mechanisms ignore
    /// it).
    fn on_new_subject(&mut self, _entity: EntityId) {}

    /// Grant an additional policy on a unit.
    fn grant(&mut self, unit: UnitId, policy: Policy);

    /// Revoke all policies on a unit (erasure request / consent
    /// withdrawal); returns how many were revoked.
    fn revoke_all(&mut self, unit: UnitId, at: Ts) -> usize;

    /// Remove every trace of the unit from policy metadata (after
    /// erasure). Returns the bytes freed.
    fn forget_unit(&mut self, unit: UnitId) -> u64;

    /// Evaluate an access request.
    fn check(&mut self, req: &AccessRequest) -> Decision;

    /// Metadata bytes this mechanism occupies (policies + indexes).
    fn metadata_bytes(&self) -> u64;

    /// Number of live policies tracked.
    fn policy_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_is_allow() {
        assert!(Decision::Allow.is_allow());
        assert!(!Decision::Deny("no".into()).is_allow());
    }
}
