#![warn(missing_docs)]
//! # datacase-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§4), plus the ablations DESIGN.md calls out. Each
//! experiment is a pure function returning a rendered
//! [`datacase_sim::report::Table`] (and raw series for plotting); the
//! `repro` binary prints them, and the Criterion benches wrap the same
//! harness functions for wall-clock measurement.

pub mod figures;

pub use figures::*;
