//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [--quick] [fig1|fig3|fig4a|fig4b|fig4c|table1|table2|backends|pipeline|crypto|mt|server|invariants|ablations|checks|chaos|all]
//! ```
//!
//! `pipeline` additionally writes the measured cells to
//! `BENCH_pipeline.json`, `crypto` writes the crypto-substrate
//! before/after throughput plus encrypted-profile wall times to
//! `BENCH_crypto.json`, `mt` writes the concurrent-engine
//! multi-session scaling cells to `BENCH_mt.json`, and `server` writes
//! the served-engine clients × tenants × backend wire-throughput cells
//! to `BENCH_server.json` (the repo's wall-clock perf trajectory).
//!
//! `--quick` divides record/transaction counts by 10 (useful for smoke
//! runs); the default is paper-faithful sizes (100k records, 10k txns,
//! 10k–70k txn sweep, 100k–500k record sweep).
//!
//! `chaos` runs the deterministic chaos matrix (seeded scenarios ×
//! backends × named crash points, recover-and-compare against a serial
//! oracle) and exits non-zero if any recovery grounding is breached;
//! with `--quick` it crashes at the first hit of each reachable point
//! only.

use datacase_bench::figures::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::QUICK } else { Scale::FULL };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = targets.is_empty() || targets.contains(&"all");
    let want = |name: &str| all || targets.contains(&name);

    println!("Data-CASE reproduction harness (scale = 1/{})\n", scale.0);

    if want("fig1") {
        println!("{}", figures::fig1().render_text());
    }
    if want("table1") {
        println!("{}", figures::table1().render_text());
    }
    if want("fig3") {
        let (rendered, _) = figures::fig3();
        println!("== Figure 3 — data erasure timeline ==\n{rendered}");
    }
    if want("fig4a") {
        let (table, _) = figures::fig4a(scale);
        println!("{}", table.render_text());
        println!("{}", figures::fig4a_delete_only(scale).render_text());
    }
    if want("fig4b") {
        let (table, _) = figures::fig4b(scale);
        println!("{}", table.render_text());
    }
    if want("fig4c") {
        let (table, _) = figures::fig4c(scale);
        println!("{}", table.render_text());
    }
    if want("table2") {
        let (table, _) = figures::table2(scale);
        println!("{}", table.render_text());
    }
    if want("backends") {
        println!("{}", figures::backend_matrix(scale).render_text());
    }
    if want("pipeline") {
        let (table, points) = figures::pipeline_matrix(scale);
        println!("{}", table.render_text());
        let json = figures::pipeline_json(&points, scale);
        match std::fs::write("BENCH_pipeline.json", &json) {
            Ok(()) => println!("wrote BENCH_pipeline.json ({} cells)\n", points.len()),
            Err(e) => println!("could not write BENCH_pipeline.json: {e}\n"),
        }
    }
    if want("crypto") {
        // Log what the runtime dispatcher picked so every recorded run
        // is attributable to the silicon it measured.
        println!(
            "crypto backend: Auto resolves to \"{}\" on this host (hardware AES {})\n",
            datacase_crypto::CryptoBackend::Auto.resolve(),
            if datacase_crypto::CryptoBackend::hardware_available() {
                "detected"
            } else {
                "not detected"
            }
        );
        let (micro, e2e_table, points, e2e) = figures::crypto_matrix(scale);
        println!("{}", micro.render_text());
        println!("{}", e2e_table.render_text());
        let json = figures::crypto_json(&points, &e2e, scale);
        match std::fs::write("BENCH_crypto.json", &json) {
            Ok(()) => println!(
                "wrote BENCH_crypto.json ({} substrates, {} end-to-end cells)\n",
                points.len(),
                e2e.len()
            ),
            Err(e) => println!("could not write BENCH_crypto.json: {e}\n"),
        }
    }
    if want("mt") {
        let (table, points) = figures::mt_matrix(scale);
        println!("{}", table.render_text());
        let json = figures::mt_json(&points, scale);
        match std::fs::write("BENCH_mt.json", &json) {
            Ok(()) => println!("wrote BENCH_mt.json ({} cells)\n", points.len()),
            Err(e) => println!("could not write BENCH_mt.json: {e}\n"),
        }
    }
    if want("server") {
        let (table, points) = figures::server_matrix(scale);
        println!("{}", table.render_text());
        let json = figures::server_json(&points, scale);
        match std::fs::write("BENCH_server.json", &json) {
            Ok(()) => println!("wrote BENCH_server.json ({} cells)\n", points.len()),
            Err(e) => println!("could not write BENCH_server.json: {e}\n"),
        }
    }
    if want("invariants") {
        let (clean, dirty) = figures::invariants_demo();
        println!("{}", clean.render());
        println!("After injecting an unauthorised read into the history:\n");
        println!("{}", dirty.render());
        for v in dirty.violations.iter().take(3) {
            println!("  {v}");
        }
        println!();
    }
    if want("ablations") {
        println!("{}", figures::ablation_policy_index(scale).render_text());
        println!("{}", figures::ablation_vacuum_period(scale).render_text());
        println!("{}", figures::ablation_lsm_retention().render_text());
        println!("{}", figures::ablation_crypto_erasure(scale).render_text());
        println!("{}", figures::ablation_aes_strength(scale).render_text());
    }
    if want("chaos") {
        println!("== Chaos matrix (seed 42, crash → recover → oracle) ==");
        let report = datacase_chaos::matrix(&datacase_chaos::MatrixOptions { seed: 42, quick });
        let mut by_cell: std::collections::BTreeMap<String, (usize, usize)> =
            std::collections::BTreeMap::new();
        for row in &report.rows {
            let cell = by_cell
                .entry(format!("{}/{:?}", row.scenario, row.backend))
                .or_default();
            cell.0 += 1;
            cell.1 += usize::from(row.ok);
        }
        for (cell, (runs, ok)) in &by_cell {
            println!("  [{}] {cell}: {ok}/{runs} crash runs recovered clean", {
                if ok == runs {
                    "PASS"
                } else {
                    "FAIL"
                }
            });
        }
        println!(
            "  {} crash runs across {} scenario/backend cells\n",
            report.runs(),
            by_cell.len()
        );
        if !report.failures.is_empty() {
            for failure in &report.failures {
                println!("  BREACH {failure}");
            }
            std::process::exit(1);
        }
    }
    if want("checks") {
        println!("== Shape checks (paper-claim verification) ==");
        let mut all_ok = true;
        for (name, ok) in figures::shape_checks(scale) {
            println!("  [{}] {}", if ok { "PASS" } else { "FAIL" }, name);
            all_ok &= ok;
        }
        println!();
        if !all_ok {
            std::process::exit(1);
        }
    }
}
