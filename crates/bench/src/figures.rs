//! Experiment harness functions, one per paper artifact.

use datacase_core::checker::ComplianceReport;
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::grounding::properties::ErasureProperties;
use datacase_core::grounding::table::{Backend, GroundingTable};
use datacase_core::invariants::full_catalog;
use datacase_core::regulation::Regulation;
use datacase_core::timeline::ErasureTimeline;
use datacase_engine::driver::{run_ops, run_ops_batched, RunStats};
use datacase_engine::erasure::probe;
use datacase_engine::frontend::{Batch, Frontend, Request, Session};
use datacase_engine::profiles::{DeleteStrategy, EngineConfig, ProfileKind};
use datacase_engine::space::SpaceReport;
use datacase_engine::Actor;
use datacase_sim::report::{f3, Table};
use datacase_sim::time::{Dur, Ts};
use datacase_storage::backend::BackendKind;
use datacase_workloads::gdprbench::{GdprBench, Mix};
use datacase_workloads::ycsb::{Ycsb, YcsbWorkload};
use std::time::Instant;

/// Scale knob for quick runs (divides record/txn counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale(pub u64);

impl Scale {
    /// Paper-faithful sizes.
    pub const FULL: Scale = Scale(1);
    /// 10× smaller, for smoke runs and criterion.
    pub const QUICK: Scale = Scale(10);

    fn div(&self, n: u64) -> u64 {
        (n / self.0).max(1)
    }
}

/// One (x, simulated seconds) point of a figure series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// X value (transactions or records).
    pub x: u64,
    /// Simulated completion time in seconds.
    pub secs: f64,
}

/// Buffer-pool sizing used by every experiment: ~15 % of the table, so
/// the cache-pressure regime is the same at every scale (at paper scale,
/// 100k records ≈ 1700 pages vs 256 buffer pages).
fn buffer_pages_for(records: u64) -> usize {
    ((records / 390) as usize).max(32)
}

fn load_db(profile: ProfileKind, records: u64, seed: u64) -> (Frontend, GdprBench) {
    let mut config = EngineConfig::for_profile(profile);
    config.heap.buffer_pages = buffer_pages_for(records);
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(seed, 1000);
    let load = bench.load_phase(records as usize);
    fe.submit_ops(&Session::new(Actor::Controller), &load);
    (fe, bench)
}

// ---------------------------------------------------------------------
// Figure 4a — erasure interpretations in the heap engine, WCus (20 %
// deletes / 80 % reads), completion time vs transaction count.
// ---------------------------------------------------------------------

/// Run one Figure-4a cell. The maintenance period scales with the sweep
/// (≈7 vacuum passes per run at every scale), and the buffer pool with the
/// table, so the shape is scale-invariant.
pub fn fig4a_cell(strategy: DeleteStrategy, records: u64, txns: u64, seed: u64) -> RunStats {
    let mut config = EngineConfig::stock(strategy);
    config.maintenance_every = (txns / 35).max(20);
    config.heap.buffer_pages = buffer_pages_for(records);
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(seed, 1000);
    let load = bench.load_phase(records as usize);
    fe.submit_ops(&Session::new(Actor::Controller), &load);
    let ops = bench.ops(txns as usize, Mix::fig4a_customer());
    run_ops(&mut fe, &ops, Actor::Subject)
}

/// Figure 4a: all four strategies over the transaction sweep.
pub fn fig4a(scale: Scale) -> (Table, Vec<(DeleteStrategy, Vec<SeriesPoint>)>) {
    let records = scale.div(100_000);
    let txn_points: Vec<u64> = [10_000u64, 30_000, 50_000, 70_000]
        .iter()
        .map(|t| scale.div(*t))
        .collect();
    let mut table = Table::new(
        format!("Figure 4a — erasure interpretations on WCus (records={records})"),
        &["strategy", "txns", "completion (sim s)"],
    );
    let mut series = Vec::new();
    for strategy in DeleteStrategy::ALL {
        let mut points = Vec::new();
        for &txns in &txn_points {
            let stats = fig4a_cell(strategy, records, txns, 4242);
            let secs = stats.simulated.as_secs_f64();
            table.row(vec![strategy.label().into(), txns.to_string(), f3(secs)]);
            points.push(SeriesPoint { x: txns, secs });
        }
        series.push((strategy, points));
    }
    (table, series)
}

/// The paper's footnote experiment: on a delete-only workload, plain
/// DELETE beats DELETE+VACUUM (the vacuum cost is not amortised by reads).
pub fn fig4a_delete_only(scale: Scale) -> Table {
    let records = scale.div(50_000);
    let txns = scale.div(10_000);
    let mut table = Table::new(
        format!("Figure 4a (note) — delete-only workload (records={records}, txns={txns})"),
        &["strategy", "completion (sim s)"],
    );
    for strategy in [DeleteStrategy::DeleteOnly, DeleteStrategy::DeleteVacuum] {
        let mut config = EngineConfig::stock(strategy);
        config.maintenance_every = 1000;
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(7, 1000);
        fe.submit_ops(
            &Session::new(Actor::Controller),
            &bench.load_phase(records as usize),
        );
        let ops = bench.ops(txns as usize, Mix::delete_only());
        let stats = run_ops(&mut fe, &ops, Actor::Subject);
        table.row(vec![
            strategy.label().into(),
            f3(stats.simulated.as_secs_f64()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Figure 4b — profiles × workloads (100k records, 10k txns).
// ---------------------------------------------------------------------

/// Named GDPRBench/YCSB workload selector for 4b/4c.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchWorkload {
    /// GDPRBench processor.
    WPro,
    /// GDPRBench controller.
    WCon,
    /// GDPRBench customer.
    WCus,
    /// YCSB workload C.
    YcsbC,
}

impl BenchWorkload {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            BenchWorkload::WPro => "WPro",
            BenchWorkload::WCon => "WCon",
            BenchWorkload::WCus => "WCus",
            BenchWorkload::YcsbC => "YCSB-C",
        }
    }

    /// The actor issuing this workload.
    pub fn actor(self) -> Actor {
        match self {
            BenchWorkload::WPro => Actor::Processor,
            BenchWorkload::WCon => Actor::Controller,
            BenchWorkload::WCus => Actor::Subject,
            BenchWorkload::YcsbC => Actor::Processor,
        }
    }

    /// All four, figure order.
    pub const ALL: [BenchWorkload; 4] = [
        BenchWorkload::WPro,
        BenchWorkload::WCon,
        BenchWorkload::WCus,
        BenchWorkload::YcsbC,
    ];
}

/// Run one (profile, workload) cell of Figure 4b/4c.
///
/// The reported completion time covers **load + transaction phase**, as
/// the paper's "each with 100k records and 10k transactions" completion
/// figures do.
pub fn profile_cell(
    profile: ProfileKind,
    workload: BenchWorkload,
    records: u64,
    txns: u64,
    seed: u64,
) -> (RunStats, Frontend) {
    match workload {
        BenchWorkload::YcsbC => {
            let mut config = EngineConfig::for_profile(profile);
            config.heap.buffer_pages = buffer_pages_for(records);
            let mut fe = Frontend::new(config);
            let mut y = Ycsb::new(seed, records);
            let mut all_ops = y.load_phase();
            all_ops.extend(y.ops(txns as usize, YcsbWorkload::C));
            let stats = run_ops(&mut fe, &all_ops, workload.actor());
            (stats, fe)
        }
        gdpr => {
            let mut config = EngineConfig::for_profile(profile);
            config.heap.buffer_pages = buffer_pages_for(records);
            let mut fe = Frontend::new(config);
            let mut bench = GdprBench::new(seed, 1000);
            let mix = match gdpr {
                BenchWorkload::WPro => Mix::wpro(),
                BenchWorkload::WCon => Mix::wcon(),
                _ => Mix::wcus(),
            };
            let mut all_ops = bench.load_phase(records as usize);
            all_ops.extend(bench.ops(txns as usize, mix));
            let stats = run_ops(&mut fe, &all_ops, workload.actor());
            (stats, fe)
        }
    }
}

/// Figure 4b: completion time for every workload × profile.
pub fn fig4b(scale: Scale) -> (Table, Vec<(BenchWorkload, ProfileKind, f64)>) {
    let records = scale.div(100_000);
    let txns = scale.div(10_000);
    let mut table = Table::new(
        format!("Figure 4b — completion time (records={records}, txns={txns})"),
        &[
            "workload",
            "P_Base (sim min)",
            "P_GBench (sim min)",
            "P_SYS (sim min)",
        ],
    );
    let mut raw = Vec::new();
    for workload in BenchWorkload::ALL {
        let mut cells = vec![workload.label().to_string()];
        for profile in ProfileKind::PAPER {
            let (stats, _) = profile_cell(profile, workload, records, txns, 99);
            let mins = stats.simulated.as_mins_f64();
            raw.push((workload, profile, mins));
            cells.push(f3(mins));
        }
        table.row(cells);
    }
    (table, raw)
}

// ---------------------------------------------------------------------
// Figure 4c — scalability in record count (WCus lines, YCSB-C bars).
// ---------------------------------------------------------------------

/// Figure 4c: completion vs record count at fixed 10k txns.
pub fn fig4c(scale: Scale) -> (Table, Vec<(BenchWorkload, ProfileKind, Vec<SeriesPoint>)>) {
    let txns = scale.div(10_000);
    let record_points: Vec<u64> = [100_000u64, 200_000, 300_000, 400_000, 500_000]
        .iter()
        .map(|r| scale.div(*r))
        .collect();
    let mut table = Table::new(
        format!("Figure 4c — scalability (txns={txns})"),
        &["workload", "profile", "records", "completion (sim min)"],
    );
    let mut raw = Vec::new();
    for workload in [BenchWorkload::WCus, BenchWorkload::YcsbC] {
        for profile in ProfileKind::PAPER {
            let mut points = Vec::new();
            for &records in &record_points {
                let (stats, _) = profile_cell(profile, workload, records, txns, 17);
                let mins = stats.simulated.as_mins_f64();
                table.row(vec![
                    workload.label().into(),
                    profile.label().into(),
                    records.to_string(),
                    f3(mins),
                ]);
                points.push(SeriesPoint {
                    x: records,
                    secs: mins * 60.0,
                });
            }
            raw.push((workload, profile, points));
        }
    }
    (table, raw)
}

// ---------------------------------------------------------------------
// Backend matrix — the same GDPRBench mix over every point of the
// ProfileKind × BackendKind × DeleteStrategy space.
// ---------------------------------------------------------------------

/// Run one (profile, backend, delete-strategy) cell on the GDPRBench
/// customer mix: load `records`, then `txns` WCus transactions.
pub fn backend_cell(
    profile: ProfileKind,
    backend: BackendKind,
    strategy: DeleteStrategy,
    records: u64,
    txns: u64,
    seed: u64,
) -> RunStats {
    let mut config = EngineConfig::for_profile(profile).with_backend(backend);
    config.delete_strategy = strategy;
    config.maintenance_every = (txns / 35).max(20);
    config.heap.buffer_pages = buffer_pages_for(records);
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(seed, 1000);
    fe.submit_ops(
        &Session::new(Actor::Controller),
        &bench.load_phase(records as usize),
    );
    let ops = bench.ops(txns as usize, Mix::wcus());
    run_ops(&mut fe, &ops, Actor::Subject)
}

/// The backend matrix: one row per (profile, backend, delete-strategy)
/// cell — completion time plus the run's typed error profile (policy
/// denials vs never-existed keys vs retention-expired records), so
/// backend parity (identical enforcement behaviour, different storage
/// cost) is visible in one table.
pub fn backend_matrix(scale: Scale) -> Table {
    let records = scale.div(20_000);
    let txns = scale.div(5_000);
    let mut table = Table::new(
        format!("Backend matrix — WCus over profile × backend × delete strategy (records={records}, txns={txns})"),
        &[
            "profile",
            "backend",
            "delete strategy",
            "completion (sim s)",
            "denied",
            "not-found",
            "expired",
        ],
    );
    for profile in ProfileKind::PAPER {
        for backend in BackendKind::ALL {
            for strategy in DeleteStrategy::ALL {
                let stats = backend_cell(profile, backend, strategy, records, txns, 4242);
                table.row(vec![
                    profile.label().into(),
                    backend.label().into(),
                    strategy.label().into(),
                    f3(stats.simulated.as_secs_f64()),
                    stats.denied.to_string(),
                    stats.not_found.to_string(),
                    stats.expired.to_string(),
                ]);
            }
        }
    }
    table
}

// ---------------------------------------------------------------------
// Table 1 — erasure interpretations: expected vs measured properties and
// the system-action plans.
// ---------------------------------------------------------------------

/// Table 1: the grounding table plus empirical property probes.
pub fn table1() -> Table {
    let groundings = GroundingTable::standard();
    let mut table = Table::new(
        "Table 1 — interpretations of erasure (expected vs measured)",
        &[
            "Erasure",
            "IR exp/meas",
            "II exp/meas",
            "Inv exp/meas",
            "PSQL-style system-action(s)",
        ],
    );
    for interp in ErasureInterpretation::ALL {
        let expected = ErasureProperties::expected(interp);
        let measured = probe(interp);
        let e = expected.cells();
        let m = measured.measured.cells();
        let plan = groundings
            .plan(Backend::Heap, interp)
            .map(|p| p.describe())
            .unwrap_or_else(|| "ungrounded".into());
        table.row(vec![
            interp.label().into(),
            format!("{}/{}", e[0], m[0]),
            format!("{}/{}", e[1], m[1]),
            format!("{}/{}", e[2], m[2]),
            plan,
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Table 2 — space overheads after the Figure-4b load.
// ---------------------------------------------------------------------

/// Table 2: per-profile space breakdown (after load + WCus txns).
pub fn table2(scale: Scale) -> (Table, Vec<(ProfileKind, SpaceReport)>) {
    let records = scale.div(100_000);
    let txns = scale.div(10_000);
    let mut table = SpaceReport::table(&format!(
        "Table 2 — storage space overhead (records={records}, txns={txns})"
    ));
    let mut raw = Vec::new();
    for profile in ProfileKind::PAPER {
        let (_, db) = profile_cell(profile, BenchWorkload::WCus, records, txns, 23);
        let report = SpaceReport::measure(&db);
        table.row(report.row(profile.label()));
        raw.push((profile, report));
    }
    (table, raw)
}

// ---------------------------------------------------------------------
// Figure 3 — erasure timeline of one unit walked through the stages.
// ---------------------------------------------------------------------

/// Figure 3: a unit staged through every erasure interpretation.
pub fn fig3() -> (String, ErasureTimeline) {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut fe = Frontend::new(config);
    let controller = Session::new(Actor::Controller);
    let meta = datacase_workloads::record::GdprMetadata {
        subject: 1,
        purpose: datacase_core::purpose::well_known::smart_space(),
        ttl: datacase_sim::time::Ts::from_secs(10_000_000),
        origin_device: 3,
        objects_to_sharing: false,
    };
    fe.run(
        &controller,
        Request::Create {
            key: 1,
            payload: b"figure-3-subject-data".to_vec(),
            metadata: meta,
        },
    );
    let unit = fe.unit_of_key(1).expect("created");
    // Let the unit live a while, then stage the erasure.
    let mut stage = |at_secs: u64, interpretation: ErasureInterpretation| {
        fe.clock()
            .advance_to(datacase_sim::time::Ts::from_secs(at_secs));
        fe.run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation,
            },
        );
    };
    stage(1000, ErasureInterpretation::ReversiblyInaccessible);
    stage(2000, ErasureInterpretation::Deleted);
    stage(2500, ErasureInterpretation::StronglyDeleted);
    stage(3000, ErasureInterpretation::PermanentlyDeleted);
    let tl = ErasureTimeline::from_history(fe.history(), unit);
    (tl.render(), tl)
}

// ---------------------------------------------------------------------
// Figure 1 — the invariant catalog.
// ---------------------------------------------------------------------

/// Figure 1: the nine requirement groups and their article coverage.
pub fn fig1() -> Table {
    let mut table = Table::new(
        "Figure 1 — GDPR requirements as informal invariants",
        &["id", "articles", "statement"],
    );
    for inv in full_catalog() {
        table.row(vec![
            inv.id().into(),
            inv.articles()
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(","),
            inv.statement().into(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// G6 / G17 demonstration: a compliant run and a violating run.
// ---------------------------------------------------------------------

/// Run a small compliant workload and return its report, then inject
/// violations (an unauthorised read recorded into history, an overdue
/// unerased unit) and return the failing report.
pub fn invariants_demo() -> (ComplianceReport, ComplianceReport) {
    let (mut fe, mut bench) = load_db(ProfileKind::PSys, 200, 5);
    let ops = bench.ops(300, Mix::wcus());
    run_ops(&mut fe, &ops, Actor::Subject);
    let clean = fe.compliance_report(&Regulation::gdpr());

    // Violation injection: an action recorded with no covering policy
    // (as if enforcement had been bypassed — hence the forensic guard).
    let unit = fe.unit_of_key(1).expect("loaded");
    let rogue = fe.entities().by_name("AdPartner").expect("registered").id;
    let at = fe.clock().now();
    fe.forensic()
        .inject_history(datacase_core::history::HistoryTuple {
            unit,
            purpose: datacase_core::purpose::well_known::advertising(),
            entity: rogue,
            action: datacase_core::action::Action::Read,
            at,
        });
    let dirty = fe.compliance_report(&Regulation::gdpr());
    (clean, dirty)
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

/// Ablation: FGAC with and without the Sieve policy index.
pub fn ablation_policy_index(scale: Scale) -> Table {
    let records = scale.div(20_000);
    let txns = scale.div(5_000);
    let mut table = Table::new(
        format!("Ablation — FGAC policy index (records={records}, txns={txns}, WPro)"),
        &["policy index", "completion (sim s)"],
    );
    for use_index in [true, false] {
        let mut config = EngineConfig::p_sys();
        config.fgac_index = use_index;
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(31, 1000);
        fe.submit_ops(
            &Session::new(Actor::Controller),
            &bench.load_phase(records as usize),
        );
        let ops = bench.ops(txns as usize, Mix::wpro());
        let stats = run_ops(&mut fe, &ops, Actor::Processor);
        table.row(vec![
            if use_index {
                "Sieve index"
            } else {
                "linear scan"
            }
            .into(),
            f3(stats.simulated.as_secs_f64()),
        ]);
    }
    table
}

/// Ablation: vacuum period sweep under the Figure-4a customer mix.
pub fn ablation_vacuum_period(scale: Scale) -> Table {
    let records = scale.div(50_000);
    let txns = scale.div(20_000);
    let mut table = Table::new(
        format!("Ablation — autovacuum period (records={records}, txns={txns})"),
        &["vacuum every N deletes", "completion (sim s)"],
    );
    for period in [100u64, 500, 1000, 2000, 5000, u64::MAX] {
        let mut config = EngineConfig::stock(DeleteStrategy::DeleteVacuum);
        config.maintenance_every = period;
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(13, 1000);
        fe.submit_ops(
            &Session::new(Actor::Controller),
            &bench.load_phase(records as usize),
        );
        let ops = bench.ops(txns as usize, Mix::fig4a_customer());
        let stats = run_ops(&mut fe, &ops, Actor::Subject);
        let label = if period == u64::MAX {
            "never (DELETE only)".to_string()
        } else {
            period.to_string()
        };
        table.row(vec![label, f3(stats.simulated.as_secs_f64())]);
    }
    table
}

/// Ablation: LSM tombstone retention — how long deleted data physically
/// persists as a function of compaction aggressiveness.
pub fn ablation_lsm_retention() -> Table {
    use datacase_storage::lsm::{LsmConfig, LsmTree};
    let mut table = Table::new(
        "Ablation — LSM tombstone physical retention",
        &[
            "runs/level trigger",
            "ops until physically erased",
            "residual entries at delete+1000 ops",
        ],
    );
    for runs_per_level in [2usize, 4, 8] {
        let mut tree = LsmTree::new(
            LsmConfig {
                memtable_bytes: 8 * 1024,
                runs_per_level,
                ..LsmConfig::default()
            },
            datacase_sim::SimClock::commodity(),
            std::sync::Arc::new(datacase_sim::Meter::new()),
        );
        // Insert victim, then delete it, then keep writing other keys and
        // watch when the payload physically disappears.
        tree.put(0, 0, b"LSM-RETAINED-VICTIM");
        tree.flush();
        tree.delete(0, 0);
        let mut erased_at: Option<usize> = None;
        for i in 1..=5000usize {
            tree.put(i as u64, i as u64, &[0x55u8; 64]);
            if erased_at.is_none() && tree.scan_physical(b"LSM-RETAINED-VICTIM") == 0 {
                erased_at = Some(i);
            }
        }
        let residual_at_1000 = {
            // Rebuild to measure the 1000-op mark deterministically.
            let mut t2 = LsmTree::new(
                LsmConfig {
                    memtable_bytes: 8 * 1024,
                    runs_per_level,
                    ..LsmConfig::default()
                },
                datacase_sim::SimClock::commodity(),
                std::sync::Arc::new(datacase_sim::Meter::new()),
            );
            t2.put(0, 0, b"LSM-RETAINED-VICTIM");
            t2.flush();
            t2.delete(0, 0);
            for i in 1..=1000usize {
                t2.put(i as u64, i as u64, &[0x55u8; 64]);
            }
            t2.scan_physical(b"LSM-RETAINED-VICTIM")
        };
        table.row(vec![
            runs_per_level.to_string(),
            erased_at
                .map(|n| n.to_string())
                .unwrap_or_else(|| ">5000".into()),
            residual_at_1000.to_string(),
        ]);
    }
    table
}

/// Ablation: crypto-erasure (destroy the key) vs physical permanent
/// deletion (VACUUM FULL + sanitisation) — cost of the erase action.
pub fn ablation_crypto_erasure(scale: Scale) -> Table {
    let records = scale.div(20_000);
    let mut table = Table::new(
        format!("Ablation — permanent-deletion groundings (records={records})"),
        &[
            "grounding",
            "erase cost for 100 units (sim s)",
            "residuals afterwards",
        ],
    );
    // Physical: delete + vacuum full + sanitize per batch — one erase
    // request per key through the frontend's compliance path.
    {
        let mut config = EngineConfig::p_sys();
        config.tuple_encryption = None;
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(41, 1000);
        let controller = Session::new(Actor::Controller);
        fe.submit_ops(&controller, &bench.load_phase(records as usize));
        let t0 = fe.clock().now();
        let erasures: Batch = (0..100u64)
            .map(|key| Request::Erase {
                key,
                interpretation: ErasureInterpretation::PermanentlyDeleted,
            })
            .collect();
        fe.submit(&controller, &erasures);
        let cost = fe.clock().now().since(t0);
        let f = fe.forensic().scan(b"person=");
        table.row(vec![
            "physical (VACUUM FULL + sanitise)".into(),
            f3(cost.as_secs_f64()),
            if f.any() {
                "some (other units)"
            } else {
                "none"
            }
            .into(),
        ]);
    }
    // Crypto-erasure: per-unit keys; destroying the key makes ciphertext
    // permanently unreadable without touching the heap.
    {
        let config = EngineConfig::p_sys(); // AES-128 per-tuple keys
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(41, 1000);
        fe.submit_ops(
            &Session::new(Actor::Controller),
            &bench.load_phase(records as usize),
        );
        let t0 = fe.clock().now();
        for key in 0..100u64 {
            if let Some(unit) = fe.unit_of_key(key) {
                fe.forensic().destroy_key(unit);
            }
        }
        let cost = fe.clock().now().since(t0);
        // Plaintext was never on disk; key destruction sealed it forever.
        let f = fe.forensic().scan(b"person=");
        table.row(vec![
            "crypto-erasure (destroy per-unit key)".into(),
            f3(cost.as_secs_f64()),
            if f.online() {
                "ciphertext only"
            } else {
                "none"
            }
            .into(),
        ]);
    }
    table
}

/// Ablation: AES-128 vs AES-256 tuple encryption under YCSB-C.
pub fn ablation_aes_strength(scale: Scale) -> Table {
    use datacase_crypto::aes::KeySize;
    let records = scale.div(20_000);
    let txns = scale.div(10_000);
    let mut table = Table::new(
        format!("Ablation — tuple encryption strength (records={records}, txns={txns}, YCSB-C)"),
        &["cipher", "completion (sim s)"],
    );
    for (label, size) in [
        ("none", None),
        ("AES-128", Some(KeySize::Aes128)),
        ("AES-256", Some(KeySize::Aes256)),
    ] {
        let mut config = EngineConfig::p_base();
        config.tuple_encryption = size;
        let mut fe = Frontend::new(config);
        let mut y = Ycsb::new(3, records);
        fe.submit_ops(&Session::new(Actor::Controller), &y.load_phase());
        let ops = y.ops(txns as usize, YcsbWorkload::C);
        let stats = run_ops(&mut fe, &ops, Actor::Processor);
        table.row(vec![label.into(), f3(stats.simulated.as_secs_f64())]);
    }
    table
}

// ---------------------------------------------------------------------
// Pipeline throughput — staged batch execution vs serial submit.
// ---------------------------------------------------------------------

/// One measured cell of the pipeline-throughput matrix.
#[derive(Clone, Copy, Debug)]
pub struct PipelinePoint {
    /// Storage substrate.
    pub backend: BackendKind,
    /// YCSB mix (B = read-heavy, A = mixed).
    pub workload: YcsbWorkload,
    /// Staged pipeline on or off.
    pub pipeline: bool,
    /// Transactions executed per repetition.
    pub ops: usize,
    /// Best-of-reps wall time of the transaction phase, in milliseconds.
    pub wall_ms: f64,
    /// Simulated throughput — identical between modes by the parity
    /// contract, reported as evidence.
    pub sim_ops_per_sec: f64,
}

/// Requests per submitted batch in the pipeline bench: large enough that
/// read waves clear the fan-out threshold comfortably.
pub const PIPELINE_BATCH: usize = 256;

/// Wall-time repetitions per cell (the minimum is reported).
pub const PIPELINE_REPS: usize = 3;

/// Run one pipeline cell: P_Base (per-tuple AES-256 — exactly the payload
/// work the apply stage fans out) over `backend`, running a YCSB mix as
/// the processor, with the epoch-versioned decision cache on in **both**
/// modes so the comparison isolates the pipeline itself. Records carry
/// classic 1 KiB YCSB payloads (not the paper figures' compact 100-byte
/// shape) so the cells measure the AES fan-out under a meaningful crypto
/// load rather than per-op dispatch overhead. Returns the
/// transaction-phase stats (the load phase is excluded from timing).
pub fn pipeline_cell(
    backend: BackendKind,
    workload: YcsbWorkload,
    pipeline: bool,
    records: u64,
    txns: u64,
    seed: u64,
) -> RunStats {
    let mut config = EngineConfig::p_base()
        .with_backend(backend)
        .with_pipeline(pipeline)
        .with_decision_cache(4096);
    config.heap.buffer_pages = buffer_pages_for(records);
    let mut fe = Frontend::new(config);
    let mut y = Ycsb::new(seed, records).with_payload_size(1024);
    let load = y.load_phase();
    run_ops_batched(&mut fe, &load, Actor::Controller, PIPELINE_BATCH);
    let ops = y.ops(txns as usize, workload);
    run_ops_batched(&mut fe, &ops, Actor::Processor, PIPELINE_BATCH)
}

/// The pipeline-throughput matrix: serial vs pipelined submit on both
/// backends, read-heavy (YCSB-B) and mixed (YCSB-A) profiles. Each cell
/// reports the best of [`PIPELINE_REPS`] transaction-phase wall times —
/// wall clock, because the pipeline's contract is that *simulated*
/// results never change (the table shows the sim column agreeing).
pub fn pipeline_matrix(scale: Scale) -> (Table, Vec<PipelinePoint>) {
    let records = scale.div(20_000);
    let txns = scale.div(20_000);
    let mut table = Table::new(
        format!(
            "Pipeline throughput — serial vs staged submit (records={records}, txns={txns}, batch={PIPELINE_BATCH})"
        ),
        &[
            "backend",
            "workload",
            "serial (wall ms)",
            "pipelined (wall ms)",
            "speedup",
            "sim identical",
        ],
    );
    let mut points = Vec::new();
    for backend in BackendKind::ALL {
        for workload in [YcsbWorkload::B, YcsbWorkload::A] {
            // One fixed seed per cell: every repetition (and both modes)
            // runs the identical workload, so the min is a true
            // best-of-reps and the sim column is a real parity check
            // evaluated on every rep.
            let seed = 7;
            let cell = |pipeline: bool| -> PipelinePoint {
                let mut best_wall = f64::INFINITY;
                let mut sim = 0.0;
                let mut ops = 0;
                for rep in 0..PIPELINE_REPS {
                    let stats = pipeline_cell(backend, workload, pipeline, records, txns, seed);
                    best_wall = best_wall.min(stats.wall.as_secs_f64() * 1e3);
                    let rep_sim = stats.sim_ops_per_sec();
                    assert!(
                        rep == 0 || rep_sim == sim,
                        "simulated throughput must be deterministic across reps"
                    );
                    sim = rep_sim;
                    ops = stats.ops;
                }
                PipelinePoint {
                    backend,
                    workload,
                    pipeline,
                    ops,
                    wall_ms: best_wall,
                    sim_ops_per_sec: sim,
                }
            };
            let serial = cell(false);
            let piped = cell(true);
            // The parity contract is hard: simulated results may never
            // differ between modes. Fail the harness loudly rather than
            // quietly printing "NO" — this covers the YCSB-shaped paths
            // that prop_frontend's GDPRBench streams do not reach.
            assert!(
                serial.sim_ops_per_sec == piped.sim_ops_per_sec,
                "{}/{}: pipelined and serial simulated throughput diverged ({} vs {})",
                backend.label(),
                workload.label(),
                serial.sim_ops_per_sec,
                piped.sim_ops_per_sec,
            );
            table.row(vec![
                backend.label().into(),
                workload.label().into(),
                f3(serial.wall_ms),
                f3(piped.wall_ms),
                format!("{:.2}x", serial.wall_ms / piped.wall_ms),
                if serial.sim_ops_per_sec == piped.sim_ops_per_sec {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
            points.push(serial);
            points.push(piped);
        }
    }
    (table, points)
}

/// Render pipeline points as the `BENCH_pipeline.json` document: one
/// object per cell, plus the derived speedups — the repo's wall-clock
/// perf trajectory, machine-readable.
pub fn pipeline_json(points: &[PipelinePoint], scale: Scale) -> String {
    let mut out = String::from("{\n  \"bench\": \"pipeline_throughput\",\n");
    out.push_str(&format!(
        "  \"scale_divisor\": {},\n  \"batch\": {PIPELINE_BATCH},\n  \"reps\": {PIPELINE_REPS},\n  \"cells\": [\n",
        scale.0
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workload\": \"{}\", \"pipeline\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \"sim_ops_per_sec\": {:.3}}}{}\n",
            p.backend.label(),
            p.workload.label(),
            p.pipeline,
            p.ops,
            p.wall_ms,
            p.sim_ops_per_sec,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let pairs: Vec<(&PipelinePoint, &PipelinePoint)> = points
        .chunks(2)
        .filter_map(|c| match c {
            [serial, piped] if !serial.pipeline && piped.pipeline => Some((serial, piped)),
            _ => None,
        })
        .collect();
    for (i, (serial, piped)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workload\": \"{}\", \"speedup\": {:.3}}}{}\n",
            serial.backend.label(),
            serial.workload.label(),
            serial.wall_ms / piped.wall_ms,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Crypto-substrate throughput (BENCH_crypto.json)
// ---------------------------------------------------------------------

/// One measured crypto-substrate cell: host throughput through the
/// retained byte-oriented reference path, the software T-table /
/// lane-XOR path, and (on AES-NI hosts) the hardware path, over the
/// same buffers.
#[derive(Clone, Debug)]
pub struct CryptoPoint {
    /// Substrate label (cipher × buffer shape).
    pub substrate: &'static str,
    /// Bytes per measured pass.
    pub buf_bytes: usize,
    /// Reference-path throughput in MB/s.
    pub ref_mb_s: f64,
    /// Software (T-table) path throughput in MB/s.
    pub fast_mb_s: f64,
    /// Hardware (AES-NI) path throughput in MB/s; `None` when the host
    /// has no usable hardware AES.
    pub hw_mb_s: Option<f64>,
}

impl CryptoPoint {
    /// software ÷ reference.
    pub fn speedup(&self) -> f64 {
        self.fast_mb_s / self.ref_mb_s
    }

    /// hardware ÷ software, when the hardware series ran.
    pub fn hw_speedup(&self) -> Option<f64> {
        self.hw_mb_s.map(|hw| hw / self.fast_mb_s)
    }
}

/// One end-to-end encrypted-profile cell: transaction-phase wall times
/// through up to four crypto configurations of the *same* engine build —
/// the retained byte-oriented reference rounds (selected per engine via
/// [`EngineConfig::with_crypto_backend`], so results are bit-identical
/// and only wall time moves), the software T-table path with the
/// pipeline off and on (apply-stage fan-out of tuple **and** P_SYS
/// audit-log AES), and on AES-NI hosts the hardware backend with the
/// pipeline on.
///
/// The reference cells isolate the *round/XOR implementation*: this PR's
/// other wins — cached key schedules, the `Arc`'d log cipher, the
/// worker-pool offload — stay active in them, and each made the pre-PR
/// engine strictly slower than what the toggle reproduces. The reported
/// reference-vs-pipelined speedup is therefore a **lower bound** on the
/// true pre-overhaul gap.
#[derive(Clone, Debug)]
pub struct CryptoEndToEnd {
    /// The encrypted profile under test.
    pub profile: ProfileKind,
    /// The YCSB mix driving it.
    pub workload: YcsbWorkload,
    /// Transactions executed.
    pub ops: usize,
    /// Best-of-reps wall ms on the pre-overhaul reference crypto path.
    pub reference_wall_ms: f64,
    /// Best-of-reps wall ms, T-table crypto, pipeline off.
    pub serial_wall_ms: f64,
    /// Best-of-reps wall ms, T-table crypto, pipeline on.
    pub pipelined_wall_ms: f64,
    /// Best-of-reps wall ms, hardware (AES-NI) crypto, pipeline on;
    /// `None` on hosts without hardware AES.
    pub hardware_wall_ms: Option<f64>,
    /// Simulated throughput (identical across every configuration by the
    /// parity + equivalence contracts; reported as evidence).
    pub sim_ops_per_sec: f64,
}

/// Measure `f` (one pass over `buf_bytes`) and return MB/s, after one
/// untimed warm-up pass.
fn throughput_mb_s(buf_bytes: usize, passes: u64, mut f: impl FnMut()) -> f64 {
    f();
    let t = std::time::Instant::now();
    for _ in 0..passes {
        f();
    }
    (buf_bytes as u64 * passes) as f64 / t.elapsed().as_secs_f64() / 1e6
}

/// The crypto-substrate micro matrix: every AES shape the profiles pay on
/// their hot paths — P_SYS log records (AES-128, record-sized), tuple
/// payloads (AES-128/AES-256, row-sized), and P_GBench/LUKS whole pages
/// (AES-256 under the sector-IV binding) — measured through both paths.
pub fn crypto_micro(scale: Scale) -> Vec<CryptoPoint> {
    use datacase_crypto::aes::KeySize;
    use datacase_crypto::ctr::AesCtr;
    use datacase_crypto::sector::SectorCipher;
    use datacase_crypto::CryptoBackend;
    // ~32 MB through each series at full scale, ~3 MB on --quick.
    let budget = scale.div(32 * 1024 * 1024);
    let hw_here = CryptoBackend::hardware_available();
    let mut points = Vec::new();
    let mut ctr_cell = |substrate: &'static str, size: KeySize, buf_bytes: usize| {
        // The software series forces its backend: under `Auto` this
        // cipher would silently become the hardware measurement on
        // AES-NI hosts and the A/B would compare hardware to itself.
        let sw = AesCtr::from_key(size, &[0x42u8; 32][..size.key_len()])
            .with_backend(CryptoBackend::Software);
        let iv = AesCtr::iv_from_nonce(7);
        let mut buf = vec![0xABu8; buf_bytes];
        let passes = (budget / buf_bytes as u64).max(8);
        let fast = throughput_mb_s(buf_bytes, passes, || sw.apply(iv, &mut buf));
        let hw = hw_here.then(|| {
            let hw_ctr = sw.clone().with_backend(CryptoBackend::Hardware);
            // Hardware sustains several times the software rate; give it
            // the same byte budget scaled up so the timing window stays
            // comparable.
            throughput_mb_s(buf_bytes, passes * 4, || hw_ctr.apply(iv, &mut buf))
        });
        // The reference path is ~4–5× slower; a quarter of the passes
        // keeps runtimes balanced without starving the measurement.
        let r = throughput_mb_s(buf_bytes, (passes / 4).max(8), || {
            sw.apply_ref(iv, &mut buf)
        });
        points.push(CryptoPoint {
            substrate,
            buf_bytes,
            ref_mb_s: r,
            fast_mb_s: fast,
            hw_mb_s: hw,
        });
    };
    ctr_cell("aes128-ctr 256 B (P_SYS log record)", KeySize::Aes128, 256);
    ctr_cell("aes128-ctr 4 KiB (P_SYS tuples)", KeySize::Aes128, 4096);
    ctr_cell("aes256-ctr 4 KiB (P_Base tuples)", KeySize::Aes256, 4096);
    {
        let sc = SectorCipher::from_passphrase(b"luks-gbench-passphrase", KeySize::Aes256)
            .with_backend(CryptoBackend::Software);
        let buf_bytes = 4096;
        let mut buf = vec![0xCDu8; buf_bytes];
        let passes = (budget / buf_bytes as u64).max(8);
        let fast = throughput_mb_s(buf_bytes, passes, || sc.apply(11, &mut buf));
        let hw = hw_here.then(|| {
            let hw_sc = sc.clone().with_backend(CryptoBackend::Hardware);
            throughput_mb_s(buf_bytes, passes * 4, || hw_sc.apply(11, &mut buf))
        });
        let r = throughput_mb_s(buf_bytes, (passes / 4).max(8), || {
            sc.apply_ref(11, &mut buf)
        });
        points.push(CryptoPoint {
            substrate: "sector-aes256 4 KiB page (P_GBench/LUKS)",
            buf_bytes,
            ref_mb_s: r,
            fast_mb_s: fast,
            hw_mb_s: hw,
        });
    }
    points
}

/// Record size for the end-to-end crypto cells: classic YCSB 1 KiB
/// records, so the profiles' AES work (tuple payloads, log payloads,
/// whole pages) dominates the way it does on payload-carrying
/// production workloads.
pub const CRYPTO_E2E_PAYLOAD: usize = 1024;

/// Run one end-to-end encrypted-profile cell (mirrors
/// [`pipeline_cell`], but over the profiles whose hot path is crypto):
/// load, then a YCSB transaction phase at [`CRYPTO_E2E_PAYLOAD`]-byte
/// records, returning its stats.
pub fn crypto_cell(
    profile: ProfileKind,
    workload: YcsbWorkload,
    pipeline: bool,
    backend: datacase_crypto::CryptoBackend,
    records: u64,
    txns: u64,
    seed: u64,
) -> RunStats {
    let mut config = EngineConfig::for_profile(profile)
        .with_pipeline(pipeline)
        .with_crypto_backend(backend)
        .with_decision_cache(4096);
    config.heap.buffer_pages = buffer_pages_for(records);
    let mut fe = Frontend::new(config);
    let mut y = Ycsb::new(seed, records).with_payload_size(CRYPTO_E2E_PAYLOAD);
    let load = y.load_phase();
    run_ops_batched(&mut fe, &load, Actor::Controller, PIPELINE_BATCH);
    let ops = y.ops(txns as usize, workload);
    run_ops_batched(&mut fe, &ops, Actor::Processor, PIPELINE_BATCH)
}

/// The crypto throughput report: the micro substrate matrix plus
/// end-to-end wall times of the two encrypted paper profiles (P_SYS:
/// encrypted audit log + AES-128 tuples; P_GBench: LUKS sector
/// encryption), serial vs pipelined, with the sim-parity contract
/// asserted on every cell.
pub fn crypto_matrix(scale: Scale) -> (Table, Table, Vec<CryptoPoint>, Vec<CryptoEndToEnd>) {
    use datacase_crypto::CryptoBackend;
    let points = crypto_micro(scale);
    let mut table = Table::new(
        "Crypto substrate throughput — reference vs software T-table vs hardware AES-NI",
        &[
            "substrate",
            "reference (MB/s)",
            "software (MB/s)",
            "hardware (MB/s)",
            "sw/ref",
            "hw/sw",
        ],
    );
    for p in &points {
        table.row(vec![
            p.substrate.into(),
            f3(p.ref_mb_s),
            f3(p.fast_mb_s),
            p.hw_mb_s.map_or_else(|| "n/a".into(), f3),
            format!("{:.2}x", p.speedup()),
            p.hw_speedup()
                .map_or_else(|| "n/a".into(), |s| format!("{s:.2}x")),
        ]);
    }

    let records = scale.div(20_000);
    let txns = scale.div(20_000);
    let mut e2e_table = Table::new(
        format!(
            "Encrypted-profile wall times — pre-overhaul reference crypto vs T-table (records={records}, txns={txns}, batch={PIPELINE_BATCH}, {CRYPTO_E2E_PAYLOAD} B records)"
        ),
        &[
            "profile",
            "workload",
            "reference (wall ms)",
            "software serial (wall ms)",
            "software pipelined (wall ms)",
            "hardware pipelined (wall ms)",
            "overall speedup",
            "sim identical",
        ],
    );
    let mut e2e = Vec::new();
    for profile in [ProfileKind::PSys, ProfileKind::PGBench] {
        let workload = YcsbWorkload::B;
        let seed = 7;
        let run = |pipeline: bool, backend: CryptoBackend| -> (f64, f64, usize) {
            let mut best_wall = f64::INFINITY;
            let mut sim = 0.0;
            let mut ops = 0;
            for rep in 0..PIPELINE_REPS {
                let stats = crypto_cell(profile, workload, pipeline, backend, records, txns, seed);
                best_wall = best_wall.min(stats.wall.as_secs_f64() * 1e3);
                let rep_sim = stats.sim_ops_per_sec();
                assert!(
                    rep == 0 || rep_sim == sim,
                    "simulated throughput must be deterministic across reps"
                );
                sim = rep_sim;
                ops = stats.ops;
            }
            (best_wall, sim, ops)
        };
        // Reference cell: byte-oriented rounds, pipeline on (the PR-4
        // default) — bit-identical results, only wall time moves. A
        // lower bound on the pre-overhaul engine (see CryptoEndToEnd).
        let (reference_wall_ms, ref_sim, ops) = run(true, CryptoBackend::Reference);
        let (serial_wall_ms, serial_sim, _) = run(false, CryptoBackend::Software);
        let (pipelined_wall_ms, piped_sim, _) = run(true, CryptoBackend::Software);
        assert!(
            ref_sim == serial_sim && serial_sim == piped_sim,
            "{}: simulated throughput diverged across crypto configurations ({ref_sim} / {serial_sim} / {piped_sim})",
            profile.label(),
        );
        // Hardware cell (AES-NI hosts): the whole engine under the
        // hardware backend, pipeline on — every simulated column must
        // stay bit-identical to the software and reference runs.
        let hardware_wall_ms = CryptoBackend::hardware_available().then(|| {
            let (hw_wall, hw_sim, _) = run(true, CryptoBackend::Hardware);
            assert!(
                hw_sim == serial_sim,
                "{}: simulated throughput diverged on the hardware backend ({hw_sim} vs {serial_sim})",
                profile.label(),
            );
            hw_wall
        });
        let best_after = hardware_wall_ms.unwrap_or(pipelined_wall_ms);
        e2e_table.row(vec![
            profile.label().into(),
            workload.label().into(),
            f3(reference_wall_ms),
            f3(serial_wall_ms),
            f3(pipelined_wall_ms),
            hardware_wall_ms.map_or_else(|| "n/a".into(), f3),
            format!("{:.2}x", reference_wall_ms / best_after),
            "yes".into(),
        ]);
        e2e.push(CryptoEndToEnd {
            profile,
            workload,
            ops,
            reference_wall_ms,
            serial_wall_ms,
            pipelined_wall_ms,
            hardware_wall_ms,
            sim_ops_per_sec: serial_sim,
        });
    }
    (table, e2e_table, points, e2e)
}

/// Render the crypto report as the `BENCH_crypto.json` document
/// (`BENCH_pipeline.json`-style): the host's detected CPU features and
/// `Auto`'s resolved backend, one object per micro substrate with
/// reference/software/hardware MB/s, one per end-to-end
/// encrypted-profile cell with serial/pipelined/hardware wall times.
pub fn crypto_json(points: &[CryptoPoint], e2e: &[CryptoEndToEnd], scale: Scale) -> String {
    use datacase_crypto::{backend, CryptoBackend};
    let mut out = String::from("{\n  \"bench\": \"crypto_throughput\",\n");
    out.push_str(&format!("  \"scale_divisor\": {},\n", scale.0));
    out.push_str(&format!(
        "  \"auto_backend\": \"{}\",\n",
        CryptoBackend::Auto.resolve()
    ));
    let features = backend::cpu_features()
        .into_iter()
        .map(|(name, on)| format!("\"{name}\": {on}"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("  \"cpu_features\": {{{features}}},\n"));
    out.push_str("  \"substrates\": [\n");
    for (i, p) in points.iter().enumerate() {
        let hw = p
            .hw_mb_s
            .map_or_else(|| "null".into(), |v| format!("{v:.3}"));
        let hw_speedup = p
            .hw_speedup()
            .map_or_else(|| "null".into(), |v| format!("{v:.3}"));
        out.push_str(&format!(
            "    {{\"substrate\": \"{}\", \"buf_bytes\": {}, \"reference_mb_s\": {:.3}, \"fast_mb_s\": {:.3}, \"hardware_mb_s\": {}, \"speedup\": {:.3}, \"hw_over_sw\": {}}}{}\n",
            p.substrate,
            p.buf_bytes,
            p.ref_mb_s,
            p.fast_mb_s,
            hw,
            p.speedup(),
            hw_speedup,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"end_to_end\": [\n");
    for (i, c) in e2e.iter().enumerate() {
        let hw_wall = c
            .hardware_wall_ms
            .map_or_else(|| "null".into(), |v| format!("{v:.3}"));
        let best_after = c.hardware_wall_ms.unwrap_or(c.pipelined_wall_ms);
        out.push_str(&format!(
            "    {{\"profile\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \"reference_wall_ms\": {:.3}, \"ttable_serial_wall_ms\": {:.3}, \"ttable_pipelined_wall_ms\": {:.3}, \"hardware_pipelined_wall_ms\": {}, \"speedup\": {:.3}, \"sim_ops_per_sec\": {:.3}}}{}\n",
            c.profile.label(),
            c.workload.label(),
            c.ops,
            c.reference_wall_ms,
            c.serial_wall_ms,
            c.pipelined_wall_ms,
            hw_wall,
            c.reference_wall_ms / best_after,
            c.sim_ops_per_sec,
            if i + 1 < e2e.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Multi-session concurrent-engine throughput (BENCH_mt.json)
// ---------------------------------------------------------------------

/// Shards in every mt cell. Fixed across session counts so the per-shard
/// request streams — and therefore the per-shard simulated timelines —
/// are bit-identical whether one session drives all four shards or four
/// sessions drive one each.
pub const MT_SHARDS: usize = 4;
/// Requests per submitted sub-batch.
pub const MT_BATCH: usize = 256;
/// Record payload: classic YCSB 1 KiB rows, so P_Base's per-tuple AES
/// dominates and extra sessions buy real CPU parallelism.
pub const MT_PAYLOAD: usize = 1024;
/// Wall-clock reps per cell (best-of).
pub const MT_REPS: usize = 3;
/// Per-batch client think time (milliseconds), TPC-style: each
/// closed-loop session sleeps this long after every completed batch,
/// modelling the app/network work a real client does between
/// submissions. Think time is what makes session concurrency visible as
/// aggregate throughput even on one core — while one session thinks,
/// the engine serves the others — and it is exactly what the old serial
/// frontend could never overlap. Sleeping touches neither the simulated
/// clock nor the per-shard request order, so the CostModel columns stay
/// bit-identical across session counts.
pub const MT_THINK_MS: u64 = 3;

/// One measured multi-session cell: `sessions` closed-loop clients over
/// a [`MT_SHARDS`]-way [`datacase_engine::ConcurrentEngine`].
#[derive(Clone, Debug)]
pub struct MtPoint {
    /// Storage backend on every shard.
    pub backend: BackendKind,
    /// Concurrent closed-loop sessions.
    pub sessions: usize,
    /// Transaction-phase requests executed.
    pub ops: usize,
    /// Best-of-reps transaction-phase wall milliseconds.
    pub wall_ms: f64,
    /// Final simulated instant of each shard's clock — the CostModel
    /// column. Identical across session counts by construction (each
    /// shard always executes the same stream in the same order); the
    /// matrix asserts it.
    pub shard_sim: Vec<Ts>,
}

impl MtPoint {
    /// Aggregate wall-clock throughput in kops/s.
    pub fn kops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_ms
    }
}

/// Run one multi-session cell: load through the handle, pre-partition a
/// read-heavy YCSB-B transaction stream by shard, then let `sessions`
/// client threads drive disjoint shard subsets closed-loop (one
/// outstanding ticket per session, round-robin over its shards, with
/// [`MT_THINK_MS`] of think time after every completed batch).
///
/// Every session count submits the **identical per-shard request
/// sequence** — sharding is by key, the streams are pre-partitioned, and
/// a shard's sub-batches arrive in stream order no matter which client
/// owns it — so each shard's simulated timeline is bit-identical to the
/// single-session run and only wall time responds to the added
/// concurrency (overlapped think time everywhere; overlapped shard CPU
/// on multi-core hosts). The per-shard pipeline stays off: each shard
/// worker is one thread, so cells measure pure session-level scaling.
pub fn mt_cell(
    backend: BackendKind,
    sessions: usize,
    records: u64,
    txns: u64,
    seed: u64,
) -> MtPoint {
    assert!(
        MT_SHARDS.is_multiple_of(sessions),
        "sessions must evenly divide the shard count"
    );
    let mut config = EngineConfig::p_base()
        .with_backend(backend)
        .with_pipeline(false)
        .with_decision_cache(4096);
    config.heap.buffer_pages = buffer_pages_for(records / MT_SHARDS as u64);
    let engine = datacase_engine::ConcurrentEngine::new(config, MT_SHARDS);
    let handle = engine.handle();
    let controller = Session::new(Actor::Controller);
    let mut y = Ycsb::new(seed, records).with_payload_size(MT_PAYLOAD);
    for chunk in y.load_phase().chunks(MT_BATCH) {
        let requests: Vec<Request> = chunk.iter().map(Request::from).collect();
        handle.submit(&controller, &requests).wait();
    }
    let ops = y.ops(txns as usize, YcsbWorkload::B);
    let total_ops = ops.len();
    let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); MT_SHARDS];
    for op in &ops {
        let request = Request::from(op);
        let shard = datacase_engine::shard_of(&request, MT_SHARDS)
            .expect("YCSB requests are key-addressed");
        per_shard[shard].push(request);
    }
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..sessions {
            let handle = engine.handle();
            let owned: Vec<&[Request]> = per_shard
                .iter()
                .enumerate()
                .filter(|(shard, _)| shard % sessions == client)
                .map(|(_, stream)| stream.as_slice())
                .collect();
            scope.spawn(move || {
                let session = Session::new(Actor::Processor);
                let mut cursors = vec![0usize; owned.len()];
                loop {
                    let mut progressed = false;
                    for (i, stream) in owned.iter().enumerate() {
                        let lo = cursors[i];
                        if lo >= stream.len() {
                            continue;
                        }
                        let hi = (lo + MT_BATCH).min(stream.len());
                        cursors[i] = hi;
                        progressed = true;
                        handle.submit(&session, &stream[lo..hi]).wait();
                        std::thread::sleep(std::time::Duration::from_millis(MT_THINK_MS));
                    }
                    if !progressed {
                        break;
                    }
                }
            });
        }
    });
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    drop(handle);
    let frontends = engine.shutdown();
    let shard_sim = frontends.iter().map(|fe| fe.clock().now()).collect();
    MtPoint {
        backend,
        sessions,
        ops: total_ops,
        wall_ms,
        shard_sim,
    }
}

/// The multi-session scaling matrix: 1, 2, and 4 closed-loop sessions
/// over the 4-shard concurrent engine (read-heavy YCSB-B, heap shards),
/// best of [`MT_REPS`] wall-clock reps per cell, with the per-shard
/// simulated timelines asserted bit-identical across every rep and every
/// session count.
pub fn mt_matrix(scale: Scale) -> (Table, Vec<MtPoint>) {
    let records = scale.div(20_000);
    let txns = scale.div(20_000);
    let backend = BackendKind::Heap;
    let seed = 7;
    let mut points: Vec<MtPoint> = Vec::new();
    for sessions in [1usize, 2, 4] {
        let mut best: Option<MtPoint> = None;
        for _ in 0..MT_REPS {
            let p = mt_cell(backend, sessions, records, txns, seed);
            if let Some(b) = &best {
                assert_eq!(
                    b.shard_sim, p.shard_sim,
                    "simulated shard timelines must be deterministic across reps"
                );
            }
            if best.as_ref().is_none_or(|b| p.wall_ms < b.wall_ms) {
                let wall_ms = best.map_or(p.wall_ms, |b| b.wall_ms.min(p.wall_ms));
                best = Some(MtPoint { wall_ms, ..p });
            }
        }
        let best = best.expect("at least one rep");
        if let Some(first) = points.first() {
            assert_eq!(
                first.shard_sim, best.shard_sim,
                "per-shard simulated timelines must not depend on the session count"
            );
        }
        points.push(best);
    }
    let base = points[0].wall_ms;
    let mut table = Table::new(
        format!(
            "Multi-session scaling — {MT_SHARDS} heap shards, YCSB-B, records={records}, txns={txns}, batch={MT_BATCH}, {MT_PAYLOAD} B records, think={MT_THINK_MS}ms"
        ),
        &[
            "sessions",
            "wall (ms)",
            "kops/s",
            "speedup vs 1 session",
            "sim identical",
        ],
    );
    for p in &points {
        table.row(vec![
            p.sessions.to_string(),
            f3(p.wall_ms),
            f3(p.kops_per_sec()),
            format!("{:.2}x", base / p.wall_ms),
            "yes".into(),
        ]);
    }
    (table, points)
}

/// Render the mt points as the `BENCH_mt.json` document: one object per
/// session count with wall time, aggregate throughput, the scaling
/// factor vs the single-session cell, and the (identical) per-shard
/// simulated timeline as evidence of the determinism contract.
pub fn mt_json(points: &[MtPoint], scale: Scale) -> String {
    let mut out = String::from("{\n  \"bench\": \"mt_throughput\",\n");
    out.push_str(&format!(
        "  \"scale_divisor\": {},\n  \"shards\": {MT_SHARDS},\n  \"batch\": {MT_BATCH},\n  \"think_ms\": {MT_THINK_MS},\n  \"reps\": {MT_REPS},\n  \"cells\": [\n",
        scale.0
    ));
    let base = points.first().map_or(1.0, |p| p.wall_ms);
    for (i, p) in points.iter().enumerate() {
        let sim: Vec<String> = p
            .shard_sim
            .iter()
            .map(|ts| format!("{:.3}", ts.as_millis_f64()))
            .collect();
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"sessions\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \"kops_per_sec\": {:.3}, \"scaling_vs_1_session\": {:.3}, \"shard_sim_ms\": [{}]}}{}\n",
            p.backend.label(),
            p.sessions,
            p.ops,
            p.wall_ms,
            p.kops_per_sec(),
            base / p.wall_ms,
            sim.join(", "),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Served-engine throughput over the wire (BENCH_server.json)
// ---------------------------------------------------------------------

/// Engine shards behind the gateway in every server cell.
pub const SERVER_SHARDS: usize = 4;
/// Requests per wire batch.
pub const SERVER_BATCH: usize = 128;
/// Record payload bytes (classic YCSB 1 KiB rows).
pub const SERVER_PAYLOAD: usize = 1024;
/// Wall-clock reps per cell (best-of).
pub const SERVER_REPS: usize = 2;

/// One measured served-engine cell: `clients` closed-loop TCP clients
/// driving `tenants` tenants of one gateway over loopback sockets.
#[derive(Clone, Debug)]
pub struct ServerPoint {
    /// Storage backend on every engine shard.
    pub backend: BackendKind,
    /// Concurrent closed-loop wire clients.
    pub clients: usize,
    /// Tenants sharing the engine (work split evenly between them).
    pub tenants: usize,
    /// Transaction-phase requests executed.
    pub ops: usize,
    /// Best-of-reps transaction-phase wall milliseconds.
    pub wall_ms: f64,
    /// Mean per-batch round-trip latency (milliseconds) across clients.
    pub mean_batch_ms: f64,
    /// 95th-percentile per-batch round-trip latency (milliseconds).
    pub p95_batch_ms: f64,
}

impl ServerPoint {
    /// Aggregate wall-clock throughput in kops/s.
    pub fn kops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_ms
    }
}

/// Run one served-engine cell: spawn a gateway over a
/// [`SERVER_SHARDS`]-way engine, load each tenant's records through its
/// own authenticated connection, then let `clients` closed-loop wire
/// clients drain a read-heavy YCSB-B stream split evenly across the
/// tenants (one in-flight batch per client, tenant-local keys on the
/// wire, every frame a real loopback round trip).
///
/// Tenant work units are interleaved round-robin across clients, so
/// every (clients, tenants) combination — including one client serving
/// two tenants over two connections — drains the identical per-tenant
/// request streams and only wall time responds to the concurrency.
pub fn server_cell(
    backend: BackendKind,
    clients: usize,
    tenants: usize,
    records: u64,
    txns: u64,
    seed: u64,
) -> ServerPoint {
    use datacase_server::{Client, Server, TenantSpec};

    let per_tenant_records = (records / tenants as u64).max(1);
    let per_tenant_txns = (txns / tenants as u64).max(1);
    let mut config = EngineConfig::p_base()
        .with_backend(backend)
        .with_pipeline(false)
        .with_decision_cache(4096);
    config.heap.buffer_pages = buffer_pages_for(per_tenant_records / SERVER_SHARDS as u64);
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|t| TenantSpec::new(&format!("t{t}"), "bench-token"))
        .collect();
    let server = Server::spawn(config, SERVER_SHARDS, &specs);

    // Load and transaction streams, one per tenant (tenant-local keys).
    let mut streams: Vec<Vec<Request>> = Vec::new();
    for t in 0..tenants {
        let mut y =
            Ycsb::new(seed + t as u64, per_tenant_records).with_payload_size(SERVER_PAYLOAD);
        let load: Vec<Request> = y.load_phase().iter().map(Request::from).collect();
        let mut loader = Client::connect(
            server.addr(),
            &format!("t{t}"),
            "bench-token",
            Actor::Controller,
        )
        .expect("loader connects");
        for chunk in load.chunks(SERVER_BATCH) {
            loader.call(chunk).expect("load batch");
        }
        loader.goodbye().ok();
        streams.push(
            y.ops(per_tenant_txns as usize, YcsbWorkload::B)
                .iter()
                .map(Request::from)
                .collect(),
        );
    }

    // Interleave per-tenant batches into a single work-unit list, then
    // deal units round-robin to clients.
    let chunked: Vec<Vec<&[Request]>> = streams
        .iter()
        .map(|s| s.chunks(SERVER_BATCH).collect())
        .collect();
    let max_chunks = chunked.iter().map(Vec::len).max().unwrap_or(0);
    let mut units: Vec<(usize, &[Request])> = Vec::new();
    for i in 0..max_chunks {
        for (t, chunks) in chunked.iter().enumerate() {
            if let Some(chunk) = chunks.get(i) {
                units.push((t, chunk));
            }
        }
    }
    let total_ops: usize = units.iter().map(|(_, c)| c.len()).sum();

    let wall_start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..clients {
            let addr = server.addr();
            let units = &units;
            handles.push(scope.spawn(move || {
                let mut conns: Vec<Option<Client>> = (0..tenants).map(|_| None).collect();
                let mut lats = Vec::new();
                for (tenant, chunk) in units.iter().skip(client).step_by(clients) {
                    let conn = conns[*tenant].get_or_insert_with(|| {
                        Client::connect(
                            addr,
                            &format!("t{tenant}"),
                            "bench-token",
                            Actor::Processor,
                        )
                        .expect("client connects")
                    });
                    let t0 = Instant::now();
                    conn.call(chunk).expect("transaction batch");
                    lats.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                for conn in conns.into_iter().flatten() {
                    conn.goodbye().ok();
                }
                lats
            }));
        }
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_batch_ms = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let p95_batch_ms = latencies
        .get((latencies.len().saturating_sub(1)) * 95 / 100)
        .copied()
        .unwrap_or(0.0);
    ServerPoint {
        backend,
        clients,
        tenants,
        ops: total_ops,
        wall_ms,
        mean_batch_ms,
        p95_batch_ms,
    }
}

/// The served-engine matrix: 1/2/4 clients × 1/2 tenants × heap/LSM
/// backends, best of [`SERVER_REPS`] wall-clock reps per cell.
pub fn server_matrix(scale: Scale) -> (Table, Vec<ServerPoint>) {
    let records = scale.div(20_000);
    let txns = scale.div(20_000);
    let seed = 11;
    let mut points: Vec<ServerPoint> = Vec::new();
    for backend in [BackendKind::Heap, BackendKind::Lsm] {
        for tenants in [1usize, 2] {
            for clients in [1usize, 2, 4] {
                let mut best: Option<ServerPoint> = None;
                for _ in 0..SERVER_REPS {
                    let p = server_cell(backend, clients, tenants, records, txns, seed);
                    if best.as_ref().is_none_or(|b| p.wall_ms < b.wall_ms) {
                        best = Some(p);
                    }
                }
                points.push(best.expect("at least one rep"));
            }
        }
    }
    let mut table = Table::new(
        format!(
            "Served engine over loopback TCP — {SERVER_SHARDS} shards, YCSB-B, records={records}, txns={txns}, batch={SERVER_BATCH}, {SERVER_PAYLOAD} B records"
        ),
        &[
            "backend",
            "tenants",
            "clients",
            "wall (ms)",
            "kops/s",
            "mean batch (ms)",
            "p95 batch (ms)",
        ],
    );
    for p in &points {
        table.row(vec![
            p.backend.label().into(),
            p.tenants.to_string(),
            p.clients.to_string(),
            f3(p.wall_ms),
            f3(p.kops_per_sec()),
            f3(p.mean_batch_ms),
            f3(p.p95_batch_ms),
        ]);
    }
    (table, points)
}

/// Render the server points as the `BENCH_server.json` document: one
/// object per (backend, tenants, clients) cell with wall time, aggregate
/// throughput, and per-batch round-trip latency.
pub fn server_json(points: &[ServerPoint], scale: Scale) -> String {
    let mut out = String::from("{\n  \"bench\": \"server_throughput\",\n");
    out.push_str(&format!(
        "  \"scale_divisor\": {},\n  \"shards\": {SERVER_SHARDS},\n  \"batch\": {SERVER_BATCH},\n  \"reps\": {SERVER_REPS},\n  \"cells\": [\n",
        scale.0
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"tenants\": {}, \"clients\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \"kops_per_sec\": {:.3}, \"mean_batch_ms\": {:.3}, \"p95_batch_ms\": {:.3}}}{}\n",
            p.backend.label(),
            p.tenants,
            p.clients,
            p.ops,
            p.wall_ms,
            p.kops_per_sec(),
            p.mean_batch_ms,
            p.p95_batch_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Shape assertions shared by tests and the repro binary: returns a list
/// of (check, passed) pairs so violations are visible in reports.
pub fn shape_checks(scale: Scale) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    // Fig 4a shape at the largest sweep point.
    let (_, series) = fig4a(scale);
    let at_max = |s: DeleteStrategy| -> f64 {
        series
            .iter()
            .find(|(st, _)| *st == s)
            .map(|(_, pts)| pts.last().expect("points").secs)
            .expect("strategy present")
    };
    let vf = at_max(DeleteStrategy::DeleteVacuumFull);
    let tomb = at_max(DeleteStrategy::TombstoneAttribute);
    let del = at_max(DeleteStrategy::DeleteOnly);
    let dv = at_max(DeleteStrategy::DeleteVacuum);
    checks.push((
        "fig4a: VACUUM FULL slowest".into(),
        vf > tomb && vf > del && vf > dv,
    ));
    checks.push(("fig4a: DELETE+VACUUM beats DELETE on WCus".into(), dv < del));
    // Fig 4b profile ordering on every workload.
    let (_, raw) = fig4b(scale);
    for w in BenchWorkload::ALL {
        let get = |p: ProfileKind| {
            raw.iter()
                .find(|(bw, bp, _)| *bw == w && *bp == p)
                .map(|(_, _, m)| *m)
                .expect("cell present")
        };
        let ordered = get(ProfileKind::PBase) < get(ProfileKind::PGBench)
            && get(ProfileKind::PGBench) < get(ProfileKind::PSys);
        checks.push((
            format!("fig4b: P_Base < P_GBench < P_SYS on {}", w.label()),
            ordered,
        ));
    }
    // Table 2 factor ordering.
    let (_, spaces) = table2(scale);
    let factor = |p: ProfileKind| {
        spaces
            .iter()
            .find(|(sp, _)| *sp == p)
            .map(|(_, r)| r.space_factor())
            .expect("profile present")
    };
    checks.push((
        "table2: factor(P_Base) < factor(P_GBench) < factor(P_SYS)".into(),
        factor(ProfileKind::PBase) < factor(ProfileKind::PGBench)
            && factor(ProfileKind::PGBench) < factor(ProfileKind::PSys),
    ));
    checks
}

/// Convenience: simulated seconds of a run.
pub fn sim_secs(d: Dur) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_expected_matrix() {
        let t = table1();
        let rendered = t.render_text();
        // Expected == measured in every cell: "×/×" or "✓/✓" only.
        assert!(!rendered.contains("×/✓"), "{rendered}");
        assert!(!rendered.contains("✓/×"), "{rendered}");
        assert!(rendered.contains("DELETE + VACUUM"));
    }

    #[test]
    fn fig1_lists_the_entire_invariant_catalog() {
        // Enumerate the live catalog rather than hard-coding its size:
        // the figure must grow with the catalog, never silently lag it.
        let t = fig1();
        let catalog = datacase_core::invariants::full_catalog();
        assert_eq!(t.len(), catalog.len());
        for invariant in &catalog {
            assert!(
                t.rows().iter().any(|row| row[0] == invariant.id()),
                "figure 1 is missing invariant {}",
                invariant.id()
            );
        }
    }

    #[test]
    fn fig3_timeline_is_monotone_and_complete() {
        let (rendered, tl) = fig3();
        assert!(tl.is_monotone());
        assert!(tl.permanently_deleted.is_some());
        assert!(rendered.contains("TT Live"));
    }

    #[test]
    fn invariants_demo_clean_then_dirty() {
        let (clean, dirty) = invariants_demo();
        assert!(
            clean.is_compliant(),
            "{:?}",
            &clean.violations[..clean.violations.len().min(3)]
        );
        assert!(!dirty.is_compliant());
        assert!(!dirty.of_invariant("G6").is_empty());
    }

    #[test]
    fn reduced_scale_shapes_hold() {
        // The headline shapes must already hold at 20x reduced scale (the
        // harness keeps buffer-pool ratio and maintenance cadence
        // scale-invariant). `repro checks` verifies the same claims at
        // paper scale in release mode.
        let failures: Vec<String> = shape_checks(Scale(20))
            .into_iter()
            .filter(|(_, ok)| !ok)
            .map(|(name, _)| name)
            .collect();
        assert!(failures.is_empty(), "failed shape checks: {failures:?}");
    }
}
