//! Criterion bench for the served engine: 1, 2, and 4 closed-loop wire
//! clients driving a 2-tenant gateway over loopback TCP on read-heavy
//! YCSB-B. Every cell drains the identical per-tenant request streams —
//! what this bench measures is the wall-clock cost of the wire layer
//! (framing, namespacing, socket round trips) and how it amortises as
//! client concurrency grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::server_cell;
use datacase_storage::backend::BackendKind;

fn bench_server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    for clients in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("heap/ycsb-b/2-tenants/{clients}-clients")),
            &clients,
            |b, &clients| {
                b.iter(|| server_cell(BackendKind::Heap, clients, 2, 2_000, 2_000, 4242));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
