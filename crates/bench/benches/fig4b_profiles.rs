//! Criterion bench for Figure 4b: profile × workload completion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::{profile_cell, BenchWorkload};
use datacase_engine::profiles::ProfileKind;

fn bench_fig4b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_profiles");
    group.sample_size(10);
    for workload in BenchWorkload::ALL {
        for profile in ProfileKind::PAPER {
            let id = format!("{}/{}", workload.label(), profile.label());
            group.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(workload, profile),
                |b, &(workload, profile)| {
                    b.iter(|| profile_cell(profile, workload, 2_000, 500, 99));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4b);
criterion_main!(benches);
