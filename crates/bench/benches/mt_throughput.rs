//! Criterion bench for the concurrent multi-session engine: 1, 2, and 4
//! closed-loop client sessions over a fixed 4-shard engine on read-heavy
//! YCSB-B. The engine's contract is that every shard's simulated
//! timeline is bit-identical regardless of the session count (each shard
//! always executes the same pre-partitioned stream in the same order) —
//! what this bench measures is the *wall-clock* payoff of driving the
//! shards from more client threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::mt_cell;
use datacase_storage::backend::BackendKind;

fn bench_mt_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("mt_throughput");
    group.sample_size(10);
    for sessions in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("heap/ycsb-b/{sessions}-sessions")),
            &sessions,
            |b, &sessions| {
                b.iter(|| mt_cell(BackendKind::Heap, sessions, 2_000, 2_000, 4242));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mt_throughput);
criterion_main!(benches);
