//! Criterion bench for the staged batch pipeline: serial vs pipelined
//! submit over both storage backends, on a read-heavy (YCSB-B) and a
//! mixed (YCSB-A) profile. The pipeline's contract is that simulated
//! results are byte-identical between modes — what this bench measures is
//! the *wall-clock* payoff of fanning read-wave payload work (per-tuple
//! AES) out across scoped worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::pipeline_cell;
use datacase_storage::backend::BackendKind;
use datacase_workloads::ycsb::YcsbWorkload;

fn bench_pipeline_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    for backend in BackendKind::ALL {
        for workload in [YcsbWorkload::B, YcsbWorkload::A] {
            for pipeline in [false, true] {
                let id = format!(
                    "{}/{}/{}",
                    backend.label(),
                    workload.label(),
                    if pipeline { "pipelined" } else { "serial" }
                );
                group.bench_with_input(
                    BenchmarkId::from_parameter(id),
                    &(backend, workload, pipeline),
                    |b, &(backend, workload, pipeline)| {
                        b.iter(|| pipeline_cell(backend, workload, pipeline, 2_000, 2_000, 4242));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_throughput);
criterion_main!(benches);
