//! Criterion ablation: crypto-erasure vs physical permanent deletion.

use criterion::{criterion_group, criterion_main, Criterion};
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_engine::frontend::{Batch, Frontend, Request, Session};
use datacase_engine::profiles::EngineConfig;
use datacase_engine::Actor;
use datacase_workloads::gdprbench::GdprBench;

fn loaded(config: EngineConfig) -> Frontend {
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(41, 200);
    fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(1_000));
    fe
}

fn bench_crypto_erasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_crypto_erasure");
    group.sample_size(10);
    group.bench_function("physical_permanent_delete", |b| {
        b.iter_batched(
            || {
                let mut cfg = EngineConfig::p_sys();
                cfg.tuple_encryption = None;
                loaded(cfg)
            },
            |mut fe| {
                let erasures: Batch = (0..20u64)
                    .map(|key| Request::Erase {
                        key,
                        interpretation: ErasureInterpretation::PermanentlyDeleted,
                    })
                    .collect();
                fe.submit(&Session::new(Actor::Controller), &erasures);
                fe
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("crypto_erasure_key_destroy", |b| {
        b.iter_batched(
            || loaded(EngineConfig::p_sys()),
            |mut fe| {
                for key in 0..20u64 {
                    if let Some(unit) = fe.unit_of_key(key) {
                        fe.forensic().destroy_key(unit);
                    }
                }
                fe
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_crypto_erasure);
criterion_main!(benches);
