//! Criterion ablation: crypto-erasure vs physical permanent deletion.

use criterion::{criterion_group, criterion_main, Criterion};
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_engine::db::{Actor, CompliantDb};
use datacase_engine::erasure::erase_now;
use datacase_engine::profiles::EngineConfig;
use datacase_workloads::gdprbench::GdprBench;

fn loaded(config: EngineConfig) -> CompliantDb {
    let mut db = CompliantDb::new(config);
    let mut bench = GdprBench::new(41, 200);
    for op in bench.load_phase(1_000) {
        db.execute(&op, Actor::Controller);
    }
    db
}

fn bench_crypto_erasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_crypto_erasure");
    group.sample_size(10);
    group.bench_function("physical_permanent_delete", |b| {
        b.iter_batched(
            || {
                let mut cfg = EngineConfig::p_sys();
                cfg.tuple_encryption = None;
                loaded(cfg)
            },
            |mut db| {
                for key in 0..20u64 {
                    erase_now(&mut db, key, ErasureInterpretation::PermanentlyDeleted);
                }
                db
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("crypto_erasure_key_destroy", |b| {
        b.iter_batched(
            || loaded(EngineConfig::p_sys()),
            |mut db| {
                for key in 0..20u64 {
                    if let Some(unit) = db.unit_of_key(key) {
                        if let Some(vault) = db.vault_mut() {
                            vault.destroy_key(unit.0);
                        }
                    }
                }
                db
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_crypto_erasure);
criterion_main!(benches);
