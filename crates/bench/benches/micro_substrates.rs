//! Microbenchmarks of the substrates: AES, SHA-256, B+tree, hash index,
//! heap point ops, LSM point ops, FGAC checks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacase_crypto::aes::KeySize;
use datacase_crypto::ctr::AesCtr;
use datacase_crypto::sha256::Sha256;
use datacase_sim::{Meter, SimClock};
use datacase_storage::btree::BTreeIndex;
use datacase_storage::hashindex::HashIndex;
use datacase_storage::heap::HeapDb;
use datacase_storage::lsm::LsmTree;
use datacase_storage::tuple::Tid;
use std::sync::Arc;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_crypto");
    let data = vec![0xABu8; 4096];
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("aes128_ctr_4k", |b| {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[0u8; 16]);
        b.iter(|| {
            let mut buf = data.clone();
            ctr.apply(AesCtr::iv_from_nonce(1), &mut buf);
            buf
        });
    });
    group.bench_function("aes256_ctr_4k", |b| {
        let ctr = AesCtr::from_key(KeySize::Aes256, &[0u8; 32]);
        b.iter(|| {
            let mut buf = data.clone();
            ctr.apply(AesCtr::iv_from_nonce(1), &mut buf);
            buf
        });
    });
    group.bench_function("sha256_4k", |b| {
        b.iter(|| Sha256::digest(&data));
    });
    group.finish();
}

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_indexes");
    group.bench_function("btree_insert_10k", |b| {
        b.iter(|| {
            let mut ix = BTreeIndex::new(SimClock::commodity(), Arc::new(Meter::new()));
            for i in 0..10_000u64 {
                ix.insert(
                    i,
                    Tid {
                        page: i as u32,
                        slot: 0,
                    },
                );
            }
            ix
        });
    });
    group.bench_function("btree_get_hot", |b| {
        let mut ix = BTreeIndex::new(SimClock::commodity(), Arc::new(Meter::new()));
        for i in 0..10_000u64 {
            ix.insert(
                i,
                Tid {
                    page: i as u32,
                    slot: 0,
                },
            );
        }
        b.iter(|| ix.get(5_000));
    });
    group.bench_function("hashindex_insert_10k", |b| {
        b.iter(|| {
            let mut ix = HashIndex::new(SimClock::commodity(), Arc::new(Meter::new()));
            for i in 0..10_000u64 {
                ix.insert(
                    i,
                    Tid {
                        page: i as u32,
                        slot: 0,
                    },
                );
            }
            ix
        });
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_engines");
    group.bench_function("heap_insert_read_1k", |b| {
        b.iter(|| {
            let mut db = HeapDb::default_single();
            for i in 0..1_000u64 {
                db.insert(i, i, &[0x42; 100]).unwrap();
            }
            for i in 0..1_000u64 {
                db.read(i, false).unwrap();
            }
            db
        });
    });
    group.bench_function("lsm_insert_read_1k", |b| {
        b.iter(|| {
            let mut t = LsmTree::default_single();
            for i in 0..1_000u64 {
                t.put(i, i, &[0x42; 100]);
            }
            for i in 0..1_000u64 {
                t.get(i).unwrap();
            }
            t
        });
    });
    group.finish();
}

criterion_group!(benches, bench_crypto, bench_indexes, bench_engines);
criterion_main!(benches);
