//! Criterion bench for Figure 4a: wall-clock cost of the four erasure
//! strategies under the customer workload (20 % deletes / 80 % reads).
//!
//! Criterion sizes are reduced (it repeats each cell many times); the
//! paper-scale series comes from `repro fig4a`, which reports simulated
//! completion time. Shapes must agree between the two.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::fig4a_cell;
use datacase_engine::profiles::DeleteStrategy;

fn bench_fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_erasure_interpretations");
    group.sample_size(10);
    for strategy in DeleteStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| fig4a_cell(strategy, 2_000, 1_000, 4242));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4a);
criterion_main!(benches);
