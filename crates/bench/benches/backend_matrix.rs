//! Criterion bench for the storage-backend matrix: the GDPRBench customer
//! mix over every (profile, backend, delete-strategy) cell, so the cost of
//! running the same compliance profile on the heap vs the LSM tree is
//! directly comparable per erasure grounding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::backend_cell;
use datacase_engine::profiles::{DeleteStrategy, ProfileKind};
use datacase_storage::backend::BackendKind;

fn bench_backend_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_matrix");
    group.sample_size(10);
    for profile in ProfileKind::PAPER {
        for backend in BackendKind::ALL {
            for strategy in DeleteStrategy::ALL {
                let id = format!(
                    "{}/{}/{}",
                    profile.label(),
                    backend.label(),
                    strategy.label()
                );
                group.bench_with_input(
                    BenchmarkId::from_parameter(id),
                    &(profile, backend, strategy),
                    |b, &(profile, backend, strategy)| {
                        b.iter(|| backend_cell(profile, backend, strategy, 2_000, 500, 4242));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backend_matrix);
criterion_main!(benches);
