//! Criterion bench for Figure 4c: completion vs record count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datacase_bench::figures::{profile_cell, BenchWorkload};
use datacase_engine::profiles::ProfileKind;

fn bench_fig4c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c_scalability");
    group.sample_size(10);
    for records in [1_000u64, 2_000, 4_000] {
        group.throughput(Throughput::Elements(records));
        for profile in ProfileKind::PAPER {
            let id = format!("{}/records={records}", profile.label());
            group.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(profile, records),
                |b, &(profile, records)| {
                    b.iter(|| profile_cell(profile, BenchWorkload::WCus, records, 400, 17));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4c);
criterion_main!(benches);
