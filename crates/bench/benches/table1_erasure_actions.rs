//! Criterion bench for Table 1: cost of executing each erasure
//! interpretation's system-action plan on a loaded engine, driven through
//! the frontend's `Erase` request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_engine::frontend::{Frontend, Request, Session};
use datacase_engine::profiles::EngineConfig;
use datacase_engine::Actor;
use datacase_workloads::gdprbench::GdprBench;

fn loaded_frontend(records: usize) -> Frontend {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut fe = Frontend::new(config);
    let mut bench = GdprBench::new(77, 500);
    fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(records));
    fe
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_erasure_actions");
    group.sample_size(10);
    for interp in ErasureInterpretation::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(interp.label()),
            &interp,
            |b, &interp| {
                b.iter_batched(
                    || loaded_frontend(1_000),
                    |mut fe| {
                        let r = fe.run(
                            &Session::new(Actor::Controller),
                            Request::Erase {
                                key: 500,
                                interpretation: interp,
                            },
                        );
                        assert!(r.outcome.is_ok());
                        fe
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
