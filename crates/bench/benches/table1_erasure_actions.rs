//! Criterion bench for Table 1: cost of executing each erasure
//! interpretation's system-action plan on a loaded engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_engine::db::{Actor, CompliantDb};
use datacase_engine::erasure::erase_now;
use datacase_engine::profiles::EngineConfig;
use datacase_workloads::gdprbench::GdprBench;

fn loaded_db(records: usize) -> CompliantDb {
    let mut config = EngineConfig::p_sys();
    config.tuple_encryption = None;
    let mut db = CompliantDb::new(config);
    let mut bench = GdprBench::new(77, 500);
    for op in bench.load_phase(records) {
        db.execute(&op, Actor::Controller);
    }
    db
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_erasure_actions");
    group.sample_size(10);
    for interp in ErasureInterpretation::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(interp.label()),
            &interp,
            |b, &interp| {
                b.iter_batched(
                    || loaded_db(1_000),
                    |mut db| {
                        assert!(erase_now(&mut db, 500, interp));
                        db
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
