//! Criterion bench for Table 2: cost of loading + measuring the space
//! breakdown per profile (the load dominates; the measurement itself is
//! also covered).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_bench::figures::{profile_cell, BenchWorkload};
use datacase_engine::profiles::ProfileKind;
use datacase_engine::space::SpaceReport;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_space_factor");
    group.sample_size(10);
    for profile in ProfileKind::PAPER {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.label()),
            &profile,
            |b, &profile| {
                b.iter(|| {
                    let (_, db) = profile_cell(profile, BenchWorkload::WCus, 2_000, 200, 23);
                    SpaceReport::measure(&db)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
