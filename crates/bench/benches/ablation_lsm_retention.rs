//! Criterion ablation: LSM compaction aggressiveness vs delete cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_sim::{Meter, SimClock};
use datacase_storage::lsm::{LsmConfig, LsmTree};
use std::sync::Arc;

fn bench_lsm_retention(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lsm_retention");
    group.sample_size(10);
    for runs_per_level in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(runs_per_level),
            &runs_per_level,
            |b, &runs_per_level| {
                b.iter(|| {
                    let mut tree = LsmTree::new(
                        LsmConfig {
                            memtable_bytes: 8 * 1024,
                            runs_per_level,
                            ..LsmConfig::default()
                        },
                        SimClock::commodity(),
                        Arc::new(Meter::new()),
                    );
                    for i in 0..2_000u64 {
                        tree.put(i, i, &[0x42; 64]);
                    }
                    for i in 0..400u64 {
                        tree.delete(i * 5, i * 5);
                    }
                    tree.stats()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lsm_retention);
criterion_main!(benches);
