//! Criterion ablation: autovacuum period sweep under the Fig-4a mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_engine::driver::run_ops;
use datacase_engine::frontend::{Frontend, Session};
use datacase_engine::profiles::{DeleteStrategy, EngineConfig};
use datacase_engine::Actor;
use datacase_workloads::gdprbench::{GdprBench, Mix};

fn bench_vacuum_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vacuum_period");
    group.sample_size(10);
    for period in [50u64, 200, 1000, u64::MAX] {
        let label = if period == u64::MAX {
            "never".to_string()
        } else {
            period.to_string()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &period, |b, &period| {
            b.iter(|| {
                let mut config = EngineConfig::stock(DeleteStrategy::DeleteVacuum);
                config.maintenance_every = period;
                let mut fe = Frontend::new(config);
                let mut bench = GdprBench::new(13, 200);
                fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(2_000));
                let ops = bench.ops(1_000, Mix::fig4a_customer());
                run_ops(&mut fe, &ops, Actor::Subject)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vacuum_period);
criterion_main!(benches);
