//! Crypto hot-path microbenchmarks: hardware AES-NI (when the host has
//! it) vs fused T-table AES vs the retained byte-oriented reference
//! rounds, on every shape the paper profiles pay for — block
//! encryption, CTR streams (record- and page-sized), the LUKS-style
//! sector cipher, the P_SYS encrypted audit log, and the key vault's
//! cached schedules. Software series force
//! `CryptoBackend::Software`; under the default `Auto` they would
//! silently measure the hardware path on AES-NI hosts. `repro crypto`
//! renders the same comparison into `BENCH_crypto.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacase_audit::loggers::{AuditLogger, EncryptedLogger};
use datacase_audit::record::LogRecord;
use datacase_core::ids::{EntityId, UnitId};
use datacase_core::purpose::well_known as wk;
use datacase_crypto::aes::{Aes, KeySize};
use datacase_crypto::ctr::AesCtr;
use datacase_crypto::sector::SectorCipher;
use datacase_crypto::sha256::Sha256;
use datacase_crypto::vault::KeyVault;
use datacase_crypto::{aesni, CryptoBackend};
use datacase_sim::time::Ts;
use datacase_sim::{Meter, SimClock};
use std::sync::Arc;

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_block");
    group.throughput(Throughput::Bytes(16));
    for (name, size) in [("aes128", KeySize::Aes128), ("aes256", KeySize::Aes256)] {
        let aes = Aes::new(size, &[0x42u8; 32][..size.key_len()]);
        if let Some(hw) = aesni::AesNi::new(size, &[0x42u8; 32][..size.key_len()]) {
            group.bench_function(format!("{name}_aesni"), |b| {
                let mut block = [0xABu8; 16];
                b.iter(|| {
                    hw.encrypt_block(&mut block);
                    block
                });
            });
        }
        group.bench_function(format!("{name}_ttable"), |b| {
            let mut block = [0xABu8; 16];
            b.iter(|| {
                aes.encrypt_block(&mut block);
                block
            });
        });
        group.bench_function(format!("{name}_reference"), |b| {
            let mut block = [0xABu8; 16];
            b.iter(|| {
                aes.encrypt_block_ref(&mut block);
                block
            });
        });
    }
    group.finish();
}

fn bench_ctr(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_ctr");
    for (label, len) in [("256b", 256usize), ("4k", 4096)] {
        group.throughput(Throughput::Bytes(len as u64));
        let ctr =
            AesCtr::from_key(KeySize::Aes128, &[0u8; 16]).with_backend(CryptoBackend::Software);
        let iv = AesCtr::iv_from_nonce(1);
        if CryptoBackend::hardware_available() {
            let hw = ctr.clone().with_backend(CryptoBackend::Hardware);
            group.bench_function(format!("aes128_aesni_{label}"), |b| {
                let mut buf = vec![0xABu8; len];
                b.iter(|| hw.apply(iv, &mut buf));
            });
        }
        group.bench_function(format!("aes128_lane_{label}"), |b| {
            let mut buf = vec![0xABu8; len];
            b.iter(|| ctr.apply(iv, &mut buf));
        });
        group.bench_function(format!("aes128_reference_{label}"), |b| {
            let mut buf = vec![0xABu8; len];
            b.iter(|| ctr.apply_ref(iv, &mut buf));
        });
    }
    group.finish();
}

fn bench_sector(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_sector");
    group.throughput(Throughput::Bytes(4096));
    let sc = SectorCipher::from_passphrase(b"luks-gbench-passphrase", KeySize::Aes256)
        .with_backend(CryptoBackend::Software);
    if CryptoBackend::hardware_available() {
        let hw = sc.clone().with_backend(CryptoBackend::Hardware);
        group.bench_function("aes256_page_aesni", |b| {
            let mut page = vec![0x5Au8; 4096];
            b.iter(|| hw.apply(42, &mut page));
        });
    }
    group.bench_function("aes256_page_blocks", |b| {
        let mut page = vec![0x5Au8; 4096];
        b.iter(|| sc.apply(42, &mut page));
    });
    group.bench_function("aes256_page_reference", |b| {
        let mut page = vec![0x5Au8; 4096];
        b.iter(|| sc.apply_ref(42, &mut page));
    });
    group.finish();
}

fn bench_vault(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_vault");
    let mut vault = KeyVault::new(b"engine-master-secret", KeySize::Aes128);
    vault.ensure_key(7);
    let key = vault.ensure_key(7).to_vec();
    group.bench_function("cached_schedule_64b", |b| {
        let cipher = vault.cipher(7).unwrap();
        let mut buf = [0xABu8; 64];
        b.iter(|| cipher.apply(AesCtr::iv_from_nonce(7), &mut buf));
    });
    group.bench_function("reexpand_schedule_64b", |b| {
        // What every operation paid before schedule caching: a fresh key
        // expansion per cipher use.
        let mut buf = [0xABu8; 64];
        b.iter(|| {
            let cipher = AesCtr::from_key(KeySize::Aes128, &key);
            cipher.apply(AesCtr::iv_from_nonce(7), &mut buf);
        });
    });
    group.finish();
}

fn bench_logger(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_logger");
    let payload = vec![0x33u8; 256];
    group.throughput(Throughput::Bytes(256));
    group.bench_function("encrypted_log_append_256b", |b| {
        // The cheap constructor: the cipher is expanded once out here,
        // not re-derived from the key inside every logger construction.
        let digest = Sha256::digest(b"audit-key");
        let cipher = AesCtr::from_key(KeySize::Aes128, &digest[..16]);
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut logger = EncryptedLogger::with_cipher(cipher, b"audit-key", clock, meter);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            logger.log(LogRecord {
                seq,
                at: Ts::from_secs(seq),
                unit: Some(UnitId(seq)),
                entity: EntityId(1),
                purpose: wk::billing(),
                op: "read".into(),
                payload: payload.clone(),
                redacted: false,
            });
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_block,
    bench_ctr,
    bench_sector,
    bench_vault,
    bench_logger
);
criterion_main!(benches);
