//! Criterion ablation: FGAC with/without the Sieve policy index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacase_engine::driver::run_ops;
use datacase_engine::frontend::{Frontend, Session};
use datacase_engine::profiles::EngineConfig;
use datacase_engine::Actor;
use datacase_workloads::gdprbench::{GdprBench, Mix};

fn bench_policy_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policy_index");
    group.sample_size(10);
    for use_index in [true, false] {
        let label = if use_index { "indexed" } else { "linear" };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &use_index,
            |b, &use_index| {
                b.iter(|| {
                    let mut config = EngineConfig::p_sys();
                    config.fgac_index = use_index;
                    let mut fe = Frontend::new(config);
                    let mut bench = GdprBench::new(31, 200);
                    fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(1_000));
                    let ops = bench.ops(500, Mix::wpro());
                    run_ops(&mut fe, &ops, Actor::Processor)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policy_index);
criterion_main!(benches);
