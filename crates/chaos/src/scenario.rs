//! The scenario DSL: typed compliance-stress steps compiled, under a
//! seed, into a concrete deterministic operation trace.
//!
//! A [`Scenario`] is a list of [`Step`]s — the vocabulary of compliance
//! stress this harness knows how to apply: erase-floods, revocation
//! storms against warm decision caches, retention horizons expiring
//! mid-run, role churn, tenant churn. [`compile`] lowers the steps into
//! a [`CompiledScenario`]: an ordered list of [`TraceOp`]s (engine
//! submissions, clock advances, retention sweeps) whose every key,
//! payload byte, and batch boundary is a pure function of
//! `(seed, scenario)` — so any run, crashed or not, can be reproduced
//! from those two values alone.

use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::purpose::well_known as wk;
use datacase_engine::frontend::{Batch, Request, Session};
use datacase_engine::Actor;
use datacase_sim::rng::{child_seed, SplitMix64};
use datacase_sim::time::{Dur, Ts};
use datacase_workloads::opstream::{MetaField, MetaSelector};
use datacase_workloads::record::GdprMetadata;

/// Keys of subject `s` live at `s * KEY_STRIDE + i`.
const KEY_STRIDE: u64 = 1_000;

/// Retention deadline for records that should never expire in-scenario.
const FAR_TTL: Ts = Ts(30_000_000 * 1_000_000_000);

/// One typed compliance-stress step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Register `subjects` data subjects with `records_each` records
    /// apiece (consent capture; the corpus later steps stress).
    Seed {
        /// Number of subjects to register.
        subjects: u32,
        /// Records created per subject.
        records_each: u32,
    },
    /// A burst of benign workload traffic (reads, updates, metadata
    /// reads, subject-access scans) over the live corpus.
    Workload {
        /// Number of operations.
        ops: u32,
    },
    /// Subjects exercise the right to erasure back-to-back: every live
    /// record of each chosen subject is erased at `interpretation`.
    EraseFlood {
        /// How many subjects flood in.
        subjects: u32,
        /// The grounding each erasure executes (Table 1 row).
        interpretation: ErasureInterpretation,
    },
    /// Rounds of processor reads (warming the policy-decision cache)
    /// interleaved with purpose changes that bump the policy epoch —
    /// every cached decision must be structurally invalidated, never
    /// served stale.
    RevocationStorm {
        /// Warm / bump / re-read rounds.
        rounds: u32,
    },
    /// Records collected with a short retention horizon; the clock then
    /// jumps past the horizon and the retention sweeper runs (G17 is a
    /// maintained invariant, so expiry without a sweep would be a
    /// compliance violation, not a chaos finding).
    RetentionExpiry {
        /// Records created with the short horizon.
        records: u32,
        /// The horizon after which they must be gone.
        horizon: Dur,
    },
    /// Controller / processor / subject sessions alternate over the same
    /// records: denied processor erasures, reversible subject erasures
    /// with restores, controller updates.
    RoleChurn {
        /// Churn rounds.
        rounds: u32,
    },
    /// New tenants (subjects) onboard while old ones are permanently
    /// erased — the arrival/departure pattern that stresses key
    /// destruction and run purging under load.
    TenantChurn {
        /// Tenants arriving (and departing victims chosen).
        tenants: u32,
        /// Records each arriving tenant brings.
        records_each: u32,
    },
}

/// A named, seed-independent scenario: the steps only; all concrete
/// choices are made by [`compile`] under a seed.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable name (used in reports and child-seed derivation).
    pub name: &'static str,
    /// The steps, applied in order.
    pub steps: Vec<Step>,
}

impl Scenario {
    /// Small mixed scenario: a bit of everything, quick to run.
    pub fn quick() -> Scenario {
        Scenario {
            name: "quick",
            steps: vec![
                Step::Seed {
                    subjects: 4,
                    records_each: 3,
                },
                Step::Workload { ops: 24 },
                Step::EraseFlood {
                    subjects: 2,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                },
                Step::Workload { ops: 12 },
            ],
        }
    }

    /// The headline grounding: permanent-erasure flood over a seeded
    /// corpus — crash anywhere (including mid `destroy-key` /
    /// `purge-unit`), recover, and the Table-1 re-probe must find zero
    /// forensic residuals.
    pub fn erase_flood() -> Scenario {
        Scenario {
            name: "erase-flood",
            steps: vec![
                Step::Seed {
                    subjects: 6,
                    records_each: 4,
                },
                Step::Workload { ops: 16 },
                Step::EraseFlood {
                    subjects: 3,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                },
                Step::Workload { ops: 8 },
                Step::EraseFlood {
                    subjects: 2,
                    interpretation: ErasureInterpretation::StronglyDeleted,
                },
            ],
        }
    }

    /// Revocation storm against a warm decision cache.
    pub fn revocation_storm() -> Scenario {
        Scenario {
            name: "revocation-storm",
            steps: vec![
                Step::Seed {
                    subjects: 5,
                    records_each: 3,
                },
                Step::RevocationStorm { rounds: 4 },
                Step::EraseFlood {
                    subjects: 1,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                },
                Step::RevocationStorm { rounds: 2 },
            ],
        }
    }

    /// Retention horizons expiring mid-run, swept on schedule.
    pub fn retention() -> Scenario {
        Scenario {
            name: "retention",
            steps: vec![
                Step::Seed {
                    subjects: 3,
                    records_each: 3,
                },
                Step::RetentionExpiry {
                    records: 6,
                    horizon: Dur::from_secs(7_200),
                },
                Step::Workload { ops: 12 },
                Step::RetentionExpiry {
                    records: 4,
                    horizon: Dur::from_secs(3_600 * 24),
                },
            ],
        }
    }

    /// Role and tenant churn: arrivals, departures, denied processor
    /// erasures, reversible erase/restore cycles.
    pub fn churn() -> Scenario {
        Scenario {
            name: "churn",
            steps: vec![
                Step::Seed {
                    subjects: 4,
                    records_each: 2,
                },
                Step::RoleChurn { rounds: 4 },
                Step::TenantChurn {
                    tenants: 3,
                    records_each: 2,
                },
                Step::Workload { ops: 10 },
            ],
        }
    }

    /// Write-heavy scenario sized to force LSM memtable flushes and at
    /// least one compaction (the `compaction` crash point's stage), with
    /// a permanent erase-flood on top so run purging races compaction.
    pub fn compaction_pressure() -> Scenario {
        Scenario {
            name: "compaction-pressure",
            steps: vec![
                Step::Seed {
                    subjects: 8,
                    records_each: 6,
                },
                Step::Workload { ops: 48 },
                Step::EraseFlood {
                    subjects: 3,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                },
                Step::Workload { ops: 16 },
            ],
        }
    }

    /// Every built-in scenario, in a stable order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::quick(),
            Scenario::erase_flood(),
            Scenario::revocation_storm(),
            Scenario::retention(),
            Scenario::churn(),
            Scenario::compaction_pressure(),
        ]
    }
}

/// One lowered trace operation — the unit of crash granularity: a crash
/// aborts exactly one `TraceOp`, and recovery replays whole `TraceOp`s.
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// Submit a batch on a session.
    Submit {
        /// The submitting session.
        session: Session,
        /// The ordered batch.
        batch: Batch,
    },
    /// Advance the simulated clock to `to` (monotone; never backwards).
    Advance {
        /// Target instant.
        to: Ts,
    },
    /// Run the retention sweeper at the given grounding.
    Sweep {
        /// Grounding applied to expired units.
        interpretation: ErasureInterpretation,
    },
}

impl TraceOp {
    /// Short label for event traces.
    pub fn label(&self) -> String {
        match self {
            TraceOp::Submit { batch, .. } => format!("submit[{}]", batch.len()),
            TraceOp::Advance { to } => format!("advance[{}]", to.0),
            TraceOp::Sweep { interpretation } => format!("sweep[{interpretation:?}]"),
        }
    }
}

/// The result of lowering `(seed, Scenario)`: the concrete trace plus
/// the oracle's residual obligations.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// The scenario's stable name.
    pub name: &'static str,
    /// The seed the trace was derived from.
    pub seed: u64,
    /// The trace, in submission order.
    pub ops: Vec<TraceOp>,
    /// Needles that must scan to **zero** across every persistent layer
    /// once the trace has fully executed: one per permanently-erased
    /// subject (their records' payloads all embed it).
    pub erased_needles: Vec<Vec<u8>>,
}

/// Payload needle identifying subject `s` (fixed width, so no needle is
/// a prefix of another subject's).
fn subject_needle(s: u32) -> String {
    format!("CHAOS-S{s:06}")
}

/// Deterministic compiler state threaded through the steps.
struct Compiler {
    rng: SplitMix64,
    ops: Vec<TraceOp>,
    /// subject → live keys, in creation order (deterministic iteration).
    corpus: Vec<(u32, Vec<u64>)>,
    next_subject: u32,
    /// Lower bound for clock advances (strictly monotone).
    cursor: Ts,
    erased_perm: Vec<u32>,
}

impl Compiler {
    fn payload(&mut self, subject: u32, key: u64) -> Vec<u8> {
        let mut p = format!("{}-K{key:08}-", subject_needle(subject)).into_bytes();
        for _ in 0..4 {
            p.extend_from_slice(format!("{:016x}", self.rng.next_u64()).as_bytes());
        }
        p
    }

    fn metadata(subject: u32, ttl: Ts) -> GdprMetadata {
        GdprMetadata {
            subject,
            purpose: wk::billing(),
            ttl,
            origin_device: 0,
            objects_to_sharing: false,
        }
    }

    fn create_subject(&mut self, records: u32, ttl: Ts) -> u32 {
        let s = self.next_subject;
        self.next_subject += 1;
        let mut batch = Batch::new();
        let mut keys = Vec::new();
        for i in 0..records {
            let key = s as u64 * KEY_STRIDE + i as u64;
            let payload = self.payload(s, key);
            batch.push(Request::Create {
                key,
                payload,
                metadata: Self::metadata(s, ttl),
            });
            keys.push(key);
        }
        self.corpus.push((s, keys));
        self.ops.push(TraceOp::Submit {
            session: Session::new(Actor::Controller),
            batch,
        });
        s
    }

    /// A deterministic random live key, if any exist.
    fn pick_live(&mut self) -> Option<(u32, u64)> {
        let populated: Vec<usize> = (0..self.corpus.len())
            .filter(|&i| !self.corpus[i].1.is_empty())
            .collect();
        if populated.is_empty() {
            return None;
        }
        let ci = populated[self.rng.next_below(populated.len() as u64) as usize];
        let (s, keys) = &self.corpus[ci];
        let key = keys[self.rng.next_below(keys.len() as u64) as usize];
        Some((*s, key))
    }

    /// Subjects that still have live records, oldest first.
    fn live_subjects(&self) -> Vec<u32> {
        self.corpus
            .iter()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(s, _)| *s)
            .collect()
    }

    fn remove_key(&mut self, s: u32, key: u64) {
        for (cs, keys) in &mut self.corpus {
            if *cs == s {
                keys.retain(|&k| k != key);
            }
        }
    }

    fn drain_subject(&mut self, s: u32) -> Vec<u64> {
        for (cs, keys) in &mut self.corpus {
            if *cs == s {
                return std::mem::take(keys);
            }
        }
        Vec::new()
    }

    fn step(&mut self, step: &Step) {
        match *step {
            Step::Seed {
                subjects,
                records_each,
            } => {
                for _ in 0..subjects {
                    self.create_subject(records_each, FAR_TTL);
                }
            }
            Step::Workload { ops } => {
                // Subject-session traffic (the WCus shape): the
                // subject-access purpose grounds reads, updates and
                // metadata reads, so a legitimate run stays clean under
                // the invariant catalog.
                let mut batch = Batch::new();
                for _ in 0..ops {
                    let Some((s, key)) = self.pick_live() else {
                        break;
                    };
                    let req = match self.rng.next_below(5) {
                        0 => Request::Read { key },
                        1 => {
                            let payload = self.payload(s, key);
                            Request::Update { key, payload }
                        }
                        2 => Request::ReadMeta { key },
                        3 => Request::ReadByMeta {
                            selector: MetaSelector::BySubject(s),
                        },
                        _ => Request::Read { key },
                    };
                    batch.push(req);
                    if batch.len() == 8 {
                        self.ops.push(TraceOp::Submit {
                            session: Session::new(Actor::Subject),
                            batch: std::mem::take(&mut batch),
                        });
                    }
                }
                if !batch.is_empty() {
                    self.ops.push(TraceOp::Submit {
                        session: Session::new(Actor::Subject),
                        batch,
                    });
                }
            }
            Step::EraseFlood {
                subjects,
                interpretation,
            } => {
                let victims: Vec<u32> = self
                    .live_subjects()
                    .into_iter()
                    .take(subjects as usize)
                    .collect();
                for s in victims {
                    let keys = self.drain_subject(s);
                    let mut batch = Batch::new();
                    for key in keys {
                        batch.push(Request::Erase {
                            key,
                            interpretation,
                        });
                    }
                    if batch.is_empty() {
                        continue;
                    }
                    self.ops.push(TraceOp::Submit {
                        session: Session::new(Actor::Subject),
                        batch,
                    });
                    if interpretation == ErasureInterpretation::PermanentlyDeleted {
                        self.erased_perm.push(s);
                    }
                    // A read burst between floods keeps erase work and
                    // span work interleaved at crash-point granularity.
                    if let Some((_, key)) = self.pick_live() {
                        self.ops.push(TraceOp::Submit {
                            session: Session::new(Actor::Controller),
                            batch: Batch::new().with(Request::Read { key }),
                        });
                    }
                }
            }
            Step::RevocationStorm { rounds } => {
                for _ in 0..rounds {
                    let mut targets = Vec::new();
                    for _ in 0..4 {
                        if let Some((_, key)) = self.pick_live() {
                            targets.push(key);
                        }
                    }
                    targets.dedup();
                    if targets.is_empty() {
                        continue;
                    }
                    let processor = Session::new(Actor::Processor);
                    let warm: Batch = targets.iter().map(|&key| Request::Read { key }).collect();
                    // Warm the decision cache (allows and denials alike).
                    self.ops.push(TraceOp::Submit {
                        session: processor.clone(),
                        batch: warm.clone(),
                    });
                    // Purpose changes bump the policy epoch: every cached
                    // decision for these classes goes structurally stale.
                    let bump: Batch = targets
                        .iter()
                        .map(|&key| Request::UpdateMeta {
                            key,
                            field: MetaField::Purpose,
                        })
                        .collect();
                    self.ops.push(TraceOp::Submit {
                        session: Session::new(Actor::Controller),
                        batch: bump,
                    });
                    // Re-read through the (invalidated) cache.
                    self.ops.push(TraceOp::Submit {
                        session: processor,
                        batch: warm,
                    });
                }
            }
            Step::RetentionExpiry { records, horizon } => {
                let ttl = self.cursor + horizon;
                let s = self.create_subject(records, ttl);
                // Touch the expiring records while they are still live.
                self.ops.push(TraceOp::Submit {
                    session: Session::new(Actor::Controller),
                    batch: Batch::new().with(Request::ReadByMeta {
                        selector: MetaSelector::BySubject(s),
                    }),
                });
                // Jump past the horizon and sweep: G17 stays maintained.
                self.cursor = ttl + Dur::from_secs(60);
                self.ops.push(TraceOp::Advance { to: self.cursor });
                self.ops.push(TraceOp::Sweep {
                    interpretation: ErasureInterpretation::Deleted,
                });
                self.drain_subject(s);
            }
            Step::RoleChurn { rounds } => {
                for _ in 0..rounds {
                    let Some((s, key)) = self.pick_live() else {
                        break;
                    };
                    // Processor maintenance write under the retention
                    // purpose (the one purpose grounding a processor's
                    // UpdateValue).
                    let payload = self.payload(s, key);
                    self.ops.push(TraceOp::Submit {
                        session: Session::new(Actor::Processor).for_purpose(wk::retention()),
                        batch: Batch::new().with(Request::Update { key, payload }),
                    });
                    // A processor cannot execute the right to erasure:
                    // deterministic denial, no history recorded.
                    self.ops.push(TraceOp::Submit {
                        session: Session::new(Actor::Processor),
                        batch: Batch::new().with(Request::Erase {
                            key,
                            interpretation: ErasureInterpretation::Deleted,
                        }),
                    });
                    // The subject exercises reversible inaccessibility on
                    // one of their records; a controller read of another
                    // key keeps roles alternating.
                    let victim = self.rng.next_below(4) == 0;
                    if victim {
                        self.ops.push(TraceOp::Submit {
                            session: Session::new(Actor::Subject),
                            batch: Batch::new().with(Request::Erase {
                                key,
                                interpretation: ErasureInterpretation::ReversiblyInaccessible,
                            }),
                        });
                        self.remove_key(s, key);
                    }
                    if let Some((_, other)) = self.pick_live() {
                        self.ops.push(TraceOp::Submit {
                            session: Session::new(Actor::Controller),
                            batch: Batch::new().with(Request::Read { key: other }),
                        });
                    }
                }
            }
            Step::TenantChurn {
                tenants,
                records_each,
            } => {
                for _ in 0..tenants {
                    self.create_subject(records_each, FAR_TTL);
                    if let Some(&victim) = self.live_subjects().first() {
                        let keys = self.drain_subject(victim);
                        let batch: Batch = keys
                            .into_iter()
                            .map(|key| Request::Erase {
                                key,
                                interpretation: ErasureInterpretation::PermanentlyDeleted,
                            })
                            .collect();
                        if !batch.is_empty() {
                            self.ops.push(TraceOp::Submit {
                                session: Session::new(Actor::Subject),
                                batch,
                            });
                            self.erased_perm.push(victim);
                        }
                    }
                }
            }
        }
    }
}

/// Lower `(seed, scenario)` into the concrete deterministic trace.
pub fn compile(seed: u64, scenario: &Scenario) -> CompiledScenario {
    let mut c = Compiler {
        rng: SplitMix64::new(child_seed(seed, scenario.name)),
        ops: Vec::new(),
        corpus: Vec::new(),
        next_subject: 1,
        cursor: Ts::ZERO,
        erased_perm: Vec::new(),
    };
    for step in &scenario.steps {
        c.step(step);
    }
    CompiledScenario {
        name: scenario.name,
        seed,
        ops: c.ops,
        erased_needles: c
            .erased_perm
            .iter()
            .map(|&s| subject_needle(s).into_bytes())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_deterministic() {
        for scenario in Scenario::all() {
            let a = compile(7, &scenario);
            let b = compile(7, &scenario);
            assert_eq!(a.ops.len(), b.ops.len(), "{}", scenario.name);
            for (x, y) in a.ops.iter().zip(&b.ops) {
                match (x, y) {
                    (TraceOp::Submit { batch: bx, .. }, TraceOp::Submit { batch: by, .. }) => {
                        assert_eq!(bx, by)
                    }
                    (TraceOp::Advance { to: tx }, TraceOp::Advance { to: ty }) => {
                        assert_eq!(tx, ty)
                    }
                    (
                        TraceOp::Sweep { interpretation: ix },
                        TraceOp::Sweep { interpretation: iy },
                    ) => {
                        assert_eq!(ix, iy)
                    }
                    _ => panic!("op shapes diverge"),
                }
            }
            assert_eq!(a.erased_needles, b.erased_needles);
        }
    }

    #[test]
    fn seeds_change_the_trace() {
        let s = Scenario::quick();
        let a = compile(1, &s);
        let b = compile(2, &s);
        let payload_of = |c: &CompiledScenario| -> Vec<u8> {
            for op in &c.ops {
                if let TraceOp::Submit { batch, .. } = op {
                    for r in batch.requests() {
                        if let Request::Create { payload, .. } = r {
                            return payload.clone();
                        }
                    }
                }
            }
            Vec::new()
        };
        assert_ne!(payload_of(&a), payload_of(&b), "payload filler is seeded");
    }

    #[test]
    fn erase_flood_records_needles() {
        let c = compile(3, &Scenario::erase_flood());
        assert_eq!(
            c.erased_needles.len(),
            3,
            "three subjects permanently erased"
        );
        for needle in &c.erased_needles {
            assert!(needle.starts_with(b"CHAOS-S"));
        }
    }

    #[test]
    fn retention_steps_pair_advance_with_sweep() {
        let c = compile(9, &Scenario::retention());
        let mut pending_advance = false;
        let mut sweeps = 0;
        for op in &c.ops {
            match op {
                TraceOp::Advance { .. } => pending_advance = true,
                TraceOp::Sweep { .. } => {
                    assert!(pending_advance, "sweep follows its advance");
                    pending_advance = false;
                    sweeps += 1;
                }
                _ => {}
            }
        }
        assert_eq!(sweeps, 2);
    }
}
