//! The chaos runner: executes compiled traces against a real engine,
//! crashes it at armed [`CrashPoint`]s, salvages the durable storage
//! state, rebuilds, and holds the recovered engine to the oracle.
//!
//! ## Recovery model
//!
//! A "crash" is a [`CrashSignal`] panic fired by the engine's fault
//! plane at a named pipeline stage; the runner catches it with
//! `catch_unwind`. What survives is exactly what the storage substrate
//! declares durable — the heap's WAL or the LSM's committed run
//! manifest, salvaged as a [`DurableSnapshot`] from the wreck. The
//! runner then:
//!
//! 1. **Verifies storage-level recovery** — [`recover_backend`] is run
//!    twice over the salvaged snapshot and both recoveries must agree
//!    byte-for-byte on forensic scans (recovery is deterministic), and
//!    data permanently erased *before* the crash must stay erased in
//!    the recovered substrate (no resurrection through replay).
//! 2. **Rebuilds the engine by deterministic replay** — engine-level
//!    state (policies, history, audit chain) is reconstructed by
//!    replaying the recorded trace prefix on a fresh engine, re-doing
//!    the interrupted operation, and continuing. Replayed replies must
//!    match the replies observed before the crash — the determinism
//!    that makes replay a sound recovery procedure.
//! 3. **Asserts the oracle** — the recovered run's replies, meter
//!    counters, audit-chain head bytes, forensic residuals, and all
//!    invariant-catalog outcomes must be indistinguishable from a
//!    serial run that never crashed.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};

use datacase_core::checker::ComplianceReport;
use datacase_core::regulation::Regulation;
use datacase_engine::frontend::{Frontend, Response};
use datacase_engine::profiles::EngineConfig;
use datacase_engine::sweeper::{sweep, SweeperConfig};
use datacase_sim::fault::{CrashPoint, CrashSignal, FaultInjector, CRASH_POINTS};
use datacase_sim::time::Dur;
use datacase_sim::{Meter, MeterSnapshot, SimClock};
use datacase_storage::backend::{recover_backend, BackendKind, DurableSnapshot};

use crate::scenario::{CompiledScenario, TraceOp};

/// Install (once) a panic hook that stays silent for [`CrashSignal`]
/// panics — they are the harness's control flow, not failures — and
/// delegates everything else to the previous hook.
pub fn quiet_crash_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The engine configuration every chaos run uses: the strictest paper
/// profile (P_SYS — tuple encryption, so `destroy-key` is reachable;
/// log redaction on erase) over the chosen substrate, with a warm
/// decision cache for the revocation storms and an LSM tuned small
/// enough that scenarios actually flush and compact.
pub fn chaos_config(kind: BackendKind) -> EngineConfig {
    let mut config = EngineConfig::p_sys()
        .with_backend(kind)
        .with_decision_cache(64);
    config.lsm.memtable_bytes = 2 * 1024;
    config.lsm.runs_per_level = 2;
    config
}

/// Everything the oracle compares: the observable outcome of a
/// completed run.
#[derive(Clone)]
pub struct RunOutcome {
    /// Replies per trace op (empty for advances and sweeps).
    pub replies: Vec<Vec<Response>>,
    /// Final audit-chain head MAC.
    pub chain_head: [u8; 32],
    /// Did the tamper-evidence chain verify?
    pub chain_ok: bool,
    /// Final meter snapshot.
    pub meter: MeterSnapshot,
    /// Residual count per erased-subject needle (must be all zero).
    pub residuals: Vec<usize>,
    /// The invariant catalog's verdict.
    pub report: ComplianceReport,
}

/// Apply one trace op to a live engine.
fn apply_op(fe: &mut Frontend, op: &TraceOp) -> Vec<Response> {
    match op {
        TraceOp::Submit { session, batch } => fe.submit(session, batch),
        TraceOp::Advance { to } => {
            fe.clock().advance_to(*to);
            Vec::new()
        }
        TraceOp::Sweep { interpretation } => {
            let _ = sweep(
                fe,
                SweeperConfig {
                    interpretation: *interpretation,
                    lead: Dur::from_secs(3600),
                },
            );
            Vec::new()
        }
    }
}

/// Collect a finished engine's observable outcome.
fn observe(fe: &mut Frontend, compiled: &CompiledScenario) -> RunOutcome {
    let report = fe.compliance_report(&Regulation::gdpr());
    let mut forensic = fe.forensic();
    let residuals = compiled
        .erased_needles
        .iter()
        .map(|needle| forensic.scan(needle).total())
        .collect();
    RunOutcome {
        chain_head: forensic.chain_head(),
        chain_ok: forensic.verify_chain(),
        meter: fe.meter().snapshot(),
        replies: Vec::new(),
        residuals,
        report,
    }
}

/// Run the whole trace with no faults armed: the oracle every crashed
/// run is compared against.
pub fn run_serial(kind: BackendKind, compiled: &CompiledScenario) -> RunOutcome {
    let mut fe = Frontend::new(chaos_config(kind));
    let mut replies = Vec::with_capacity(compiled.ops.len());
    for op in &compiled.ops {
        replies.push(apply_op(&mut fe, op));
    }
    let mut outcome = observe(&mut fe, compiled);
    outcome.replies = replies;
    outcome
}

/// Run the trace with a counting (never-firing) injector and report how
/// often each crash point was reached — the per-scenario map used to
/// enumerate every *reachable* named stage for the crash matrix.
pub fn discover_hits(kind: BackendKind, compiled: &CompiledScenario) -> [u64; CRASH_POINTS] {
    let fault = FaultInjector::counting();
    let mut fe = Frontend::new(chaos_config(kind).with_fault(fault.clone()));
    for op in &compiled.ops {
        apply_op(&mut fe, op);
    }
    // Read the counts before any forensic scan: scans checkpoint, which
    // would add hits the armed run (which scans only after recovery)
    // never sees.
    fault.counts()
}

/// The record of one crash-and-recover run.
pub struct CrashRun {
    /// Where the crash was armed.
    pub point: CrashPoint,
    /// Which occurrence fired (1-based).
    pub hit: u64,
    /// Index of the trace op the crash interrupted.
    pub crashed_at: usize,
    /// Deterministic event trace (byte-identical across reruns of the
    /// same `(seed, scenario, crash point, hit)`).
    pub events: Vec<String>,
    /// The recovered engine's final outcome.
    pub outcome: RunOutcome,
}

/// Crash the scenario at the `nth` occurrence of `point`, salvage,
/// recover, and return the recovered run. Errors describe any breach of
/// the recovery groundings.
pub fn run_with_crash(
    kind: BackendKind,
    compiled: &CompiledScenario,
    point: CrashPoint,
    nth: u64,
) -> Result<CrashRun, String> {
    quiet_crash_panics();
    let fault = FaultInjector::armed(point, nth);
    let mut fe = Frontend::new(chaos_config(kind).with_fault(fault.clone()));
    let mut events = Vec::new();
    events.push(format!(
        "run scenario={} seed={} backend={kind:?} crash={}#{nth}",
        compiled.name,
        compiled.seed,
        point.name()
    ));

    // Phase 1: execute until the armed crash fires.
    let mut observed: Vec<Vec<Response>> = Vec::new();
    let mut crashed_at = None;
    for (i, op) in compiled.ops.iter().enumerate() {
        match panic::catch_unwind(AssertUnwindSafe(|| apply_op(&mut fe, op))) {
            Ok(replies) => observed.push(replies),
            Err(payload) => {
                let signal = payload
                    .downcast::<CrashSignal>()
                    .map_err(|other| panic::resume_unwind(other))
                    .expect("armed runs only panic with CrashSignal");
                events.push(format!(
                    "crash op[{i}]={} point={} hit={}",
                    op.label(),
                    signal.point.name(),
                    signal.hit
                ));
                crashed_at = Some(i);
                break;
            }
        }
    }
    let Some(crashed_at) = crashed_at else {
        return Err(format!(
            "crash point {}#{nth} never fired on {kind:?} for scenario {}",
            point.name(),
            compiled.name
        ));
    };

    // Phase 2: salvage what the substrate declares durable and verify
    // storage-level recovery over it.
    let snapshot = fe.forensic().durable_snapshot();
    match &snapshot {
        DurableSnapshot::Heap(records) => {
            events.push(format!("salvage heap wal-records={}", records.len()))
        }
        DurableSnapshot::Lsm(manifest) => events.push(format!(
            "salvage lsm runs={} seq={}",
            manifest.runs(),
            manifest.seq
        )),
    }
    drop(fe); // The wreck is gone; only the snapshot survives.
    verify_storage_recovery(&snapshot, compiled, crashed_at, &mut events)?;

    // Phase 3: rebuild a fresh engine by deterministic replay of the
    // committed prefix, then redo the interrupted op and continue.
    let mut recovered = Frontend::new(chaos_config(kind));
    let mut replies: Vec<Vec<Response>> = Vec::with_capacity(compiled.ops.len());
    for (i, op) in compiled.ops.iter().enumerate() {
        let r = apply_op(&mut recovered, op);
        if i < crashed_at && r != observed[i] {
            return Err(format!(
                "replay divergence at op[{i}] ({}): replayed replies differ \
                 from those observed before the crash",
                op.label()
            ));
        }
        replies.push(r);
    }
    events.push(format!(
        "recovered replayed={} redone=1 continued={}",
        crashed_at,
        compiled.ops.len() - crashed_at - 1
    ));

    let mut outcome = observe(&mut recovered, compiled);
    outcome.replies = replies;
    events.push(format!(
        "post-recovery chain-head={} residuals={:?}",
        hex8(&outcome.chain_head),
        outcome.residuals
    ));
    Ok(CrashRun {
        point,
        hit: nth,
        crashed_at,
        events,
        outcome,
    })
}

/// Storage-level recovery checks on a salvaged snapshot: recovery is
/// deterministic, and permanent erasures that committed before the
/// crash cannot resurrect through it.
fn verify_storage_recovery(
    snapshot: &DurableSnapshot,
    compiled: &CompiledScenario,
    crashed_at: usize,
    events: &mut Vec<String>,
) -> Result<(), String> {
    let recover = |snap: DurableSnapshot| {
        recover_backend(
            snap,
            chaos_config(BackendKind::Heap).heap,
            chaos_config(BackendKind::Lsm).lsm,
            SimClock::commodity(),
            Arc::new(Meter::new()),
        )
    };
    let a = recover(snapshot.clone());
    let b = recover(snapshot.clone());
    for needle in &compiled.erased_needles {
        let (na, nb) = (
            a.scan_physical(needle).total(),
            b.scan_physical(needle).total(),
        );
        if na != nb {
            return Err(format!(
                "storage recovery is nondeterministic: needle {:?} scans {na} vs {nb}",
                String::from_utf8_lossy(needle)
            ));
        }
    }
    let (sa, sb) = (a.stats(), b.stats());
    if sa.live_entries != sb.live_entries || sa.dead_entries != sb.dead_entries {
        return Err(format!(
            "storage recovery is nondeterministic: stats {sa:?} vs {sb:?}"
        ));
    }
    // Erasures fully committed before the crash must hold in the
    // recovered substrate (the interrupted op itself is redone later).
    for (needle, op_idx) in erased_before(compiled, crashed_at) {
        let n = a.scan_physical(&needle).total();
        if n != 0 {
            return Err(format!(
                "resurrection: needle {:?} (erase committed at op[{op_idx}], \
                 crash at op[{crashed_at}]) scans {n} in the recovered substrate",
                String::from_utf8_lossy(&needle)
            ));
        }
    }
    events.push(format!(
        "storage-recovery deterministic live={} dead={}",
        sa.live_entries, sa.dead_entries
    ));
    Ok(())
}

/// Needles of subjects whose *entire* permanent erasure committed
/// strictly before the crashed op, with the op index that finished it.
fn erased_before(compiled: &CompiledScenario, crashed_at: usize) -> Vec<(Vec<u8>, usize)> {
    use datacase_core::grounding::erasure::ErasureInterpretation;
    use datacase_engine::frontend::Request;
    let mut out = Vec::new();
    for needle in &compiled.erased_needles {
        let prefix = {
            // "CHAOS-S000042" identifies the subject; its keys all live
            // in payloads formatted "<needle>-K<key>".
            let mut p = needle.clone();
            p.push(b'-');
            p
        };
        let mut last_erase_op = None;
        for (i, op) in compiled.ops.iter().enumerate() {
            let TraceOp::Submit { batch, .. } = op else {
                continue;
            };
            for req in batch.requests() {
                if let Request::Erase {
                    key,
                    interpretation: ErasureInterpretation::PermanentlyDeleted,
                } = req
                {
                    // Key → subject mapping is the compiler's stride.
                    let subject_tag = format!("CHAOS-S{:06}-", key / 1_000);
                    if subject_tag.as_bytes() == prefix.as_slice() {
                        last_erase_op = Some(i);
                    }
                }
            }
        }
        if let Some(i) = last_erase_op {
            if i < crashed_at {
                out.push((needle.clone(), i));
            }
        }
    }
    out
}

/// First eight bytes of a digest, hex-encoded (event-trace labels).
pub fn hex8(digest: &[u8; 32]) -> String {
    digest[..8].iter().map(|b| format!("{b:02x}")).collect()
}

/// Compare a recovered run to the oracle. Returns the list of breached
/// groundings (empty = indistinguishable).
pub fn compare(recovered: &RunOutcome, oracle: &RunOutcome) -> Vec<String> {
    let mut breaches = Vec::new();
    if recovered.replies != oracle.replies {
        let at = recovered
            .replies
            .iter()
            .zip(&oracle.replies)
            .position(|(a, b)| a != b);
        breaches.push(format!("replies diverge from serial run at op {at:?}"));
    }
    if recovered.chain_head != oracle.chain_head {
        breaches.push(format!(
            "audit chain head {} != serial {}",
            hex8(&recovered.chain_head),
            hex8(&oracle.chain_head)
        ));
    }
    if !recovered.chain_ok {
        breaches.push("audit chain fails verification after recovery".into());
    }
    if recovered.meter != oracle.meter {
        breaches.push("meter counters diverge from serial run".into());
    }
    for (i, &n) in recovered.residuals.iter().enumerate() {
        if n != 0 {
            breaches.push(format!(
                "forensic residuals: erased needle #{i} scans {n} after recovery"
            ));
        }
    }
    if !recovered.report.is_compliant() {
        breaches.push(format!(
            "invariant catalog reports violations after recovery: {:?}",
            recovered.report.violations
        ));
    }
    if recovered.report.outcomes.len() != oracle.report.outcomes.len() {
        breaches.push("invariant outcome counts diverge".into());
    }
    breaches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{compile, Scenario};

    #[test]
    fn serial_run_is_clean_on_both_backends() {
        for kind in BackendKind::ALL {
            let compiled = compile(11, &Scenario::quick());
            let out = run_serial(kind, &compiled);
            assert!(out.chain_ok, "{kind:?}");
            assert!(
                out.report.is_compliant(),
                "{kind:?}: {:?}",
                out.report.violations
            );
            assert!(
                out.residuals.iter().all(|&n| n == 0),
                "{kind:?}: {:?}",
                out.residuals
            );
        }
    }

    #[test]
    fn discovery_counts_stages() {
        let compiled = compile(11, &Scenario::erase_flood());
        let heap = discover_hits(BackendKind::Heap, &compiled);
        assert!(heap[CrashPoint::Plan as usize] > 0);
        assert!(heap[CrashPoint::Decide as usize] > 0);
        assert!(heap[CrashPoint::DestroyKey as usize] > 0);
        assert!(heap[CrashPoint::PurgeUnit as usize] > 0);
        assert!(heap[CrashPoint::WalAppend as usize] > 0);
        let lsm = discover_hits(BackendKind::Lsm, &compiled);
        assert!(lsm[CrashPoint::PurgeUnit as usize] > 0);
    }

    #[test]
    fn crash_mid_destroy_key_recovers_clean() {
        let compiled = compile(11, &Scenario::erase_flood());
        for kind in BackendKind::ALL {
            let oracle = run_serial(kind, &compiled);
            let run = run_with_crash(kind, &compiled, CrashPoint::DestroyKey, 1)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let breaches = compare(&run.outcome, &oracle);
            assert!(breaches.is_empty(), "{kind:?}: {breaches:?}");
        }
    }

    #[test]
    fn unreachable_point_is_an_error_not_a_hang() {
        let compiled = compile(11, &Scenario::quick());
        // The LSM substrate never appends heap WAL records.
        let err = run_with_crash(BackendKind::Lsm, &compiled, CrashPoint::WalAppend, 1);
        assert!(err.is_err());
    }
}
