#![warn(missing_docs)]
//! # datacase-chaos
//!
//! Deterministic chaos harness for the Data-CASE reproduction: seeded
//! compliance scenarios, named crash-point injection, and recovery
//! groundings — the robustness counterpart to the paper's performance
//! figures. The regulation groundings the engine enforces (Table 1
//! erasure semantics, the invariant catalog, audit tamper-evidence) are
//! only worth their proofs if they survive crashes; this crate makes
//! that an executable property.
//!
//! Three layers:
//!
//! * **Scenario DSL** ([`scenario`]) — typed steps (erase-floods,
//!   revocation storms, retention expiry, role/tenant churn) compiled
//!   under a seed into a concrete operation trace. Every run is
//!   replayable from `(seed, scenario)` alone.
//! * **Fault plane** ([`datacase_sim::fault`]) — named crash points
//!   threaded through every layer (`plan`, `decide`, `apply`,
//!   `account`, `wal-append`, `checkpoint`, `destroy-key`,
//!   `purge-unit`, `compaction`), armed per run, zero-cost when off.
//! * **Oracle** ([`runner`]) — after a crash the engine is rebuilt from
//!   durable state and held to a serial run that never crashed:
//!   replies, meter counters, audit-chain head bytes, forensic
//!   residuals, and all invariant-catalog outcomes must match.
//!
//! The headline grounding: crash **mid-erasure** (between run purge and
//! key destruction), recover, re-probe Table 1 — zero forensic
//! residuals for every permanently-erased subject, on the heap and LSM
//! substrates alike.
//!
//! ```
//! use datacase_chaos::{matrix, MatrixOptions};
//!
//! let report = matrix(&MatrixOptions { seed: 7, quick: true });
//! assert!(report.failures.is_empty(), "{:?}", report.failures);
//! ```

pub mod runner;
pub mod scenario;

pub use runner::{
    chaos_config, compare, discover_hits, quiet_crash_panics, run_serial, run_with_crash, CrashRun,
    RunOutcome,
};
pub use scenario::{compile, CompiledScenario, Scenario, Step, TraceOp};

use datacase_sim::fault::CrashPoint;
use datacase_storage::backend::BackendKind;

/// Options for the scenario × backend × crash-point matrix.
#[derive(Clone, Copy, Debug)]
pub struct MatrixOptions {
    /// The seed every scenario is compiled under.
    pub seed: u64,
    /// Quick mode: first hit of each reachable point only; full mode
    /// also crashes at the middle and last hits.
    pub quick: bool,
}

/// One row of the matrix report: a crash survived (or not).
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Substrate the run executed on.
    pub backend: BackendKind,
    /// The armed crash point.
    pub point: CrashPoint,
    /// Which occurrence fired (1-based).
    pub hit: u64,
    /// Trace op the crash interrupted.
    pub crashed_at: usize,
    /// Did the recovered run match the oracle?
    pub ok: bool,
}

/// The matrix report: every crash run, plus human-readable failures.
#[derive(Clone, Debug, Default)]
pub struct MatrixReport {
    /// One row per crash run.
    pub rows: Vec<MatrixRow>,
    /// Descriptions of every breached grounding (empty = all held).
    pub failures: Vec<String>,
}

impl MatrixReport {
    /// Total crash runs executed.
    pub fn runs(&self) -> usize {
        self.rows.len()
    }
}

/// Run the full deterministic chaos matrix: for every built-in scenario
/// and both storage substrates, discover which crash points the run
/// reaches, crash at each, recover, and hold the recovered engine to
/// the serial oracle.
pub fn matrix(options: &MatrixOptions) -> MatrixReport {
    runner::quiet_crash_panics();
    let mut report = MatrixReport::default();
    for scenario in Scenario::all() {
        let compiled = compile(options.seed, &scenario);
        for kind in BackendKind::ALL {
            let oracle = run_serial(kind, &compiled);
            if !oracle.chain_ok || !oracle.report.is_compliant() {
                report.failures.push(format!(
                    "{}/{kind:?}: serial oracle itself is unclean: {:?}",
                    scenario.name, oracle.report.violations
                ));
                continue;
            }
            let counts = discover_hits(kind, &compiled);
            for point in CrashPoint::ALL {
                let total = counts[point as usize];
                if total == 0 {
                    continue; // stage unreachable on this substrate/scenario
                }
                let mut hits = vec![1];
                if !options.quick {
                    for extra in [total / 2, total] {
                        if extra > 1 && !hits.contains(&extra) {
                            hits.push(extra);
                        }
                    }
                }
                for nth in hits {
                    match run_with_crash(kind, &compiled, point, nth) {
                        Ok(run) => {
                            let breaches = compare(&run.outcome, &oracle);
                            let ok = breaches.is_empty();
                            for b in breaches {
                                report.failures.push(format!(
                                    "{}/{kind:?}/{}#{nth}: {b}",
                                    scenario.name,
                                    point.name()
                                ));
                            }
                            report.rows.push(MatrixRow {
                                scenario: compiled.name,
                                backend: kind,
                                point,
                                hit: nth,
                                crashed_at: run.crashed_at,
                                ok,
                            });
                        }
                        Err(e) => report.failures.push(format!(
                            "{}/{kind:?}/{}#{nth}: {e}",
                            scenario.name,
                            point.name()
                        )),
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_every_named_stage() {
        let report = matrix(&MatrixOptions {
            seed: 42,
            quick: true,
        });
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
        // Every crash point must be exercised somewhere in the matrix.
        for point in CrashPoint::ALL {
            assert!(
                report.rows.iter().any(|r| r.point == point),
                "crash point {} never exercised",
                point.name()
            );
        }
        // The headline grounding runs on both substrates.
        for kind in BackendKind::ALL {
            assert!(report
                .rows
                .iter()
                .any(|r| r.backend == kind && r.point == CrashPoint::DestroyKey));
            assert!(report
                .rows
                .iter()
                .any(|r| r.backend == kind && r.point == CrashPoint::PurgeUnit));
        }
        // Compaction crashes are an LSM-only stage.
        assert!(report
            .rows
            .iter()
            .any(|r| r.backend == BackendKind::Lsm && r.point == CrashPoint::Compaction));
        assert!(report.rows.iter().all(|r| r.ok));
    }

    #[test]
    fn crash_runs_are_byte_identical_across_reruns() {
        // Same (seed, scenario, crash point, hit) twice → identical
        // event traces and post-recovery chain heads, on both backends.
        let compiled = compile(99, &Scenario::erase_flood());
        for kind in BackendKind::ALL {
            let a = run_with_crash(kind, &compiled, CrashPoint::PurgeUnit, 1).unwrap();
            let b = run_with_crash(kind, &compiled, CrashPoint::PurgeUnit, 1).unwrap();
            assert_eq!(a.events, b.events, "{kind:?}");
            assert_eq!(a.outcome.chain_head, b.outcome.chain_head, "{kind:?}");
            assert_eq!(a.crashed_at, b.crashed_at, "{kind:?}");
        }
    }
}
