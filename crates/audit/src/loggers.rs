//! The three logging backends of the compliance profiles.

use datacase_core::ids::UnitId;
use datacase_crypto::aes::KeySize;
use datacase_crypto::ctr::AesCtr;
use datacase_sim::{Meter, SimClock};

use crate::record::{HmacChain, LogRecord};

/// A logging backend: persists records, accounts bytes, stays
/// tamper-evident, and supports per-unit redaction.
///
/// Persisting a record is split into two halves so a pipelined engine can
/// keep its simulated cost stream identical to sequential execution:
/// [`charge`](AuditLogger::charge) pays the record's costs at the instant
/// the operation happens (only the payload *length* is needed), and
/// [`append_precharged`](AuditLogger::append_precharged) commits the
/// finished record — possibly later, once deferred payload work (e.g.
/// parallel decryption) has completed — without charging again. The plain
/// [`log`](AuditLogger::log) is the sequential composition of the two.
pub trait AuditLogger: Send {
    /// Backend display name.
    fn name(&self) -> &'static str;

    /// Persist one record (charges log costs): exactly
    /// `charge(&rec, rec.payload.len())` then `append_precharged(rec)`.
    fn log(&mut self, rec: LogRecord) {
        self.charge(&rec, rec.payload.len());
        self.append_precharged(rec);
    }

    /// Charge the simulated costs of persisting `rec` as if its payload
    /// held `payload_len` bytes, without storing anything. `rec.payload`
    /// may still be empty at charge time — only the final length drives
    /// costs (log bytes, AES work), never the content.
    fn charge(&mut self, rec: &LogRecord, payload_len: usize);

    /// Commit a record whose costs were already charged via
    /// [`charge`](AuditLogger::charge). The record joins the store and the
    /// tamper-evidence chain in call order.
    fn append_precharged(&mut self, rec: LogRecord);

    /// The cipher this backend applies to payloads at rest, if any. A
    /// pipelined engine uses it to run the payload transformation itself
    /// — fanned out across apply-stage workers — and commits the result
    /// through [`append_ciphered`](AuditLogger::append_ciphered). The
    /// transformation is deterministic per record
    /// (`iv_from_nonce(rec.seq)`), so offloading it never changes the
    /// stored bytes or the chain.
    fn payload_cipher(&self) -> Option<std::sync::Arc<AesCtr>> {
        None
    }

    /// Commit a record whose payload is **already** in its at-rest form
    /// (transformed with the cipher from
    /// [`payload_cipher`](AuditLogger::payload_cipher) under
    /// `iv_from_nonce(rec.seq)`), costs precharged. Plaintext backends
    /// store payloads as-is, so their default is plain
    /// [`append_precharged`](AuditLogger::append_precharged) — but a
    /// backend that advertises a payload cipher **must** override this,
    /// or the default would apply its cipher a second time on top of the
    /// engine's; the assertion turns that silent double-encryption into
    /// a loud failure.
    fn append_ciphered(&mut self, rec: LogRecord) {
        assert!(
            self.payload_cipher().is_none(),
            "{}: backend advertises a payload cipher but did not override append_ciphered",
            self.name()
        );
        self.append_precharged(rec);
    }

    /// The chain's current head MAC, resealing pending redactions first —
    /// a 32-byte digest two logs can be compared by.
    fn chain_head(&mut self) -> [u8; 32];

    /// Retained records.
    fn records(&self) -> usize;

    /// Retained bytes (Table 2 metadata accounting).
    fn bytes(&self) -> u64;

    /// Redact all records of `unit` (zero payloads, reseal the chain).
    /// Returns how many records were redacted.
    fn redact_unit(&mut self, unit: UnitId) -> usize;

    /// Forensic scan of retained payloads.
    fn scan(&self, needle: &[u8]) -> usize;

    /// Verify the tamper-evidence chain (invariant IX's input). Reseals
    /// any batched redactions first (an audit-time operation).
    fn verify_chain(&mut self) -> bool;

    /// Drop records older than `before` (retention). Returns dropped count.
    fn expire_before(&mut self, before: datacase_sim::time::Ts) -> usize;
}

/// Shared storage + chain logic for the backends.
///
/// Redaction and expiry mark the chain *dirty* instead of resealing
/// immediately: like real audit systems, redactions batch and the chain is
/// resealed once, when the next verification (or audit export) happens.
/// Without this, per-delete redaction would re-MAC the whole log —
/// quadratic work under delete-heavy workloads.
struct LogCore {
    records: Vec<LogRecord>,
    by_unit: std::collections::HashMap<UnitId, Vec<u32>>,
    bytes: u64,
    chain: HmacChain,
    chain_key: Vec<u8>,
    chain_dirty: bool,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl LogCore {
    fn new(key: &[u8], clock: SimClock, meter: std::sync::Arc<Meter>) -> LogCore {
        LogCore {
            records: Vec::new(),
            by_unit: std::collections::HashMap::new(),
            bytes: 0,
            chain: HmacChain::new(key),
            chain_key: key.to_vec(),
            chain_dirty: false,
            clock,
            meter,
        }
    }

    /// Pay for a record of `size` stored bytes (clock + meter + space
    /// accounting) without storing anything yet.
    fn charge(&mut self, size: usize) {
        self.clock.charge(self.clock.model().log_cost(size));
        Meter::bump(&self.meter.log_records, 1);
        Meter::bump(&self.meter.log_bytes, size as u64);
        self.bytes += size as u64;
    }

    /// Store a record whose costs were already charged.
    fn store(&mut self, rec: LogRecord) {
        self.chain.extend(&rec.chain_bytes());
        if let Some(unit) = rec.unit {
            self.by_unit
                .entry(unit)
                .or_default()
                .push(self.records.len() as u32);
        }
        self.records.push(rec);
    }

    fn reseal(&mut self) {
        let mut chain = HmacChain::new(&self.chain_key);
        for r in &self.records {
            chain.extend(&r.chain_bytes());
        }
        self.chain = chain;
    }

    fn redact_unit(&mut self, unit: UnitId) -> usize {
        let Some(positions) = self.by_unit.get(&unit) else {
            return 0;
        };
        let mut n = 0;
        let mut freed = 0u64;
        let mut touched = 0usize;
        for &i in positions {
            let r = &mut self.records[i as usize];
            if !r.redacted {
                freed += r.payload.len() as u64;
                touched += r.size();
                r.payload = Vec::new();
                r.redacted = true;
                n += 1;
            }
        }
        if n > 0 {
            self.bytes = self.bytes.saturating_sub(freed);
            // Charge the indexed redaction (the unit's records only); the
            // chain reseal batches until the next verification.
            self.clock.charge(self.clock.model().log_cost(touched));
            self.chain_dirty = true;
        }
        n
    }

    fn scan(&self, needle: &[u8]) -> usize {
        if needle.is_empty() {
            return 0;
        }
        self.records
            .iter()
            .filter(|r| r.payload.windows(needle.len()).any(|w| w == needle))
            .count()
    }

    fn verify(&mut self) -> bool {
        if self.chain_dirty {
            self.reseal();
            self.chain_dirty = false;
        }
        self.chain.verify(
            &self.chain_key,
            self.records.iter().map(|r| r.chain_bytes()),
        )
    }

    fn head(&mut self) -> [u8; 32] {
        if self.chain_dirty {
            self.reseal();
            self.chain_dirty = false;
        }
        self.chain.head()
    }

    fn expire_before(&mut self, before: datacase_sim::time::Ts) -> usize {
        let before_len = self.records.len();
        self.records.retain(|r| r.at >= before);
        let dropped = before_len - self.records.len();
        if dropped > 0 {
            self.bytes = self.records.iter().map(|r| r.size() as u64).sum();
            // Rebuild the unit index (positions shifted) and reseal lazily.
            self.by_unit.clear();
            for (i, r) in self.records.iter().enumerate() {
                if let Some(unit) = r.unit {
                    self.by_unit.entry(unit).or_default().push(i as u32);
                }
            }
            self.chain_dirty = true;
        }
        dropped
    }
}

/// Row cap for [`CsvRowLogger`]: only this many payload bytes are kept.
const CSV_ROW_CAP: usize = 48;

/// P_Base: CSV row-level response logging. Stores a compact row rendering
/// of the response — cheap and small.
pub struct CsvRowLogger {
    core: LogCore,
}

impl CsvRowLogger {
    /// A fresh CSV logger.
    pub fn new(key: &[u8], clock: SimClock, meter: std::sync::Arc<Meter>) -> CsvRowLogger {
        CsvRowLogger {
            core: LogCore::new(key, clock, meter),
        }
    }
}

impl AuditLogger for CsvRowLogger {
    fn name(&self) -> &'static str {
        "csv row-level (P_Base)"
    }

    fn charge(&mut self, rec: &LogRecord, payload_len: usize) {
        // Row-level: only a truncated response row is stored.
        let stored = payload_len.min(CSV_ROW_CAP);
        self.core.charge(rec.size_with(stored));
    }

    fn append_precharged(&mut self, mut rec: LogRecord) {
        if rec.payload.len() > CSV_ROW_CAP {
            rec.payload.truncate(CSV_ROW_CAP);
        }
        self.core.store(rec);
    }

    fn chain_head(&mut self) -> [u8; 32] {
        self.core.head()
    }

    fn records(&self) -> usize {
        self.core.records.len()
    }
    fn bytes(&self) -> u64 {
        self.core.bytes
    }
    fn redact_unit(&mut self, unit: UnitId) -> usize {
        self.core.redact_unit(unit)
    }
    fn scan(&self, needle: &[u8]) -> usize {
        self.core.scan(needle)
    }
    fn verify_chain(&mut self) -> bool {
        self.core.verify()
    }
    fn expire_before(&mut self, before: datacase_sim::time::Ts) -> usize {
        self.core.expire_before(before)
    }
}

/// The query text [`FullQueryLogger`] synthesises for a record.
fn query_text(rec: &LogRecord) -> String {
    format!(
        "{} unit={} purpose={} entity={};",
        rec.op,
        rec.unit.map(|u| u.0).unwrap_or(0),
        rec.purpose,
        rec.entity
    )
}

/// P_GBench: full query + response logging ("logging all queries and
/// responses (no csv logs)"). Keeps the whole payload plus the query text,
/// so it is strictly chattier than row-level CSV.
pub struct FullQueryLogger {
    core: LogCore,
}

impl FullQueryLogger {
    /// A fresh full-query logger.
    pub fn new(key: &[u8], clock: SimClock, meter: std::sync::Arc<Meter>) -> FullQueryLogger {
        FullQueryLogger {
            core: LogCore::new(key, clock, meter),
        }
    }
}

impl AuditLogger for FullQueryLogger {
    fn name(&self) -> &'static str {
        "full query+response (P_GBench)"
    }

    fn charge(&mut self, rec: &LogRecord, payload_len: usize) {
        // The stored payload is the synthesised query text plus the
        // response payload.
        let query_len = query_text(rec).len();
        self.core
            .charge(40 + rec.op.len() + query_len + payload_len);
    }

    fn append_precharged(&mut self, mut rec: LogRecord) {
        let mut payload = query_text(&rec).into_bytes();
        payload.extend_from_slice(&rec.payload);
        rec.payload = payload;
        self.core.store(rec);
    }

    fn chain_head(&mut self) -> [u8; 32] {
        self.core.head()
    }

    fn records(&self) -> usize {
        self.core.records.len()
    }
    fn bytes(&self) -> u64 {
        self.core.bytes
    }
    fn redact_unit(&mut self, unit: UnitId) -> usize {
        self.core.redact_unit(unit)
    }
    fn scan(&self, needle: &[u8]) -> usize {
        self.core.scan(needle)
    }
    fn verify_chain(&mut self) -> bool {
        self.core.verify()
    }
    fn expire_before(&mut self, before: datacase_sim::time::Ts) -> usize {
        self.core.expire_before(before)
    }
}

/// P_SYS: encrypted logging (AES-128) with per-unit deletion. Payloads are
/// stored as ciphertext; scanning for plaintext finds nothing, and erasing
/// a unit redacts its records.
///
/// The cipher schedule is expanded once at construction and shared via
/// [`Arc`](std::sync::Arc), so a pipelined engine can encrypt record
/// payloads on its apply-stage workers ([`AuditLogger::payload_cipher`] +
/// [`AuditLogger::append_ciphered`]) instead of paying the AES serially
/// at append time.
pub struct EncryptedLogger {
    core: LogCore,
    cipher: std::sync::Arc<AesCtr>,
}

impl EncryptedLogger {
    /// A fresh encrypted logger (AES-128, as P_SYS specifies), deriving
    /// its payload key by hashing `key`. Construction-heavy call sites
    /// (tests, benches constructing many loggers) can pre-expand once and
    /// use [`with_cipher`](EncryptedLogger::with_cipher) instead.
    pub fn new(key: &[u8], clock: SimClock, meter: std::sync::Arc<Meter>) -> EncryptedLogger {
        let digest = datacase_crypto::sha256::Sha256::digest(key);
        Self::with_cipher(
            AesCtr::from_key(KeySize::Aes128, &digest[..16]),
            key,
            clock,
            meter,
        )
    }

    /// A logger reusing an already-expanded payload cipher — no hashing,
    /// no key expansion. `chain_key` seals the tamper-evidence chain
    /// exactly as in [`new`](EncryptedLogger::new).
    pub fn with_cipher(
        cipher: AesCtr,
        chain_key: &[u8],
        clock: SimClock,
        meter: std::sync::Arc<Meter>,
    ) -> EncryptedLogger {
        EncryptedLogger {
            cipher: std::sync::Arc::new(cipher),
            core: LogCore::new(chain_key, clock, meter),
        }
    }

    /// Rebuild the payload cipher under `backend` (see
    /// [`AesCtr::with_backend`]) — per-logger, for A/B bench engines.
    /// Ciphertext bytes are unchanged, only the implementation measured.
    pub fn with_crypto_backend(
        mut self,
        backend: datacase_crypto::CryptoBackend,
    ) -> EncryptedLogger {
        self.cipher = std::sync::Arc::new(self.cipher.as_ref().clone().with_backend(backend));
        self
    }

    /// Back-compat shim: `true` is `CryptoBackend::Reference`, `false`
    /// the default `CryptoBackend::Auto`. Prefer
    /// [`with_crypto_backend`](EncryptedLogger::with_crypto_backend).
    pub fn with_reference_crypto(self, on: bool) -> EncryptedLogger {
        self.with_crypto_backend(if on {
            datacase_crypto::CryptoBackend::Reference
        } else {
            datacase_crypto::CryptoBackend::Auto
        })
    }
}

impl AuditLogger for EncryptedLogger {
    fn name(&self) -> &'static str {
        "encrypted AES-128 (P_SYS)"
    }

    fn charge(&mut self, rec: &LogRecord, payload_len: usize) {
        self.core
            .clock
            .charge(self.core.clock.model().aes_cost(128, payload_len));
        Meter::bump(&self.core.meter.crypto_bytes, payload_len as u64);
        // AES-CTR: ciphertext length equals plaintext length.
        self.core.charge(rec.size_with(payload_len));
    }

    fn append_precharged(&mut self, mut rec: LogRecord) {
        self.cipher
            .apply(AesCtr::iv_from_nonce(rec.seq), &mut rec.payload);
        self.core.store(rec);
    }

    fn payload_cipher(&self) -> Option<std::sync::Arc<AesCtr>> {
        Some(std::sync::Arc::clone(&self.cipher))
    }

    fn append_ciphered(&mut self, rec: LogRecord) {
        // The payload already carries this logger's cipher (applied on
        // the pipeline's workers under iv_from_nonce(seq)); storing it
        // as-is yields byte-identical records to the serial path.
        self.core.store(rec);
    }

    fn chain_head(&mut self) -> [u8; 32] {
        self.core.head()
    }

    fn records(&self) -> usize {
        self.core.records.len()
    }
    fn bytes(&self) -> u64 {
        self.core.bytes
    }
    fn redact_unit(&mut self, unit: UnitId) -> usize {
        self.core.redact_unit(unit)
    }
    fn scan(&self, needle: &[u8]) -> usize {
        self.core.scan(needle)
    }
    fn verify_chain(&mut self) -> bool {
        self.core.verify()
    }
    fn expire_before(&mut self, before: datacase_sim::time::Ts) -> usize {
        self.core.expire_before(before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_core::ids::EntityId;
    use datacase_core::purpose::well_known as wk;
    use datacase_sim::time::Ts;
    use std::sync::Arc;

    fn rec(seq: u64, unit: u64, payload: &[u8]) -> LogRecord {
        LogRecord {
            seq,
            at: Ts::from_secs(seq),
            unit: Some(UnitId(unit)),
            entity: EntityId(1),
            purpose: wk::billing(),
            op: "read".into(),
            payload: payload.to_vec(),
            redacted: false,
        }
    }

    fn backends() -> Vec<Box<dyn AuditLogger>> {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        vec![
            Box::new(CsvRowLogger::new(b"k", clock.clone(), meter.clone())),
            Box::new(FullQueryLogger::new(b"k", clock.clone(), meter.clone())),
            Box::new(EncryptedLogger::new(b"k", clock, meter)),
        ]
    }

    #[test]
    fn all_backends_log_and_verify() {
        for mut b in backends() {
            b.log(rec(1, 1, b"payload-a"));
            b.log(rec(2, 2, b"payload-b"));
            assert_eq!(b.records(), 2, "{}", b.name());
            assert!(b.bytes() > 0);
            assert!(b.verify_chain(), "{}", b.name());
        }
    }

    #[test]
    fn full_query_logs_more_bytes_than_csv() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut csv = CsvRowLogger::new(b"k", clock.clone(), meter.clone());
        let mut full = FullQueryLogger::new(b"k", clock, meter);
        let payload = vec![7u8; 100];
        csv.log(rec(1, 1, &payload));
        full.log(rec(1, 1, &payload));
        assert!(
            full.bytes() > csv.bytes(),
            "full {} vs csv {}",
            full.bytes(),
            csv.bytes()
        );
    }

    #[test]
    fn encrypted_logger_hides_plaintext() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut enc = EncryptedLogger::new(b"k", clock.clone(), meter.clone());
        let mut csv = CsvRowLogger::new(b"k", clock, meter);
        enc.log(rec(1, 1, b"SECRET-PII-IN-LOG"));
        csv.log(rec(1, 1, b"SECRET-PII-IN-LOG"));
        assert_eq!(enc.scan(b"SECRET-PII"), 0, "ciphertext at rest");
        assert_eq!(csv.scan(b"SECRET-PII"), 1, "csv keeps plaintext");
    }

    #[test]
    fn redact_unit_blanks_and_reseals() {
        for mut b in backends() {
            b.log(rec(1, 7, b"unit7-first"));
            b.log(rec(2, 8, b"unit8-data"));
            b.log(rec(3, 7, b"unit7-second"));
            let n = b.redact_unit(UnitId(7));
            assert_eq!(n, 2, "{}", b.name());
            assert_eq!(b.scan(b"unit7"), 0, "{}", b.name());
            assert!(b.verify_chain(), "chain resealed: {}", b.name());
            assert_eq!(b.records(), 3, "records preserved, payloads blanked");
        }
    }

    #[test]
    fn expire_before_drops_old_records() {
        for mut b in backends() {
            b.log(rec(1, 1, b"old"));
            b.log(rec(100, 2, b"new"));
            let dropped = b.expire_before(Ts::from_secs(50));
            assert_eq!(dropped, 1, "{}", b.name());
            assert_eq!(b.records(), 1);
            assert!(b.verify_chain(), "{}", b.name());
        }
    }

    #[test]
    fn csv_truncates_row_payloads() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut csv = CsvRowLogger::new(b"k", clock, meter);
        csv.log(rec(1, 1, &vec![9u8; 500]));
        assert!(csv.bytes() < 200, "row-level keeps it compact");
    }

    #[test]
    fn charge_then_append_equals_log() {
        // The split halves must compose to exactly what log() does —
        // same bytes, same meter counts, same clock charges, same chain.
        for (mut split, mut whole) in backends().into_iter().zip(backends()) {
            let r = rec(1, 1, b"some-payload-bytes");
            split.charge(&r, r.payload.len());
            split.append_precharged(r.clone());
            whole.log(r);
            assert_eq!(split.records(), whole.records(), "{}", split.name());
            assert_eq!(split.bytes(), whole.bytes(), "{}", split.name());
            assert_eq!(split.chain_head(), whole.chain_head(), "{}", split.name());
        }
    }

    #[test]
    fn with_cipher_matches_new() {
        // The cheap constructor must be observationally identical to the
        // hashing one: same ciphertext at rest, same chain.
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let digest = datacase_crypto::sha256::Sha256::digest(b"k");
        let cipher = AesCtr::from_key(KeySize::Aes128, &digest[..16]);
        let mut cheap = EncryptedLogger::with_cipher(cipher, b"k", clock.clone(), meter.clone());
        let mut hashed = EncryptedLogger::new(b"k", clock, meter);
        cheap.log(rec(1, 1, b"payload"));
        hashed.log(rec(1, 1, b"payload"));
        assert_eq!(cheap.chain_head(), hashed.chain_head());
        assert_eq!(cheap.bytes(), hashed.bytes());
    }

    #[test]
    fn offloaded_encryption_is_byte_identical_to_append_precharged() {
        // What the pipelined engine does: charge, encrypt the payload
        // itself with payload_cipher() under iv_from_nonce(seq), then
        // append_ciphered. The stored records and chain must match the
        // serial append_precharged path exactly.
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut serial = EncryptedLogger::new(b"k", clock.clone(), meter.clone());
        let mut offload = EncryptedLogger::new(b"k", clock, meter);
        assert!(
            CsvRowLogger::new(b"k", SimClock::commodity(), Arc::new(Meter::new()))
                .payload_cipher()
                .is_none(),
            "plaintext backends advertise no payload cipher"
        );
        for seq in 1..=3u64 {
            let r = rec(seq, seq, format!("payload-{seq}").as_bytes());
            serial.charge(&r, r.payload.len());
            serial.append_precharged(r.clone());

            offload.charge(&r, r.payload.len());
            let cipher = offload.payload_cipher().expect("encrypted backend");
            let mut r2 = r.clone();
            cipher.apply(AesCtr::iv_from_nonce(r2.seq), &mut r2.payload);
            offload.append_ciphered(r2);
        }
        assert_eq!(serial.chain_head(), offload.chain_head());
        assert_eq!(serial.bytes(), offload.bytes());
        assert_eq!(offload.scan(b"payload"), 0, "still ciphertext at rest");
    }

    #[test]
    fn chain_head_distinguishes_diverging_logs() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut a = CsvRowLogger::new(b"k", clock.clone(), meter.clone());
        let mut b = CsvRowLogger::new(b"k", clock, meter);
        a.log(rec(1, 1, b"same"));
        b.log(rec(1, 1, b"same"));
        assert_eq!(a.chain_head(), b.chain_head());
        b.log(rec(2, 1, b"extra"));
        assert_ne!(a.chain_head(), b.chain_head());
    }

    #[test]
    fn logging_charges_cost_and_meter() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut b = CsvRowLogger::new(b"k", clock.clone(), meter.clone());
        let t0 = clock.now();
        b.log(rec(1, 1, b"x"));
        assert!(clock.now() > t0);
        assert_eq!(meter.snapshot().log_records, 1);
    }
}
