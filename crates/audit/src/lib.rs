#![warn(missing_docs)]
//! # datacase-audit
//!
//! Record keeping and accountability substrates (paper Figure 1's
//! invariants VII "keep records of all data-operations" and IX
//! "demonstrate compliance"), in the three flavours the compliance
//! profiles use (§4.2):
//!
//! * [`loggers::CsvRowLogger`] — P_Base: native CSV row-level logging of
//!   query responses;
//! * [`loggers::FullQueryLogger`] — P_GBench: logs *all queries and
//!   responses* (more bytes per operation);
//! * [`loggers::EncryptedLogger`] — P_SYS: AES-128-encrypted records, and
//!   support for deleting a unit's log records on erasure.
//!
//! All three maintain an HMAC hash chain ([`record::HmacChain`]) making the
//! log tamper-evident — the evidence invariant IX asks for. [`retention`]
//! bounds how long log segments live (logs are themselves a retention
//! hazard), and [`evidence`] extracts per-unit audit bundles.

pub mod evidence;
pub mod loggers;
pub mod record;
pub mod retention;

pub use evidence::EvidenceBundle;
pub use loggers::{AuditLogger, CsvRowLogger, EncryptedLogger, FullQueryLogger};
pub use record::{HmacChain, LogRecord};
pub use retention::RetentionManager;
