//! Log retention: logs are evidence *and* a retention hazard — "logs may
//! be temporary or kept for a long duration to not only recover data but
//! also to support the rights of data-subjects" (paper §3.2). The manager
//! bounds log age, reconciling invariant VII (keep records) with V (do not
//! store eternally).

use datacase_sim::time::{Dur, Ts};

use crate::loggers::AuditLogger;

/// Applies a time-to-live to a logger's records.
#[derive(Clone, Copy, Debug)]
pub struct RetentionManager {
    /// Maximum record age.
    pub ttl: Dur,
}

impl RetentionManager {
    /// A manager with the given TTL.
    pub fn new(ttl: Dur) -> RetentionManager {
        RetentionManager { ttl }
    }

    /// Expire records older than `now - ttl`. Returns dropped count.
    pub fn enforce(&self, logger: &mut dyn AuditLogger, now: Ts) -> usize {
        let cutoff = Ts(now.0.saturating_sub(self.ttl.0));
        logger.expire_before(cutoff)
    }

    /// Would a record stamped `at` still be retained at `now`?
    pub fn retained(&self, at: Ts, now: Ts) -> bool {
        now.since(at) <= self.ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loggers::CsvRowLogger;
    use crate::record::LogRecord;
    use datacase_core::ids::{EntityId, UnitId};
    use datacase_core::purpose::well_known as wk;
    use datacase_sim::{Meter, SimClock};
    use std::sync::Arc;

    fn rec(at_secs: u64) -> LogRecord {
        LogRecord {
            seq: at_secs,
            at: Ts::from_secs(at_secs),
            unit: Some(UnitId(1)),
            entity: EntityId(1),
            purpose: wk::billing(),
            op: "read".into(),
            payload: b"x".to_vec(),
            redacted: false,
        }
    }

    #[test]
    fn enforce_drops_expired() {
        let mut logger = CsvRowLogger::new(b"k", SimClock::commodity(), Arc::new(Meter::new()));
        logger.log(rec(10));
        logger.log(rec(100));
        let mgr = RetentionManager::new(Dur::from_secs(50));
        let dropped = mgr.enforce(&mut logger, Ts::from_secs(120));
        assert_eq!(dropped, 1);
        assert_eq!(logger.records(), 1);
    }

    #[test]
    fn retained_predicate() {
        let mgr = RetentionManager::new(Dur::from_secs(100));
        assert!(mgr.retained(Ts::from_secs(50), Ts::from_secs(100)));
        assert!(!mgr.retained(Ts::from_secs(50), Ts::from_secs(151)));
    }

    #[test]
    fn nothing_expires_within_ttl() {
        let mut logger = CsvRowLogger::new(b"k", SimClock::commodity(), Arc::new(Meter::new()));
        logger.log(rec(10));
        let mgr = RetentionManager::new(Dur::from_secs(1000));
        assert_eq!(mgr.enforce(&mut logger, Ts::from_secs(100)), 0);
    }
}
