//! Log records and the tamper-evidence chain.

use datacase_core::ids::{EntityId, UnitId};
use datacase_core::purpose::PurposeId;
use datacase_crypto::hmac::hmac_sha256;
use datacase_sim::time::Ts;

/// One audit log record (the persisted mirror of an action-history tuple,
/// possibly with response content).
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// Sequence number within the log.
    pub seq: u64,
    /// When the operation happened.
    pub at: Ts,
    /// The unit involved, if unit-specific.
    pub unit: Option<UnitId>,
    /// The acting entity.
    pub entity: EntityId,
    /// The claimed purpose.
    pub purpose: PurposeId,
    /// Operation label ("read", "update-meta", the SQL-ish text …).
    pub op: String,
    /// Logged content (response row, query text — backend-dependent).
    pub payload: Vec<u8>,
    /// Whether the payload was redacted after the fact (unit erasure).
    pub redacted: bool,
}

impl LogRecord {
    /// Serialized size estimate (for space accounting and log costs).
    pub fn size(&self) -> usize {
        self.size_with(self.payload.len())
    }

    /// [`size`](LogRecord::size) as if the payload held `payload_len`
    /// bytes — what loggers charge before a deferred payload is filled
    /// in. Keep in lockstep with [`size`](LogRecord::size).
    pub fn size_with(&self, payload_len: usize) -> usize {
        40 + self.op.len() + payload_len
    }

    /// Canonical bytes fed to the HMAC chain.
    pub fn chain_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.at.0.to_le_bytes());
        out.extend_from_slice(&self.unit.map(|u| u.0).unwrap_or(u64::MAX).to_le_bytes());
        out.extend_from_slice(&self.entity.0.to_le_bytes());
        out.extend_from_slice(&(self.purpose.name().len() as u32).to_le_bytes());
        out.extend_from_slice(self.purpose.name().as_bytes());
        out.extend_from_slice(self.op.as_bytes());
        out.push(self.redacted as u8);
        out.extend_from_slice(&self.payload);
        out
    }
}

/// An HMAC hash chain over log records: `mac_i = HMAC(key, mac_{i-1} ‖
/// bytes_i)`. An auditor holding the key can verify that no record was
/// altered or dropped — the "demonstrable compliance" evidence of
/// invariant IX.
#[derive(Clone, Debug)]
pub struct HmacChain {
    key: [u8; 32],
    head: [u8; 32],
    links: u64,
}

impl HmacChain {
    /// A chain sealed under `key`.
    pub fn new(key: &[u8]) -> HmacChain {
        HmacChain {
            key: datacase_crypto::sha256::Sha256::digest(key),
            head: [0u8; 32],
            links: 0,
        }
    }

    /// Extend the chain with a record's bytes; returns the new head MAC.
    pub fn extend(&mut self, bytes: &[u8]) -> [u8; 32] {
        let mut input = self.head.to_vec();
        input.extend_from_slice(bytes);
        self.head = hmac_sha256(&self.key, &input);
        self.links += 1;
        self.head
    }

    /// The current head MAC.
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Number of links.
    pub fn links(&self) -> u64 {
        self.links
    }

    /// Recompute the chain over `records` and compare with `self`'s head
    /// (auditor-side verification).
    pub fn verify(&self, key: &[u8], records: impl Iterator<Item = Vec<u8>>) -> bool {
        let mut fresh = HmacChain::new(key);
        for bytes in records {
            fresh.extend(&bytes);
        }
        fresh.links == self.links && fresh.head == self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_core::purpose::well_known as wk;

    fn rec(seq: u64, payload: &[u8]) -> LogRecord {
        LogRecord {
            seq,
            at: Ts::from_secs(seq),
            unit: Some(UnitId(1)),
            entity: EntityId(2),
            purpose: wk::billing(),
            op: "read".into(),
            payload: payload.to_vec(),
            redacted: false,
        }
    }

    #[test]
    fn chain_verifies_untampered_log() {
        let mut chain = HmacChain::new(b"audit-key");
        let records = vec![rec(1, b"a"), rec(2, b"b"), rec(3, b"c")];
        for r in &records {
            chain.extend(&r.chain_bytes());
        }
        assert!(chain.verify(b"audit-key", records.iter().map(|r| r.chain_bytes())));
    }

    #[test]
    fn chain_detects_tampering() {
        let mut chain = HmacChain::new(b"audit-key");
        let mut records = vec![rec(1, b"a"), rec(2, b"b")];
        for r in &records {
            chain.extend(&r.chain_bytes());
        }
        records[0].payload = b"ALTERED".to_vec();
        assert!(!chain.verify(b"audit-key", records.iter().map(|r| r.chain_bytes())));
    }

    #[test]
    fn chain_detects_dropped_record() {
        let mut chain = HmacChain::new(b"audit-key");
        let records = vec![rec(1, b"a"), rec(2, b"b")];
        for r in &records {
            chain.extend(&r.chain_bytes());
        }
        assert!(!chain.verify(b"audit-key", records[..1].iter().map(|r| r.chain_bytes())));
    }

    #[test]
    fn chain_rejects_wrong_key() {
        let mut chain = HmacChain::new(b"audit-key");
        let records = [rec(1, b"a")];
        chain.extend(&records[0].chain_bytes());
        assert!(!chain.verify(b"other-key", records.iter().map(|r| r.chain_bytes())));
    }

    #[test]
    fn record_size_counts_parts() {
        let r = rec(1, b"12345");
        assert_eq!(r.size(), 40 + 4 + 5);
    }

    #[test]
    fn redaction_changes_chain_bytes() {
        let a = rec(1, b"x");
        let mut b = a.clone();
        b.redacted = true;
        assert_ne!(a.chain_bytes(), b.chain_bytes());
    }
}
