//! Compliance-evidence extraction: what a controller hands an auditor or
//! supervisory authority (paper §4.4 "Regulatory Agencies" and invariant
//! IX "demonstrate compliance").

use datacase_core::ids::UnitId;

use crate::loggers::AuditLogger;

/// A per-unit audit bundle: everything the log retains about one unit,
/// plus the integrity verdict of the whole log.
#[derive(Clone, Debug)]
pub struct EvidenceBundle {
    /// The unit audited.
    pub unit: UnitId,
    /// Number of retained records mentioning the unit.
    pub record_count: usize,
    /// Of those, how many were redacted (erased on request).
    pub redacted_count: usize,
    /// Whether the log's tamper-evidence chain verified.
    pub chain_valid: bool,
    /// The logging backend's name.
    pub backend: &'static str,
}

impl EvidenceBundle {
    /// Can this bundle demonstrate compliance (integrity intact and the
    /// unit's operations on record)?
    pub fn demonstrates_compliance(&self) -> bool {
        self.chain_valid && self.record_count > 0
    }
}

/// Extract the evidence bundle for one unit. The logger only exposes
/// aggregate scans, so the count comes from the unit-redaction API's dual:
/// loggers report per-unit records through `records_of`.
pub fn bundle_for(
    logger: &mut dyn AuditLogger,
    unit: UnitId,
    record_count: usize,
    redacted_count: usize,
) -> EvidenceBundle {
    EvidenceBundle {
        unit,
        record_count,
        redacted_count,
        chain_valid: logger.verify_chain(),
        backend: logger.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loggers::CsvRowLogger;
    use crate::record::LogRecord;
    use datacase_core::ids::EntityId;
    use datacase_core::purpose::well_known as wk;
    use datacase_sim::time::Ts;
    use datacase_sim::{Meter, SimClock};
    use std::sync::Arc;

    #[test]
    fn bundle_reflects_log_state() {
        let mut logger = CsvRowLogger::new(b"k", SimClock::commodity(), Arc::new(Meter::new()));
        logger.log(LogRecord {
            seq: 1,
            at: Ts::from_secs(1),
            unit: Some(UnitId(7)),
            entity: EntityId(1),
            purpose: wk::billing(),
            op: "read".into(),
            payload: b"x".to_vec(),
            redacted: false,
        });
        let b = bundle_for(&mut logger, UnitId(7), 1, 0);
        assert!(b.demonstrates_compliance());
        assert_eq!(b.unit, UnitId(7));
        assert!(b.backend.contains("csv"));
    }

    #[test]
    fn empty_record_set_cannot_demonstrate() {
        let mut logger = CsvRowLogger::new(b"k", SimClock::commodity(), Arc::new(Meter::new()));
        let b = bundle_for(&mut logger, UnitId(7), 0, 0);
        assert!(!b.demonstrates_compliance());
    }
}
