//! Data units `X = (S, O, V, P)` and their categories (paper §2.1).

use datacase_sim::time::Ts;

use crate::grounding::erasure::ErasureInterpretation;
use crate::ids::{EntityId, UnitId};
use crate::policy::{Policy, PolicySet};
use crate::value::{Value, VersionedValue};

/// Where a unit's data came from (`O` aspect).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Origin {
    /// Collected directly from the data-subject.
    Subject(EntityId),
    /// Collected by a device/sensor (the camera example; Mall readings).
    Device(String),
    /// Derived from other units.
    Derived(Vec<UnitId>),
    /// Imported from an external source.
    External(String),
}

/// The three categories of data units (paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Category {
    /// Directly or indirectly collected data.
    Base,
    /// Data obtained from base data.
    Derived,
    /// Data about data: subjects, policies, logs.
    Metadata,
}

/// The erasure lifecycle state of a unit in the *abstract model*.
///
/// This records what the system claims to have done; the storage layer's
/// forensic scanner independently verifies the physical reality, and the
/// checker compares the two (Table 1's empirical columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErasureStatus {
    /// Live data.
    Active,
    /// Hidden from subjects but recoverable (logical delete / tombstone).
    ReversiblyInaccessible {
        /// When inaccessibility took effect.
        since: Ts,
    },
    /// The unit and its copies physically erased.
    Deleted {
        /// When deletion completed.
        since: Ts,
    },
    /// Deleted, and identifying dependent data deleted too.
    StronglyDeleted {
        /// When strong deletion completed.
        since: Ts,
    },
    /// Strongly deleted plus drive sanitisation (or crypto-erasure).
    PermanentlyDeleted {
        /// When permanent deletion completed.
        since: Ts,
    },
}

impl ErasureStatus {
    /// Restrictiveness rank: Active=0 … PermanentlyDeleted=4. Mirrors the
    /// ordering of interpretations (strong delete ⇒ delete, paper §3.1).
    pub fn rank(self) -> u8 {
        match self {
            ErasureStatus::Active => 0,
            ErasureStatus::ReversiblyInaccessible { .. } => 1,
            ErasureStatus::Deleted { .. } => 2,
            ErasureStatus::StronglyDeleted { .. } => 3,
            ErasureStatus::PermanentlyDeleted { .. } => 4,
        }
    }

    /// Does this status satisfy (at least) the given interpretation?
    pub fn satisfies(self, interp: ErasureInterpretation) -> bool {
        self.rank() >= interp.rank()
    }

    /// The time the status took effect (None while active).
    pub fn since(self) -> Option<Ts> {
        match self {
            ErasureStatus::Active => None,
            ErasureStatus::ReversiblyInaccessible { since }
            | ErasureStatus::Deleted { since }
            | ErasureStatus::StronglyDeleted { since }
            | ErasureStatus::PermanentlyDeleted { since } => Some(since),
        }
    }

    /// Has *some* form of erasure been applied?
    pub fn is_erased(self) -> bool {
        self.rank() > 0
    }
}

/// A data unit: `X = (S, O, V, P)` plus bookkeeping aspects.
#[derive(Clone, Debug)]
pub struct DataUnit {
    /// Identifier.
    pub id: UnitId,
    /// The data-subjects identified by the unit (`S`). Base units have one;
    /// derived units aggregate the subjects of their inputs.
    pub subjects: Vec<EntityId>,
    /// Where it was collected from (`O`).
    pub origin: Origin,
    /// Time-versioned values (`V`).
    pub value: VersionedValue,
    /// Policies and their evolution (`P`).
    pub policies: PolicySet,
    /// Base / derived / metadata.
    pub category: Category,
    /// Abstract erasure lifecycle state.
    pub erasure: ErasureStatus,
    /// Whether the unit is stored encrypted at rest (invariant VI evidence).
    pub encrypted_at_rest: bool,
    /// Collection time.
    pub created_at: Ts,
}

/// The state of a unit at a given time: `X(t) = (S(t), O(t), V(t), P(t))`
/// (paper §2.1). A borrowed, point-in-time view.
#[derive(Clone, Debug)]
pub struct UnitState<'a> {
    /// Subjects at `t` (constant for base units).
    pub subjects: &'a [EntityId],
    /// Origin (constant).
    pub origin: &'a Origin,
    /// `V(t)`.
    pub value: Option<&'a Value>,
    /// `P(t)`.
    pub policies: Vec<Policy>,
}

impl DataUnit {
    /// A freshly collected base unit with a single subject.
    pub fn base(id: UnitId, subject: EntityId, origin: Origin, value: Value, now: Ts) -> DataUnit {
        DataUnit {
            id,
            subjects: vec![subject],
            origin,
            value: VersionedValue::initial(now, value),
            policies: PolicySet::new(),
            category: Category::Base,
            erasure: ErasureStatus::Active,
            encrypted_at_rest: false,
            created_at: now,
        }
    }

    /// A derived unit aggregating subjects/origins of its inputs.
    pub fn derived(
        id: UnitId,
        subjects: Vec<EntityId>,
        inputs: Vec<UnitId>,
        value: Value,
        policies: PolicySet,
        now: Ts,
    ) -> DataUnit {
        DataUnit {
            id,
            subjects,
            origin: Origin::Derived(inputs),
            value: VersionedValue::initial(now, value),
            policies,
            category: Category::Derived,
            erasure: ErasureStatus::Active,
            encrypted_at_rest: false,
            created_at: now,
        }
    }

    /// `X(t)`: the unit's state at time `t`.
    pub fn state_at(&self, t: Ts) -> UnitState<'_> {
        UnitState {
            subjects: &self.subjects,
            origin: &self.origin,
            value: self.value.at(t),
            policies: self.policies.active_at(t),
        }
    }

    /// Whether the unit identifies `subject`.
    pub fn identifies(&self, subject: EntityId) -> bool {
        self.subjects.contains(&subject)
    }

    /// Is the unit personal data (identifies at least one subject)?
    pub fn is_personal(&self) -> bool {
        !self.subjects.is_empty() && self.category != Category::Metadata
    }

    /// Transition the erasure status; the new status must be at least as
    /// restrictive as the old one (erasure never regresses, Figure 3).
    ///
    /// The single exception is `Restore`: a reversibly-inaccessible unit
    /// may return to `Active`, which is exactly what makes that
    /// interpretation *invertible* in Table 1. Use [`DataUnit::restore`].
    pub fn escalate_erasure(&mut self, to: ErasureStatus) {
        assert!(
            to.rank() >= self.erasure.rank(),
            "erasure cannot regress: {:?} -> {:?}",
            self.erasure,
            to
        );
        self.erasure = to;
    }

    /// Restore a reversibly-inaccessible unit to `Active`. Returns false
    /// (and does nothing) for any other status — deletion is not invertible.
    pub fn restore(&mut self) -> bool {
        if matches!(self.erasure, ErasureStatus::ReversiblyInaccessible { .. }) {
            self.erasure = ErasureStatus::Active;
            true
        } else {
            false
        }
    }

    /// Erase the value content at `now` (model-level; physical erasure is
    /// the storage layer's job).
    pub fn blank_value(&mut self, now: Ts) {
        self.value.write(now, Value::Erased);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purpose::well_known as wk;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn mk_unit() -> DataUnit {
        DataUnit::base(
            UnitId(1),
            EntityId(7),
            Origin::Subject(EntityId(7)),
            "cc-4242".into(),
            t(10),
        )
    }

    #[test]
    fn state_at_reflects_versions_and_policies() {
        let mut u = mk_unit();
        u.policies.grant(
            Policy::new(wk::billing(), EntityId(1), t(10), t(100)),
            t(10),
        );
        u.value.write(t(50), "cc-5353".into());
        let s1 = u.state_at(t(20));
        assert_eq!(s1.value, Some(&Value::Text("cc-4242".into())));
        assert_eq!(s1.policies.len(), 1);
        let s2 = u.state_at(t(60));
        assert_eq!(s2.value, Some(&Value::Text("cc-5353".into())));
        let s3 = u.state_at(t(200));
        assert!(s3.policies.is_empty());
    }

    #[test]
    fn erasure_ranks_are_ordered() {
        assert!(ErasureStatus::Active.rank() < ErasureStatus::Deleted { since: t(0) }.rank());
        assert!(
            ErasureStatus::Deleted { since: t(0) }.rank()
                < ErasureStatus::StronglyDeleted { since: t(0) }.rank()
        );
        assert!(
            ErasureStatus::StronglyDeleted { since: t(0) }.rank()
                < ErasureStatus::PermanentlyDeleted { since: t(0) }.rank()
        );
    }

    #[test]
    fn strong_delete_satisfies_delete() {
        let s = ErasureStatus::StronglyDeleted { since: t(5) };
        assert!(s.satisfies(ErasureInterpretation::Deleted));
        assert!(s.satisfies(ErasureInterpretation::ReversiblyInaccessible));
        assert!(!s.satisfies(ErasureInterpretation::PermanentlyDeleted));
        assert_eq!(s.since(), Some(t(5)));
    }

    #[test]
    fn escalation_works_and_regression_panics() {
        let mut u = mk_unit();
        u.escalate_erasure(ErasureStatus::ReversiblyInaccessible { since: t(20) });
        u.escalate_erasure(ErasureStatus::Deleted { since: t(30) });
        assert!(u.erasure.is_erased());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            u.escalate_erasure(ErasureStatus::ReversiblyInaccessible { since: t(40) });
        }));
        assert!(r.is_err(), "regression must panic");
    }

    #[test]
    fn restore_only_from_reversible() {
        let mut u = mk_unit();
        u.escalate_erasure(ErasureStatus::ReversiblyInaccessible { since: t(20) });
        assert!(u.restore());
        assert_eq!(u.erasure, ErasureStatus::Active);
        u.escalate_erasure(ErasureStatus::Deleted { since: t(30) });
        assert!(!u.restore());
        assert!(u.erasure.is_erased());
    }

    #[test]
    fn derived_units_aggregate_subjects() {
        let d = DataUnit::derived(
            UnitId(5),
            vec![EntityId(1), EntityId(2)],
            vec![UnitId(1), UnitId(2)],
            Value::Number(42),
            PolicySet::new(),
            t(0),
        );
        assert!(d.identifies(EntityId(1)));
        assert!(d.identifies(EntityId(2)));
        assert!(!d.identifies(EntityId(3)));
        assert_eq!(d.category, Category::Derived);
        assert!(matches!(d.origin, Origin::Derived(ref v) if v.len() == 2));
    }

    #[test]
    fn metadata_units_are_not_personal() {
        let mut u = mk_unit();
        u.category = Category::Metadata;
        assert!(!u.is_personal());
    }

    #[test]
    fn blank_value_appends_erased_version() {
        let mut u = mk_unit();
        u.blank_value(t(99));
        assert!(u.value.current().unwrap().is_erased());
        // History of earlier versions is still in the model (the physical
        // engines decide what remains on disk).
        assert_eq!(u.value.len(), 2);
    }
}
