//! Actions: operations that read or change the state of data units
//! (paper §2.1 — "any operation that changes the state of data units",
//! plus reads, which regulations also constrain).

use crate::grounding::erasure::ErasureInterpretation;
use crate::ids::{EntityId, UnitId};

/// The kind of an action, used for purpose groundings and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ActionKind {
    /// Creation of a data unit (collection).
    Create,
    /// Read of the unit's value.
    Read,
    /// Update of the unit's value.
    UpdateValue,
    /// Read of metadata aspects (policies, subject, origin).
    ReadMeta,
    /// Update of metadata aspects other than policies.
    UpdateMeta,
    /// Change to the unit's policy set (consent granted/withdrawn).
    UpdatePolicy,
    /// Derivation of a new unit from this one.
    Derive,
    /// Disclosure of the unit to another entity.
    Share,
    /// Erasure under some interpretation.
    Erase,
    /// Restoration of a reversibly-inaccessible unit.
    Restore,
    /// Drive-sanitisation pass over the unit's residuals.
    Sanitize,
    /// Notification sent to the data-subject (breach, policy change).
    Notify,
    /// A pre-processing assessment (PIA, G35).
    Assess,
}

impl ActionKind {
    /// Whether the action mutates the unit's state (vs only reading it).
    pub fn is_mutation(self) -> bool {
        !matches!(self, ActionKind::Read | ActionKind::ReadMeta)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ActionKind::Create => "create",
            ActionKind::Read => "read",
            ActionKind::UpdateValue => "update-value",
            ActionKind::ReadMeta => "read-meta",
            ActionKind::UpdateMeta => "update-meta",
            ActionKind::UpdatePolicy => "update-policy",
            ActionKind::Derive => "derive",
            ActionKind::Share => "share",
            ActionKind::Erase => "erase",
            ActionKind::Restore => "restore",
            ActionKind::Sanitize => "sanitize",
            ActionKind::Notify => "notify",
            ActionKind::Assess => "assess",
        }
    }
}

/// A concrete action `τ` on a data unit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Collect/create the unit.
    Create,
    /// Read the unit's value.
    Read,
    /// Overwrite the unit's value.
    UpdateValue,
    /// Read metadata (policies/subject/origin).
    ReadMeta,
    /// Update non-policy metadata.
    UpdateMeta,
    /// Grant or revoke a policy.
    UpdatePolicy,
    /// Derive `output` from this unit (and possibly others).
    Derive {
        /// The unit produced by the derivation.
        output: UnitId,
    },
    /// Disclose the unit to `with`.
    Share {
        /// Recipient entity.
        with: EntityId,
    },
    /// Erase under the given interpretation.
    Erase(ErasureInterpretation),
    /// Restore a reversibly-inaccessible unit.
    Restore,
    /// Run a sanitisation pass over residuals of the unit.
    Sanitize,
    /// Notify the data-subject (GDPR Arts. 19/33/34).
    Notify,
    /// Record a pre-processing assessment (GDPR Art. 35).
    Assess,
}

impl Action {
    /// The action's kind.
    pub fn kind(&self) -> ActionKind {
        match self {
            Action::Create => ActionKind::Create,
            Action::Read => ActionKind::Read,
            Action::UpdateValue => ActionKind::UpdateValue,
            Action::ReadMeta => ActionKind::ReadMeta,
            Action::UpdateMeta => ActionKind::UpdateMeta,
            Action::UpdatePolicy => ActionKind::UpdatePolicy,
            Action::Derive { .. } => ActionKind::Derive,
            Action::Share { .. } => ActionKind::Share,
            Action::Erase(_) => ActionKind::Erase,
            Action::Restore => ActionKind::Restore,
            Action::Sanitize => ActionKind::Sanitize,
            Action::Notify => ActionKind::Notify,
            Action::Assess => ActionKind::Assess,
        }
    }

    /// Whether the action mutates unit state.
    pub fn is_mutation(&self) -> bool {
        self.kind().is_mutation()
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Derive { output } => write!(f, "derive->{output}"),
            Action::Share { with } => write!(f, "share->{with}"),
            Action::Erase(i) => write!(f, "erase[{i}]"),
            other => f.write_str(other.kind().label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants() {
        assert_eq!(Action::Create.kind(), ActionKind::Create);
        assert_eq!(
            Action::Derive { output: UnitId(1) }.kind(),
            ActionKind::Derive
        );
        assert_eq!(
            Action::Erase(ErasureInterpretation::Deleted).kind(),
            ActionKind::Erase
        );
    }

    #[test]
    fn reads_are_not_mutations() {
        assert!(!Action::Read.is_mutation());
        assert!(!Action::ReadMeta.is_mutation());
        assert!(Action::UpdateValue.is_mutation());
        assert!(Action::Erase(ErasureInterpretation::Deleted).is_mutation());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Action::Read), "read");
        assert_eq!(
            format!("{}", Action::Share { with: EntityId(4) }),
            "share->e4"
        );
        assert!(format!("{}", Action::Erase(ErasureInterpretation::Deleted)).contains("erase"));
    }

    #[test]
    fn labels_cover_all_kinds() {
        for k in [
            ActionKind::Create,
            ActionKind::Read,
            ActionKind::UpdateValue,
            ActionKind::ReadMeta,
            ActionKind::UpdateMeta,
            ActionKind::UpdatePolicy,
            ActionKind::Derive,
            ActionKind::Share,
            ActionKind::Erase,
            ActionKind::Restore,
            ActionKind::Sanitize,
            ActionKind::Notify,
            ActionKind::Assess,
        ] {
            assert!(!k.label().is_empty());
        }
    }
}
