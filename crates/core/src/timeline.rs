//! The data-erasure timeline of Figure 3: a unit is collected, lives for
//! "time-to-live", then passes (some prefix of) reversible inaccessibility
//! → deletion → strong deletion → permanent deletion.

use datacase_sim::time::{Dur, Ts};

use crate::action::ActionKind;
use crate::grounding::erasure::ErasureInterpretation;
use crate::history::ActionHistory;
use crate::ids::UnitId;

/// The reconstructed erasure timeline of one unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ErasureTimeline {
    /// The unit traced.
    pub unit: UnitId,
    /// Collection/creation time.
    pub collected: Option<Ts>,
    /// When the unit became reversibly inaccessible.
    pub reversibly_inaccessible: Option<Ts>,
    /// When it was deleted.
    pub deleted: Option<Ts>,
    /// When it was strongly deleted.
    pub strongly_deleted: Option<Ts>,
    /// When it was permanently deleted.
    pub permanently_deleted: Option<Ts>,
}

impl ErasureTimeline {
    /// Reconstruct the timeline from the action history of `unit`.
    ///
    /// Each erase interpretation's first occurrence is taken; a stricter
    /// erase also stamps the weaker stages if they were skipped (deleting
    /// directly implies the data also became inaccessible then).
    pub fn from_history(history: &ActionHistory, unit: UnitId) -> ErasureTimeline {
        let mut tl = ErasureTimeline {
            unit,
            ..ErasureTimeline::default()
        };
        for t in history.of_unit(unit) {
            match &t.action {
                crate::action::Action::Create => {
                    tl.collected.get_or_insert(t.at);
                }
                crate::action::Action::Derive { .. } => {}
                a if a.kind() == ActionKind::Erase => {
                    if let crate::action::Action::Erase(interp) = a {
                        tl.stamp(*interp, t.at);
                    }
                }
                crate::action::Action::Sanitize => {
                    tl.stamp(ErasureInterpretation::PermanentlyDeleted, t.at);
                }
                _ => {}
            }
        }
        tl
    }

    fn stamp(&mut self, interp: ErasureInterpretation, at: Ts) {
        use ErasureInterpretation::*;
        if interp.implies(ReversiblyInaccessible) {
            self.reversibly_inaccessible.get_or_insert(at);
        }
        if interp.implies(Deleted) {
            self.deleted.get_or_insert(at);
        }
        if interp.implies(StronglyDeleted) {
            self.strongly_deleted.get_or_insert(at);
        }
        if interp.implies(PermanentlyDeleted) {
            self.permanently_deleted.get_or_insert(at);
        }
    }

    /// Time-to-live: collection → first inaccessibility (Figure 3 "TT Live").
    pub fn tt_live(&self) -> Option<Dur> {
        Some(self.reversibly_inaccessible?.since(self.collected?))
    }

    /// Inaccessibility → physical deletion ("TT Delete").
    pub fn tt_delete(&self) -> Option<Dur> {
        Some(self.deleted?.since(self.reversibly_inaccessible?))
    }

    /// Deletion → strong deletion ("TT Strong Delete").
    pub fn tt_strong_delete(&self) -> Option<Dur> {
        Some(self.strongly_deleted?.since(self.deleted?))
    }

    /// Strong deletion → permanent deletion ("TT Permanent Delete").
    pub fn tt_permanent_delete(&self) -> Option<Dur> {
        Some(self.permanently_deleted?.since(self.strongly_deleted?))
    }

    /// Whether the stages that occurred did so in the figure's order.
    pub fn is_monotone(&self) -> bool {
        let stages = [
            self.collected,
            self.reversibly_inaccessible,
            self.deleted,
            self.strongly_deleted,
            self.permanently_deleted,
        ];
        let present: Vec<Ts> = stages.iter().filter_map(|s| *s).collect();
        present.windows(2).all(|w| w[0] <= w[1])
    }

    /// Render an ASCII version of Figure 3.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Erasure timeline for unit {}\n", self.unit));
        let mut stage = |label: &str, at: Option<Ts>, dur: Option<Dur>, dur_label: &str| match at {
            Some(ts) => {
                out.push_str(&format!("  ├─ {label:<28} @ {ts}"));
                if let Some(d) = dur {
                    out.push_str(&format!("   [{dur_label}: {d}]"));
                }
                out.push('\n');
            }
            None => out.push_str(&format!("  ├─ {label:<28} (not reached)\n")),
        };
        stage("collection and storage", self.collected, None, "");
        stage(
            "reversibly inaccessible",
            self.reversibly_inaccessible,
            self.tt_live(),
            "TT Live",
        );
        stage("deleted", self.deleted, self.tt_delete(), "TT Delete");
        stage(
            "strongly deleted",
            self.strongly_deleted,
            self.tt_strong_delete(),
            "TT Strong Delete",
        );
        stage(
            "permanently deleted",
            self.permanently_deleted,
            self.tt_permanent_delete(),
            "TT Permanent Delete",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::history::HistoryTuple;
    use crate::ids::EntityId;
    use crate::purpose::well_known as wk;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn record(h: &mut ActionHistory, unit: UnitId, action: Action, at: Ts) {
        h.record(HistoryTuple {
            unit,
            purpose: wk::compliance_erase(),
            entity: EntityId(1),
            action,
            at,
        });
    }

    #[test]
    fn staged_erasure_reconstructs_figure3() {
        let u = UnitId(1);
        let mut h = ActionHistory::new();
        record(&mut h, u, Action::Create, t(0));
        record(
            &mut h,
            u,
            Action::Erase(ErasureInterpretation::ReversiblyInaccessible),
            t(100),
        );
        record(
            &mut h,
            u,
            Action::Erase(ErasureInterpretation::Deleted),
            t(150),
        );
        record(
            &mut h,
            u,
            Action::Erase(ErasureInterpretation::StronglyDeleted),
            t(170),
        );
        record(&mut h, u, Action::Sanitize, t(200));
        let tl = ErasureTimeline::from_history(&h, u);
        assert_eq!(tl.collected, Some(t(0)));
        assert_eq!(tl.tt_live(), Some(Dur::from_secs(100)));
        assert_eq!(tl.tt_delete(), Some(Dur::from_secs(50)));
        assert_eq!(tl.tt_strong_delete(), Some(Dur::from_secs(20)));
        assert_eq!(tl.tt_permanent_delete(), Some(Dur::from_secs(30)));
        assert!(tl.is_monotone());
    }

    #[test]
    fn direct_strong_delete_stamps_weaker_stages() {
        let u = UnitId(2);
        let mut h = ActionHistory::new();
        record(&mut h, u, Action::Create, t(0));
        record(
            &mut h,
            u,
            Action::Erase(ErasureInterpretation::StronglyDeleted),
            t(50),
        );
        let tl = ErasureTimeline::from_history(&h, u);
        assert_eq!(tl.reversibly_inaccessible, Some(t(50)));
        assert_eq!(tl.deleted, Some(t(50)));
        assert_eq!(tl.strongly_deleted, Some(t(50)));
        assert_eq!(tl.permanently_deleted, None);
        assert!(tl.is_monotone());
    }

    #[test]
    fn unreached_stages_render_as_such() {
        let u = UnitId(3);
        let mut h = ActionHistory::new();
        record(&mut h, u, Action::Create, t(0));
        let tl = ErasureTimeline::from_history(&h, u);
        let s = tl.render();
        assert!(s.contains("(not reached)"));
        assert!(s.contains("collection and storage"));
        assert_eq!(tl.tt_live(), None);
    }

    #[test]
    fn empty_history_gives_empty_timeline() {
        let h = ActionHistory::new();
        let tl = ErasureTimeline::from_history(&h, UnitId(9));
        assert_eq!(tl.collected, None);
        assert!(tl.is_monotone());
    }
}
