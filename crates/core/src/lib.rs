#![warn(missing_docs)]
//! # datacase-core
//!
//! The Data-CASE model (paper §2–§3): a small set of data-processing
//! concepts in which data regulations can be stated *formally* as
//! invariants, plus the machinery for **grounding** ambiguous concepts
//! (like "erasure") into unique interpretations mapped to system-actions.
//!
//! Concepts (paper §2.1):
//! * **entities** — data-subjects, controllers, processors, auditors
//!   ([`entity`]);
//! * **data units** `X = (S, O, V, P)` — subject, origin, time-versioned
//!   values, policies ([`unit`](mod@unit), [`value`], [`policy`]);
//! * **purposes** — what collected data may be used for ([`purpose`]);
//! * **actions** — state-changing/reading operations on units ([`action`]);
//! * **action-history tuples** `(X, p, e, τ(X), t)` and histories `H(X)`
//!   ([`history`]);
//! * **policy-consistent processing** — the formalisation of lawful
//!   processing ([`history::ActionHistory::policy_consistent`]).
//!
//! Invariants (paper §2.2, Figure 1): the nine requirement groups I–IX and
//! the two formal examples G6 (lawful processing) and G17 (timely erasure)
//! live in [`invariants`]; [`checker::ComplianceChecker`] evaluates them
//! over a [`state::DatabaseState`] + [`history::ActionHistory`].
//!
//! Grounding (paper §3): [`grounding`] defines the four erasure
//! interpretations, their restrictiveness order, the IR/II/Inv property
//! matrix of Table 1, and the mapping to per-backend system-action plans.
//! [`timeline`] reproduces Figure 3's erasure timeline.

pub mod action;
pub mod checker;
pub mod entity;
pub mod grounding;
pub mod history;
pub mod ids;
pub mod intern;
pub mod invariants;
pub mod policy;
pub mod provenance;
pub mod purpose;
pub mod regulation;
pub mod state;
pub mod tenant;
pub mod timeline;
pub mod unit;
pub mod value;
pub mod violation;

pub use action::{Action, ActionKind};
pub use checker::{ComplianceChecker, ComplianceReport};
pub use entity::{Entity, EntityKind, EntityRegistry};
pub use grounding::erasure::ErasureInterpretation;
pub use history::{ActionHistory, HistoryTuple};
pub use ids::{EntityId, UnitId};
pub use policy::{Policy, PolicySet};
pub use purpose::PurposeId;
pub use regulation::Regulation;
pub use state::DatabaseState;
pub use tenant::{KeyRange, TenantDirectory, TenantId};
pub use unit::{Category, DataUnit, ErasureStatus, Origin};
pub use value::{Value, VersionedValue};
pub use violation::{Severity, Violation};
