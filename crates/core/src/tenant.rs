//! Tenancy: partitioning one Data-CASE deployment among many controllers.
//!
//! A served engine hosts several *tenants* — independent controllers,
//! each with their own subjects, records, and audit obligations — on one
//! shared concurrent engine.
//! This module is the **single source of truth for the partition
//! scheme**: the gateway applies it when it rewrites tenant-local
//! requests into the shared keyspace, the engine enforces it through
//! session key-scopes, and the [`TenantIsolation`]
//! invariant checks it over the abstract model — all three layers agree
//! because they share these functions.
//!
//! The scheme is purely arithmetic, so it needs no shared mutable state:
//!
//! * **Keys** — the global `u64` keyspace is split into `2^32` contiguous
//!   blocks of `2^32` keys; tenant `t` owns `[t << 32, (t + 1) << 32)`.
//! * **Subjects** — the `u32` subject-id space is split into `2^16`
//!   blocks of `2^16` subjects; tenant `t` owns
//!   `[t << 16, (t + 1) << 16)`.
//!
//! Tenant `0` is the *default tenant*: an unserved, in-process engine
//! uses small keys and subject ids, so everything it produces lands in
//! tenant 0 and single-tenant deployments are a degenerate (and
//! automatically isolated) case of the same scheme.
//!
//! [`TenantIsolation`]: crate::invariants::catalog::TenantIsolation

use std::collections::BTreeMap;

use crate::ids::EntityId;

/// Bits of the global keyspace reserved for the tenant-local key.
pub const TENANT_KEY_BITS: u32 = 32;

/// Bits of the subject-id space reserved for the tenant-local subject.
pub const TENANT_SUBJECT_BITS: u32 = 16;

/// Largest key a tenant may use locally (inclusive).
pub const MAX_LOCAL_KEY: u64 = (1 << TENANT_KEY_BITS) - 1;

/// Largest subject id a tenant may use locally (inclusive).
pub const MAX_LOCAL_SUBJECT: u32 = (1 << TENANT_SUBJECT_BITS) - 1;

/// Largest tenant id that fits the subject partition (inclusive). The
/// key partition admits more, but a tenant needs both.
pub const MAX_TENANT: u32 = (1 << (32 - TENANT_SUBJECT_BITS)) - 1;

/// A tenant of the served engine. Tenant `0` is the default tenant any
/// un-namespaced (in-process, single-controller) deployment lives in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant that owns a global key.
    pub fn of_key(global: u64) -> TenantId {
        TenantId((global >> TENANT_KEY_BITS) as u32)
    }

    /// The tenant that owns a (namespaced) subject id.
    pub fn of_subject(subject: u32) -> TenantId {
        TenantId(subject >> TENANT_SUBJECT_BITS)
    }

    /// Map a tenant-local key into the shared keyspace. `None` when the
    /// local key does not fit the tenant's block.
    pub fn global_key(self, local: u64) -> Option<u64> {
        (local <= MAX_LOCAL_KEY && self.0 <= MAX_TENANT)
            .then_some(((self.0 as u64) << TENANT_KEY_BITS) | local)
    }

    /// Map a global key back into this tenant's local keyspace. `None`
    /// when the key belongs to a different tenant.
    pub fn local_key(self, global: u64) -> Option<u64> {
        (TenantId::of_key(global) == self).then_some(global & MAX_LOCAL_KEY)
    }

    /// Map a tenant-local subject id into the shared subject space.
    /// `None` when the local subject does not fit the tenant's block.
    pub fn global_subject(self, local: u32) -> Option<u32> {
        (local <= MAX_LOCAL_SUBJECT && self.0 <= MAX_TENANT)
            .then_some((self.0 << TENANT_SUBJECT_BITS) | local)
    }

    /// Map a namespaced subject id back into this tenant's local space.
    /// `None` when the subject belongs to a different tenant.
    pub fn local_subject(self, global: u32) -> Option<u32> {
        (TenantId::of_subject(global) == self).then_some(global & MAX_LOCAL_SUBJECT)
    }

    /// The half-open block of the global keyspace this tenant owns —
    /// what a tenant-scoped engine session is confined to.
    pub fn key_range(self) -> KeyRange {
        let start = (self.0 as u64) << TENANT_KEY_BITS;
        KeyRange {
            start,
            end: start + (1 << TENANT_KEY_BITS),
        }
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// A half-open range `[start, end)` of the global keyspace. Sessions
/// carrying a key-scope are denied any key-addressed request outside it,
/// and metadata scans are filtered to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRange {
    /// First key inside the range.
    pub start: u64,
    /// First key past the range.
    pub end: u64,
}

impl KeyRange {
    /// Does the range contain `key`?
    pub fn contains(&self, key: u64) -> bool {
        self.start <= key && key < self.end
    }
}

impl std::fmt::Display for KeyRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// The authoritative entity → tenant assignment for one deployment,
/// supplied to the compliance checker by the layer that registered the
/// entities (the engine derives it from its subject registry via
/// [`TenantId::of_subject`]).
///
/// Entities absent from the directory are *infrastructure* — the shared
/// controller/processor/auditor principals the serving platform itself
/// acts through — and are exempt from the isolation partition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantDirectory {
    entities: BTreeMap<EntityId, TenantId>,
}

impl TenantDirectory {
    /// An empty directory (no tenancy assignments).
    pub fn new() -> TenantDirectory {
        TenantDirectory::default()
    }

    /// Assign an entity to a tenant (later assignments win).
    pub fn assign(&mut self, entity: EntityId, tenant: TenantId) {
        self.entities.insert(entity, tenant);
    }

    /// The tenant an entity belongs to, if assigned.
    pub fn tenant_of(&self, entity: EntityId) -> Option<TenantId> {
        self.entities.get(&entity).copied()
    }

    /// Number of assigned entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Is the directory empty (single-tenant / unserved deployment)?
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Distinct tenants with at least one assigned entity, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ts: Vec<TenantId> = self.entities.values().copied().collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_namespacing_round_trips() {
        let t = TenantId(3);
        let g = t.global_key(41).unwrap();
        assert_eq!(g, (3u64 << 32) | 41);
        assert_eq!(TenantId::of_key(g), t);
        assert_eq!(t.local_key(g), Some(41));
        assert_eq!(TenantId(2).local_key(g), None);
        assert!(t.global_key(MAX_LOCAL_KEY + 1).is_none());
    }

    #[test]
    fn subject_namespacing_round_trips() {
        let t = TenantId(7);
        let s = t.global_subject(9).unwrap();
        assert_eq!(s, (7 << 16) | 9);
        assert_eq!(TenantId::of_subject(s), t);
        assert_eq!(t.local_subject(s), Some(9));
        assert_eq!(TenantId(1).local_subject(s), None);
        assert!(t.global_subject(MAX_LOCAL_SUBJECT + 1).is_none());
        assert!(TenantId(MAX_TENANT + 1).global_subject(0).is_none());
    }

    #[test]
    fn key_ranges_partition_the_keyspace() {
        let a = TenantId(0).key_range();
        let b = TenantId(1).key_range();
        assert_eq!(a.end, b.start);
        assert!(a.contains(0) && a.contains(MAX_LOCAL_KEY));
        assert!(!a.contains(b.start));
        assert!(b.contains(TenantId(1).global_key(0).unwrap()));
    }

    #[test]
    fn default_tenant_hosts_small_ids() {
        // Everything an unserved engine produces lands in tenant 0.
        assert_eq!(TenantId::of_key(123_456), TenantId(0));
        assert_eq!(TenantId::of_subject(4_200), TenantId(0));
    }

    #[test]
    fn directory_assigns_and_lists() {
        let mut dir = TenantDirectory::new();
        assert!(dir.is_empty());
        dir.assign(EntityId(5), TenantId(1));
        dir.assign(EntityId(6), TenantId(2));
        dir.assign(EntityId(7), TenantId(1));
        assert_eq!(dir.len(), 3);
        assert_eq!(dir.tenant_of(EntityId(5)), Some(TenantId(1)));
        assert_eq!(dir.tenant_of(EntityId(99)), None);
        assert_eq!(dir.tenants(), vec![TenantId(1), TenantId(2)]);
    }
}
