//! A tiny global string interner.
//!
//! Purposes, role names, and dependency-function labels are short strings
//! compared and hashed constantly on the hot path (every policy check).
//! Interning turns them into `u32` symbols with `&'static str` resolution.
//! The interned set is small and append-only, so leaking the backing
//! strings is deliberate and bounded.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned string handle; equality and hashing are integer operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its symbol (idempotent per string).
    pub fn intern(s: &str) -> Symbol {
        let mut g = interner().lock().expect("interner poisoned");
        if let Some(&id) = g.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = g.strings.len() as u32;
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Symbol(id)
    }

    /// Resolve back to the string.
    pub fn as_str(self) -> &'static str {
        let g = interner().lock().expect("interner poisoned");
        g.strings[self.0 as usize]
    }

    /// The raw symbol index (for compact serialization in logs).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("billing");
        let b = Symbol::intern("billing");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "billing");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("alpha-x");
        let b = Symbol::intern("beta-x");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha-x");
        assert_eq!(b.as_str(), "beta-x");
    }

    #[test]
    fn display_shows_string() {
        let s = Symbol::intern("retention");
        assert_eq!(format!("{s}"), "retention");
        assert!(format!("{s:?}").contains("retention"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent-key")))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
