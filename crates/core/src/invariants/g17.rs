//! **G17 — timely erasure** (paper §2.2).
//!
//! > "For all data units X = (S,O,V,P), there exists a policy
//! > π = ⟨compliance-erase, e, t_b, t_f⟩ ∈ P and the last access tuple on X
//! > is (q, compliance-erase, e, erase(X), t) s.t. t ≤ t_f."
//!
//! Grounding decisions (documented per the paper's method):
//! * every *personal* unit must carry a `compliance-erase` policy — a
//!   retention bound; metadata units are exempt;
//! * once `t_f` (+ the regulation's grace, "without undue delay") has
//!   passed, the unit's erasure status must satisfy the regulation's
//!   minimum interpretation and an `erase` action must appear in `H(X)` at
//!   or before the deadline + grace;
//! * the erase action must be the last *content* action — later reads of a
//!   supposedly erased unit are G6's business (they will have no policy),
//!   but later erase-escalations (e.g. sanitisation) are fine.

use crate::action::ActionKind;
use crate::violation::{Severity, Violation};

use super::{CheckContext, Invariant};

/// The formal G17 invariant.
pub struct G17TimelyErasure;

impl Invariant for G17TimelyErasure {
    fn id(&self) -> &'static str {
        "G17"
    }

    fn statement(&self) -> &'static str {
        "Every personal unit has an erase-by policy and is erased (at the \
         regulation's minimum interpretation) by its deadline."
    }

    fn articles(&self) -> &'static [u8] {
        &[17]
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        let grace = ctx.regulation.erase_grace;
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed unit exists");
            if !unit.is_personal() {
                continue;
            }
            if !unit.policies.has_erase_policy() {
                out.push(Violation::on_unit(
                    "G17",
                    id,
                    ctx.now,
                    Severity::Breach,
                    "no compliance-erase policy: the unit could be stored eternally",
                ));
                continue;
            }
            // The deadline is t_f of the erase policy as granted (query it
            // at grant time so an already-passed window still yields one).
            let deadline = unit
                .policies
                .records()
                .iter()
                .filter(|r| r.policy.purpose == crate::purpose::well_known::compliance_erase())
                .map(|r| r.policy.until)
                .min()
                .expect("has_erase_policy implies a record");
            let due = deadline + grace;
            if ctx.now <= due {
                continue; // not yet due
            }
            // Past due: status must satisfy the regulation's minimum…
            if !unit.erasure.satisfies(ctx.regulation.min_erasure) {
                out.push(Violation::on_unit(
                    "G17",
                    id,
                    ctx.now,
                    Severity::Critical,
                    format!(
                        "erase deadline {deadline} passed but unit is {:?} (regulation requires ≥ {})",
                        unit.erasure, ctx.regulation.min_erasure
                    ),
                ));
                continue;
            }
            // …and an erase action must have been recorded in time.
            let erased_in_time = ctx
                .history
                .of_unit(id)
                .iter()
                .any(|t| t.action.kind() == ActionKind::Erase && t.at <= due);
            if !erased_in_time {
                out.push(Violation::on_unit(
                    "G17",
                    id,
                    ctx.now,
                    Severity::Breach,
                    "unit marked erased but no erase action recorded before the deadline \
                     (record-keeping gap)",
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::grounding::erasure::ErasureInterpretation;
    use crate::history::{ActionHistory, HistoryTuple};
    use crate::ids::EntityId;
    use crate::invariants::EvidenceFlags;
    use crate::policy::Policy;
    use crate::purpose::{well_known as wk, PurposeRegistry};
    use crate::regulation::Regulation;
    use crate::state::DatabaseState;
    use crate::unit::{ErasureStatus, Origin};
    use datacase_sim::time::{Dur, Ts};

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    struct Fixture {
        state: DatabaseState,
        history: ActionHistory,
        purposes: PurposeRegistry,
        regulation: Regulation,
    }

    fn fixture() -> (Fixture, crate::ids::UnitId) {
        let mut state = DatabaseState::new();
        let uid = state.collect(EntityId(7), Origin::Subject(EntityId(7)), "cc".into(), t(0));
        // Erase-by policy: must be erased by t=100.
        state.unit_mut(uid).unwrap().policies.grant(
            Policy::new(wk::compliance_erase(), EntityId(0), t(0), t(100)),
            t(0),
        );
        let mut regulation = Regulation::gdpr();
        regulation.erase_grace = Dur::from_secs(10);
        (
            Fixture {
                state,
                history: ActionHistory::new(),
                purposes: PurposeRegistry::with_defaults(),
                regulation,
            },
            uid,
        )
    }

    fn check(f: &Fixture, now: Ts) -> Vec<Violation> {
        let ctx = CheckContext {
            state: &f.state,
            history: &f.history,
            purposes: &f.purposes,
            regulation: &f.regulation,
            now,
            evidence: EvidenceFlags::default(),
            tenants: None,
        };
        G17TimelyErasure.check(&ctx)
    }

    #[test]
    fn before_deadline_no_violation() {
        let (f, _) = fixture();
        assert!(check(&f, t(50)).is_empty());
        assert!(check(&f, t(110)).is_empty(), "inside grace");
    }

    #[test]
    fn missing_erase_policy_is_breach() {
        let mut state = DatabaseState::new();
        let _ = state.collect(EntityId(7), Origin::Subject(EntityId(7)), "cc".into(), t(0));
        let f = Fixture {
            state,
            history: ActionHistory::new(),
            purposes: PurposeRegistry::with_defaults(),
            regulation: Regulation::gdpr(),
        };
        let v = check(&f, t(1));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].severity, Severity::Breach);
        assert!(v[0].message.contains("eternally"));
    }

    #[test]
    fn past_deadline_unerased_is_critical() {
        let (f, _) = fixture();
        let v = check(&f, t(200));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].severity, Severity::Critical);
    }

    #[test]
    fn properly_erased_unit_passes() {
        let (mut f, uid) = fixture();
        f.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::compliance_erase(),
            entity: EntityId(1),
            action: Action::Erase(ErasureInterpretation::Deleted),
            at: t(90),
        });
        f.state
            .mark_erased(uid, ErasureStatus::Deleted { since: t(90) }, t(90));
        assert!(check(&f, t(200)).is_empty());
    }

    #[test]
    fn erased_status_without_history_is_record_keeping_gap() {
        let (mut f, uid) = fixture();
        f.state
            .mark_erased(uid, ErasureStatus::Deleted { since: t(90) }, t(90));
        let v = check(&f, t(200));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("record-keeping"));
    }

    #[test]
    fn reversible_inaccessibility_insufficient_for_gdpr_minimum() {
        let (mut f, uid) = fixture();
        f.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::compliance_erase(),
            entity: EntityId(1),
            action: Action::Erase(ErasureInterpretation::ReversiblyInaccessible),
            at: t(90),
        });
        f.state.mark_erased(
            uid,
            ErasureStatus::ReversiblyInaccessible { since: t(90) },
            t(90),
        );
        let v = check(&f, t(200));
        assert_eq!(v.len(), 1, "GDPR minimum is Deleted");
        assert_eq!(v[0].severity, Severity::Critical);
    }

    #[test]
    fn metadata_units_exempt() {
        let (mut f, uid) = fixture();
        f.state.unit_mut(uid).unwrap().category = crate::unit::Category::Metadata;
        assert!(check(&f, t(500)).is_empty());
    }
}
