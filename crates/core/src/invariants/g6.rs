//! **G6 — lawful processing as policy consistency** (paper §2.2).
//!
//! > "For all data units X, and for all actions τ on X, it holds that τ is
//! > policy-consistent."

use crate::history::ActionHistory;
use crate::violation::{Severity, Violation};

use super::{CheckContext, Invariant};

/// The formal G6 invariant.
pub struct G6PolicyConsistency;

impl Invariant for G6PolicyConsistency {
    fn id(&self) -> &'static str {
        "G6"
    }

    fn statement(&self) -> &'static str {
        "Every action on every data unit is policy-consistent."
    }

    fn articles(&self) -> &'static [u8] {
        &[6]
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for tuple in ctx.history.iter() {
            if !ActionHistory::policy_consistent(tuple, ctx.state, ctx.purposes, ctx.regulation) {
                out.push(Violation {
                    invariant: "G6",
                    unit: Some(tuple.unit),
                    entity: Some(tuple.entity),
                    at: tuple.at,
                    severity: Severity::Critical,
                    message: format!(
                        "action {} for purpose {} by {} not covered by any active policy",
                        tuple.action, tuple.purpose, tuple.entity
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::history::HistoryTuple;
    use crate::ids::{EntityId, UnitId};
    use crate::invariants::EvidenceFlags;
    use crate::policy::Policy;
    use crate::purpose::{well_known as wk, PurposeRegistry};
    use crate::regulation::Regulation;
    use crate::state::DatabaseState;
    use crate::unit::Origin;
    use datacase_sim::time::Ts;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn setup() -> (DatabaseState, PurposeRegistry, Regulation, UnitId) {
        let mut state = DatabaseState::new();
        let uid = state.collect(EntityId(7), Origin::Subject(EntityId(7)), "cc".into(), t(0));
        state
            .unit_mut(uid)
            .unwrap()
            .policies
            .grant(Policy::new(wk::billing(), EntityId(1), t(0), t(100)), t(0));
        (
            state,
            PurposeRegistry::with_defaults(),
            Regulation::gdpr(),
            uid,
        )
    }

    #[test]
    fn consistent_history_passes() {
        let (state, purposes, reg, uid) = setup();
        let mut h = ActionHistory::new();
        h.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(1),
            action: Action::Read,
            at: t(10),
        });
        let ctx = CheckContext {
            state: &state,
            history: &h,
            purposes: &purposes,
            regulation: &reg,
            now: t(50),
            evidence: EvidenceFlags::default(),
            tenants: None,
        };
        assert!(G6PolicyConsistency.check(&ctx).is_empty());
    }

    #[test]
    fn unauthorised_entity_flagged_critical() {
        let (state, purposes, reg, uid) = setup();
        let mut h = ActionHistory::new();
        h.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(99),
            action: Action::Read,
            at: t(10),
        });
        let ctx = CheckContext {
            state: &state,
            history: &h,
            purposes: &purposes,
            regulation: &reg,
            now: t(50),
            evidence: EvidenceFlags::default(),
            tenants: None,
        };
        let v = G6PolicyConsistency.check(&ctx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].severity, Severity::Critical);
        assert_eq!(v[0].unit, Some(uid));
        assert_eq!(v[0].entity, Some(EntityId(99)));
    }

    #[test]
    fn expired_policy_read_flagged() {
        let (state, purposes, reg, uid) = setup();
        let mut h = ActionHistory::new();
        h.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(1),
            action: Action::Read,
            at: t(150), // window ended at t(100)
        });
        let ctx = CheckContext {
            state: &state,
            history: &h,
            purposes: &purposes,
            regulation: &reg,
            now: t(200),
            evidence: EvidenceFlags::default(),
            tenants: None,
        };
        assert_eq!(G6PolicyConsistency.check(&ctx).len(), 1);
    }
}
