//! The nine informal invariants of Figure 1, each given one concrete
//! grounding (other groundings are possible — that is the framework's
//! point; ours are documented on each type).
//!
//! | id   | group                        | GDPR articles |
//! |------|------------------------------|---------------|
//! | I    | Disclosure                   | 13, 14        |
//! | II   | Storage                      | 12, 15–18, 20, 21, 23 |
//! | III  | Pre-processing               | 35, 36        |
//! | IV   | Sharing and Processing       | 5–11, 22, 26–29, 44, 45 |
//! | V    | Erasure                      | 17            |
//! | VI   | Design and Security          | 25, 32        |
//! | VII  | Record keeping               | 30            |
//! | VIII | Obligations & Accountability | 19, 33, 34    |
//! | IX   | Demonstrate compliance       | 24, 31        |
//!
//! The catalog also carries one deployment invariant that is not a
//! Figure 1 row: **X — Tenant isolation** (arts. 28, 32), introduced
//! with the served multi-tenant engine. It is vacuous for single-tenant
//! deployments and becomes checkable once the engine supplies a
//! [`crate::tenant::TenantDirectory`].

use crate::action::ActionKind;
use crate::purpose::well_known as wk;
use crate::tenant::TenantId;
use crate::violation::{Severity, Violation};

use super::{g17::G17TimelyErasure, g6::G6PolicyConsistency, CheckContext, Invariant};

/// **I — Disclosure**: "Keep data subjects informed when collecting data."
///
/// Grounding: every personal base unit's history must contain a
/// `contract`-purposed tuple (consent/contract capture) at or before its
/// creation instant — the paper's `CtrC1234` contract example.
pub struct Disclosure;

impl Invariant for Disclosure {
    fn id(&self) -> &'static str {
        "I"
    }
    fn statement(&self) -> &'static str {
        "Keep data subjects informed when collecting data."
    }
    fn articles(&self) -> &'static [u8] {
        &[13, 14]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed");
            if !unit.is_personal() || unit.category != crate::unit::Category::Base {
                continue;
            }
            let informed = ctx
                .history
                .of_unit(id)
                .iter()
                .any(|t| t.purpose == wk::contract() && t.at <= unit.created_at);
            if !informed {
                out.push(Violation::on_unit(
                    "I",
                    id,
                    ctx.now,
                    Severity::Breach,
                    "collected without a contract/consent disclosure tuple at collection time",
                ));
            }
        }
        out
    }
}

/// **II — Storage**: "Store data such that data subjects can exercise
/// their rights."
///
/// Grounding: every *live* personal unit must carry an active
/// `subject-access` policy naming one of its subjects, so access /
/// rectification / erasure requests have an authorised path.
pub struct Storage;

impl Invariant for Storage {
    fn id(&self) -> &'static str {
        "II"
    }
    fn statement(&self) -> &'static str {
        "Store data such that data subjects can exercise their rights."
    }
    fn articles(&self) -> &'static [u8] {
        &[12, 15, 16, 17, 18, 20, 21, 23]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed");
            if !unit.is_personal() || unit.erasure.is_erased() {
                continue;
            }
            let reachable = unit
                .subjects
                .iter()
                .any(|&s| unit.policies.authorises(wk::subject_access(), s, ctx.now));
            if !reachable {
                out.push(Violation::on_unit(
                    "II",
                    id,
                    ctx.now,
                    Severity::Breach,
                    "no active subject-access policy: the subject cannot exercise their rights",
                ));
            }
        }
        out
    }
}

/// **III — Pre-processing**: "Consult and assess prior to processing data."
///
/// Grounding: for every purpose under which personal data was processed
/// (read/derive/share), an `Assess` tuple for that purpose must exist at or
/// before the first such processing action (our DPIA evidence).
pub struct PreProcessing;

impl Invariant for PreProcessing {
    fn id(&self) -> &'static str {
        "III"
    }
    fn statement(&self) -> &'static str {
        "Consult and assess prior to processing data."
    }
    fn articles(&self) -> &'static [u8] {
        &[35, 36]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        if !ctx.regulation.require_assessment {
            return Vec::new();
        }
        use std::collections::HashMap;
        let mut first_use: HashMap<crate::purpose::PurposeId, &crate::history::HistoryTuple> =
            HashMap::new();
        let mut assessed_at: HashMap<crate::purpose::PurposeId, datacase_sim::time::Ts> =
            HashMap::new();
        for t in ctx.history.iter() {
            match t.action.kind() {
                ActionKind::Assess => {
                    assessed_at.entry(t.purpose).or_insert(t.at);
                }
                ActionKind::Read | ActionKind::Derive | ActionKind::Share => {
                    let personal = ctx
                        .state
                        .unit(t.unit)
                        .map(|u| u.is_personal())
                        .unwrap_or(false);
                    if personal {
                        first_use.entry(t.purpose).or_insert(t);
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        let mut purposes: Vec<_> = first_use.keys().copied().collect();
        purposes.sort();
        for p in purposes {
            let first = first_use[&p];
            let ok = assessed_at.get(&p).map(|&a| a <= first.at).unwrap_or(false);
            if !ok {
                out.push(Violation {
                    invariant: "III",
                    unit: Some(first.unit),
                    entity: Some(first.entity),
                    at: first.at,
                    severity: Severity::Breach,
                    message: format!(
                        "personal data processed for purpose {p} without a prior assessment"
                    ),
                });
            }
        }
        out
    }
}

/// **IV — Sharing and Processing**: "Do not process data indiscriminately."
///
/// Grounding: delegates to the formal G6 — every action policy-consistent —
/// reported under this catalog id.
pub struct SharingProcessing;

impl Invariant for SharingProcessing {
    fn id(&self) -> &'static str {
        "IV"
    }
    fn statement(&self) -> &'static str {
        "Do not process data indiscriminately (all actions policy-consistent)."
    }
    fn articles(&self) -> &'static [u8] {
        &[5, 6, 7, 8, 9, 10, 11, 22, 26, 27, 28, 29, 44, 45]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        G6PolicyConsistency
            .check(ctx)
            .into_iter()
            .map(|mut v| {
                v.invariant = "IV";
                v
            })
            .collect()
    }
}

/// **V — Erasure**: "Do not store data eternally."
///
/// Grounding: delegates to the formal G17, reported under this catalog id.
pub struct Erasure;

impl Invariant for Erasure {
    fn id(&self) -> &'static str {
        "V"
    }
    fn statement(&self) -> &'static str {
        "Do not store data eternally (erase-by policies honoured)."
    }
    fn articles(&self) -> &'static [u8] {
        &[17]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        G17TimelyErasure
            .check(ctx)
            .into_iter()
            .map(|mut v| {
                v.invariant = "V";
                v
            })
            .collect()
    }
}

/// **VI — Design and Security**: "Build and design data protective systems."
///
/// Grounding: when the regulation requires it, every live personal unit is
/// stored encrypted at rest (per-unit flag, or the deployment-wide default
/// evidenced by the engine).
pub struct DesignSecurity;

impl Invariant for DesignSecurity {
    fn id(&self) -> &'static str {
        "VI"
    }
    fn statement(&self) -> &'static str {
        "Build and design data-protective systems (encryption at rest)."
    }
    fn articles(&self) -> &'static [u8] {
        &[25, 32]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        if !ctx.regulation.require_encryption_at_rest || ctx.evidence.encryption_at_rest_default {
            return Vec::new();
        }
        let mut out = Vec::new();
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed");
            if unit.is_personal() && !unit.erasure.is_erased() && !unit.encrypted_at_rest {
                out.push(Violation::on_unit(
                    "VI",
                    id,
                    ctx.now,
                    Severity::Breach,
                    "personal data stored unencrypted at rest",
                ));
            }
        }
        out
    }
}

/// **VII — Record keeping**: "Keep records of all data-operations."
///
/// Grounding: every value version of every unit is matched by a recorded
/// mutation tuple (create / update-value / erase), and every unit has a
/// Create tuple. A history thinner than the state means operations escaped
/// the record.
pub struct RecordKeeping;

impl Invariant for RecordKeeping {
    fn id(&self) -> &'static str {
        "VII"
    }
    fn statement(&self) -> &'static str {
        "Keep records of all data-operations."
    }
    fn articles(&self) -> &'static [u8] {
        &[30]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed");
            let tuples = ctx.history.of_unit(id);
            let has_create = tuples
                .iter()
                .any(|t| matches!(t.action.kind(), ActionKind::Create | ActionKind::Derive));
            if !has_create {
                out.push(Violation::on_unit(
                    "VII",
                    id,
                    ctx.now,
                    Severity::Breach,
                    "unit exists but its creation was never recorded",
                ));
                continue;
            }
            let mutations = tuples
                .iter()
                .filter(|t| {
                    matches!(
                        t.action.kind(),
                        ActionKind::Create
                            | ActionKind::UpdateValue
                            | ActionKind::Erase
                            | ActionKind::Derive
                    )
                })
                .count();
            if unit.value.len() > mutations {
                out.push(Violation::on_unit(
                    "VII",
                    id,
                    ctx.now,
                    Severity::Breach,
                    format!(
                        "{} value versions but only {} recorded mutations",
                        unit.value.len(),
                        mutations
                    ),
                ));
            }
        }
        out
    }
}

/// **VIII — Obligations & Accountability**: "Inform the user of changes and
/// unauthorized access to their data."
///
/// Grounding: every policy-change (`UpdatePolicy`) on a personal unit must
/// be followed by a `Notify` tuple for the same unit within the
/// regulation's notification window.
pub struct Obligations;

impl Invariant for Obligations {
    fn id(&self) -> &'static str {
        "VIII"
    }
    fn statement(&self) -> &'static str {
        "Inform the user of changes and unauthorised access to their data."
    }
    fn articles(&self) -> &'static [u8] {
        &[19, 33, 34]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let window = ctx.regulation.notification_window;
        let mut out = Vec::new();
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed");
            if !unit.is_personal() {
                continue;
            }
            let tuples = ctx.history.of_unit(id);
            for (i, t) in tuples.iter().enumerate() {
                if t.action.kind() != ActionKind::UpdatePolicy {
                    continue;
                }
                // Skip the initial consent capture (contract purpose).
                if t.purpose == wk::contract() {
                    continue;
                }
                let deadline = t.at + window;
                let notified = tuples[i..]
                    .iter()
                    .any(|n| n.action.kind() == ActionKind::Notify && n.at <= deadline);
                if !notified && ctx.now > deadline {
                    out.push(Violation::on_unit(
                        "VIII",
                        id,
                        t.at,
                        Severity::Breach,
                        "policy change without subject notification inside the window",
                    ));
                }
            }
        }
        out
    }
}

/// **IX — Demonstrate compliance**: "Demonstrate compliance."
///
/// Grounding: if the state holds personal data there must be (a) a
/// non-empty action history and (b) tamper-evident audit evidence (the
/// audit layer's HMAC chain verified), supplied via
/// [`super::EvidenceFlags::audit_log_tamper_evident`].
pub struct Demonstrate;

impl Invariant for Demonstrate {
    fn id(&self) -> &'static str {
        "IX"
    }
    fn statement(&self) -> &'static str {
        "Demonstrate compliance (auditable, tamper-evident records)."
    }
    fn articles(&self) -> &'static [u8] {
        &[24, 31]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let has_personal = ctx.state.units().any(|u| u.is_personal());
        if !has_personal {
            return Vec::new();
        }
        let mut out = Vec::new();
        if ctx.history.is_empty() {
            out.push(Violation::systemic(
                "IX",
                ctx.now,
                Severity::Critical,
                "personal data present but the action history is empty",
            ));
        }
        if !ctx.evidence.audit_log_tamper_evident {
            out.push(Violation::systemic(
                "IX",
                ctx.now,
                Severity::Breach,
                "audit log integrity not demonstrated (no verified HMAC chain)",
            ));
        }
        out
    }
}

/// **X — Tenant isolation**: "One tenant's probes must never surface
/// another tenant's tuples, residuals, or audit records."
///
/// Grounding (served multi-tenant deployments; vacuous when no
/// [`crate::tenant::TenantDirectory`] is supplied in the context): the
/// tenant partition must hold over the *whole* model, erased residuals
/// and audit records included —
///
/// * **(a) units** — no data unit's subjects may span two tenants: a
///   unit belongs to exactly the tenant of its subjects, so erasure and
///   restore of that unit can only ever touch one tenant's data;
/// * **(b) history** — every recorded action (the abstract audit
///   record) on a tenant-owned unit must have been performed by an
///   entity of the *same* tenant. Entities absent from the directory
///   are infrastructure principals (the serving platform's shared
///   controller/processor/auditor) and are exempt: the gateway's
///   key-scoped sessions are what confine those to one tenant's block.
pub struct TenantIsolation;

impl Invariant for TenantIsolation {
    fn id(&self) -> &'static str {
        "X"
    }
    fn statement(&self) -> &'static str {
        "Isolate tenants: no probe surfaces another tenant's data or records."
    }
    fn articles(&self) -> &'static [u8] {
        &[28, 32]
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation> {
        let dir = match ctx.tenants {
            Some(d) if !d.is_empty() => d,
            _ => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut unit_tenant: std::collections::HashMap<crate::ids::UnitId, TenantId> =
            std::collections::HashMap::new();
        for id in ctx.state.unit_ids_sorted() {
            let unit = ctx.state.unit(id).expect("listed");
            let mut tenants: Vec<TenantId> = unit
                .subjects
                .iter()
                .filter_map(|&s| dir.tenant_of(s))
                .collect();
            tenants.sort_unstable();
            tenants.dedup();
            match tenants.as_slice() {
                [] => {}
                [one] => {
                    unit_tenant.insert(id, *one);
                }
                many => {
                    out.push(Violation::on_unit(
                        "X",
                        id,
                        ctx.now,
                        Severity::Critical,
                        format!(
                            "unit's subjects span {} tenants — the tenant partition is breached",
                            many.len()
                        ),
                    ));
                }
            }
        }
        for t in ctx.history.iter() {
            let owner = unit_tenant.get(&t.unit).copied();
            let actor = dir.tenant_of(t.entity);
            if let (Some(owner), Some(actor)) = (owner, actor) {
                if actor != owner {
                    out.push(Violation {
                        invariant: "X",
                        unit: Some(t.unit),
                        entity: Some(t.entity),
                        at: t.at,
                        severity: Severity::Critical,
                        message: format!("{actor} acted on a unit owned by {owner}"),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::history::{ActionHistory, HistoryTuple};
    use crate::ids::{EntityId, UnitId};
    use crate::invariants::EvidenceFlags;
    use crate::policy::Policy;
    use crate::purpose::PurposeRegistry;
    use crate::regulation::Regulation;
    use crate::state::DatabaseState;
    use crate::unit::Origin;
    use datacase_sim::time::Ts;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    struct Fx {
        state: DatabaseState,
        history: ActionHistory,
        purposes: PurposeRegistry,
        regulation: Regulation,
        evidence: EvidenceFlags,
        tenants: crate::tenant::TenantDirectory,
    }

    impl Fx {
        fn new() -> Fx {
            Fx {
                state: DatabaseState::new(),
                history: ActionHistory::new(),
                purposes: PurposeRegistry::with_defaults(),
                regulation: Regulation::gdpr(),
                evidence: EvidenceFlags {
                    audit_log_tamper_evident: true,
                    encryption_at_rest_default: true,
                },
                tenants: crate::tenant::TenantDirectory::new(),
            }
        }

        fn collect_with_consent(&mut self, subject: u32, at: Ts) -> UnitId {
            let uid = self.state.collect(
                EntityId(subject),
                Origin::Subject(EntityId(subject)),
                "pii".into(),
                at,
            );
            self.history.record(HistoryTuple {
                unit: uid,
                purpose: wk::contract(),
                entity: EntityId(0),
                action: Action::Create,
                at,
            });
            self.state.unit_mut(uid).unwrap().policies.grant(
                Policy::open_ended(wk::subject_access(), EntityId(subject), at),
                at,
            );
            uid
        }

        fn check(&self, inv: &dyn Invariant, now: Ts) -> Vec<Violation> {
            let ctx = CheckContext {
                state: &self.state,
                history: &self.history,
                purposes: &self.purposes,
                regulation: &self.regulation,
                now,
                evidence: self.evidence,
                tenants: (!self.tenants.is_empty()).then_some(&self.tenants),
            };
            inv.check(&ctx)
        }
    }

    #[test]
    fn disclosure_requires_contract_tuple() {
        let mut fx = Fx::new();
        let _ok = fx.collect_with_consent(1, t(0));
        // Collected silently — no contract tuple.
        let _bad = fx.state.collect(
            EntityId(2),
            Origin::Subject(EntityId(2)),
            "pii".into(),
            t(1),
        );
        let v = fx.check(&Disclosure, t(5));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("consent"));
    }

    #[test]
    fn storage_requires_subject_access_policy() {
        let mut fx = Fx::new();
        let _ok = fx.collect_with_consent(1, t(0));
        let bad = fx.state.collect(
            EntityId(2),
            Origin::Subject(EntityId(2)),
            "pii".into(),
            t(1),
        );
        let v = fx.check(&Storage, t(5));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].unit, Some(bad));
    }

    #[test]
    fn preprocessing_needs_assessment_before_first_use() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        // Assess analytics at t=5, first use at t=10: fine.
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::analytics(),
            entity: EntityId(0),
            action: Action::Assess,
            at: t(5),
        });
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::analytics(),
            entity: EntityId(0),
            action: Action::Read,
            at: t(10),
        });
        assert!(fx.check(&PreProcessing, t(20)).is_empty());
        // Billing used with no assessment: violation.
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(0),
            action: Action::Read,
            at: t(15),
        });
        let v = fx.check(&PreProcessing, t(20));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("billing"));
    }

    #[test]
    fn preprocessing_skipped_when_regulation_does_not_require() {
        let mut fx = Fx::new();
        fx.regulation = Regulation::ccpa();
        let uid = fx.collect_with_consent(1, t(0));
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(0),
            action: Action::Read,
            at: t(15),
        });
        assert!(fx.check(&PreProcessing, t(20)).is_empty());
    }

    #[test]
    fn sharing_processing_relabels_g6() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(42),
            action: Action::Read,
            at: t(10),
        });
        let v = fx.check(&SharingProcessing, t(20));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "IV");
    }

    #[test]
    fn design_security_checks_per_unit_unless_default() {
        let mut fx = Fx::new();
        fx.evidence.encryption_at_rest_default = false;
        let uid = fx.collect_with_consent(1, t(0));
        let v = fx.check(&DesignSecurity, t(5));
        assert_eq!(v.len(), 1, "unit not flagged encrypted");
        fx.state.unit_mut(uid).unwrap().encrypted_at_rest = true;
        assert!(fx.check(&DesignSecurity, t(5)).is_empty());
    }

    #[test]
    fn record_keeping_flags_unrecorded_mutations() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        assert!(fx.check(&RecordKeeping, t(5)).is_empty());
        // Mutate the value without recording history.
        fx.state
            .unit_mut(uid)
            .unwrap()
            .value
            .write(t(3), "changed".into());
        let v = fx.check(&RecordKeeping, t(5));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("versions"));
    }

    #[test]
    fn record_keeping_flags_missing_create() {
        let mut fx = Fx::new();
        let _uid = fx.state.collect(
            EntityId(3),
            Origin::Subject(EntityId(3)),
            "pii".into(),
            t(0),
        );
        let v = fx.check(&RecordKeeping, t(5));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("creation"));
    }

    #[test]
    fn obligations_require_notification_after_policy_change() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(0),
            action: Action::UpdatePolicy,
            at: t(10),
        });
        // Window is 72h; inside it, no violation yet.
        assert!(fx.check(&Obligations, t(20)).is_empty());
        // Far beyond, with no Notify: violation.
        let far = t(10 + 73 * 3600);
        let v = fx.check(&Obligations, far);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn obligations_satisfied_by_timely_notify() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(0),
            action: Action::UpdatePolicy,
            at: t(10),
        });
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::billing(),
            entity: EntityId(0),
            action: Action::Notify,
            at: t(20),
        });
        let far = t(10 + 100 * 3600);
        assert!(fx.check(&Obligations, far).is_empty());
    }

    #[test]
    fn demonstrate_needs_history_and_evidence() {
        let mut fx = Fx::new();
        let _ = fx.state.collect(
            EntityId(1),
            Origin::Subject(EntityId(1)),
            "pii".into(),
            t(0),
        );
        fx.evidence.audit_log_tamper_evident = false;
        let v = fx.check(&Demonstrate, t(5));
        assert_eq!(v.len(), 2, "empty history + no evidence");
        assert!(v.iter().any(|x| x.severity == Severity::Critical));
    }

    #[test]
    fn demonstrate_passes_on_empty_database() {
        let fx = Fx::new();
        assert!(fx.check(&Demonstrate, t(5)).is_empty());
    }

    #[test]
    fn tenant_isolation_vacuous_without_directory() {
        let mut fx = Fx::new();
        let _ = fx.collect_with_consent(1, t(0));
        assert!(fx.check(&TenantIsolation, t(5)).is_empty());
    }

    #[test]
    fn tenant_isolation_passes_on_clean_partition() {
        let mut fx = Fx::new();
        let _a = fx.collect_with_consent(1, t(0));
        let _b = fx.collect_with_consent(2, t(0));
        fx.tenants.assign(EntityId(1), TenantId(1));
        fx.tenants.assign(EntityId(2), TenantId(2));
        assert!(fx.check(&TenantIsolation, t(5)).is_empty());
    }

    #[test]
    fn tenant_isolation_flags_unit_spanning_tenants() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        // A second subject from another tenant attached to the same unit.
        fx.state.unit_mut(uid).unwrap().subjects.push(EntityId(2));
        fx.tenants.assign(EntityId(1), TenantId(1));
        fx.tenants.assign(EntityId(2), TenantId(2));
        let v = fx.check(&TenantIsolation, t(5));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].severity, Severity::Critical);
        assert!(v[0].message.contains("span"));
    }

    #[test]
    fn tenant_isolation_flags_cross_tenant_action() {
        let mut fx = Fx::new();
        let uid = fx.collect_with_consent(1, t(0));
        fx.tenants.assign(EntityId(1), TenantId(1));
        fx.tenants.assign(EntityId(9), TenantId(2));
        // Tenant 2's entity reads tenant 1's unit: an audit record leaked
        // across the partition.
        fx.history.record(HistoryTuple {
            unit: uid,
            purpose: wk::analytics(),
            entity: EntityId(9),
            action: Action::Read,
            at: t(3),
        });
        let v = fx.check(&TenantIsolation, t(5));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("tenant-2"));
        // The same action by an infrastructure entity (unassigned) is the
        // platform acting on the tenant's behalf: exempt.
        let mut ok = Fx::new();
        let uid2 = ok.collect_with_consent(1, t(0));
        ok.tenants.assign(EntityId(1), TenantId(1));
        ok.history.record(HistoryTuple {
            unit: uid2,
            purpose: wk::analytics(),
            entity: EntityId(50),
            action: Action::Read,
            at: t(3),
        });
        assert!(ok.check(&TenantIsolation, t(5)).is_empty());
    }
}
