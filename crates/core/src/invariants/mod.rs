//! Invariants: data regulations stated formally over Data-CASE concepts
//! (paper §2.2 and Figure 1).
//!
//! Figure 1 groups the GDPR's system-relevant articles into nine informal
//! invariants (I Disclosure … IX Demonstrate compliance); §2.2 formalises
//! two of them — G6 (lawful processing = policy consistency) and G17
//! (timely erasure). Each invariant here documents the *grounding* we chose
//! for its informal text: what exactly is checked against the model state
//! and history. Different groundings are possible — that is the paper's
//! point — and each struct's docs state ours precisely.

pub mod catalog;
pub mod g17;
pub mod g6;

use datacase_sim::time::Ts;

use crate::history::ActionHistory;
use crate::purpose::PurposeRegistry;
use crate::regulation::Regulation;
use crate::state::DatabaseState;
use crate::tenant::TenantDirectory;
use crate::violation::Violation;

/// Externally supplied evidence the model cannot derive by itself
/// (produced by the audit and engine layers).
#[derive(Clone, Copy, Debug, Default)]
pub struct EvidenceFlags {
    /// The audit log chain verified as tamper-evident (HMAC chain intact).
    pub audit_log_tamper_evident: bool,
    /// The deployment encrypts personal data at rest by default.
    pub encryption_at_rest_default: bool,
}

/// Everything an invariant may inspect.
#[derive(Clone, Copy)]
pub struct CheckContext<'a> {
    /// The abstract database state.
    pub state: &'a DatabaseState,
    /// The full action history.
    pub history: &'a ActionHistory,
    /// Grounded purposes.
    pub purposes: &'a PurposeRegistry,
    /// The regulation being checked against.
    pub regulation: &'a Regulation,
    /// The instant of the check.
    pub now: Ts,
    /// External evidence flags.
    pub evidence: EvidenceFlags,
    /// Entity → tenant assignments for served multi-tenant deployments
    /// (`None` or empty for single-tenant, in-process deployments).
    pub tenants: Option<&'a TenantDirectory>,
}

/// A checkable invariant.
pub trait Invariant: Send + Sync {
    /// Stable identifier ("I".."X", "G6", "G17").
    fn id(&self) -> &'static str;
    /// Short human-readable statement.
    fn statement(&self) -> &'static str;
    /// GDPR articles the invariant covers (Figure 1's bracketed lists).
    fn articles(&self) -> &'static [u8];
    /// Evaluate; empty result means the invariant holds.
    fn check(&self, ctx: &CheckContext<'_>) -> Vec<Violation>;
}

/// All invariants of the catalog plus the formal G6/G17, in display order.
pub fn full_catalog() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(catalog::Disclosure),
        Box::new(catalog::Storage),
        Box::new(catalog::PreProcessing),
        Box::new(catalog::SharingProcessing),
        Box::new(catalog::Erasure),
        Box::new(catalog::DesignSecurity),
        Box::new(catalog::RecordKeeping),
        Box::new(catalog::Obligations),
        Box::new(catalog::Demonstrate),
        Box::new(catalog::TenantIsolation),
        Box::new(g6::G6PolicyConsistency),
        Box::new(g17::G17TimelyErasure),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique_and_complete() {
        let cat = full_catalog();
        let ids: Vec<&str> = cat.iter().map(|i| i.id()).collect();
        let expected = [
            "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "G6", "G17",
        ];
        assert_eq!(ids, expected);
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn every_invariant_names_articles_and_statement() {
        for inv in full_catalog() {
            assert!(!inv.statement().is_empty(), "{}", inv.id());
            assert!(!inv.articles().is_empty(), "{}", inv.id());
        }
    }
}
