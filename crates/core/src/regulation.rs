//! Data regulations as parameter sets over the Data-CASE invariants.
//!
//! Data-CASE is regulation-agnostic: a regulation contributes (a) which
//! invariants it imposes, (b) the parameters those invariants are checked
//! with (erasure deadline, notification window, minimum erasure
//! interpretation), and (c) which actions it *requires* regardless of
//! policies (those are always policy-consistent, §2.1). GDPR member states
//! may tighten parameters, and other laws (CCPA, PIPEDA) pick different
//! ones — which is what the multinational example (§4.3) exercises.

use datacase_sim::time::Dur;

use crate::action::ActionKind;
use crate::grounding::erasure::ErasureInterpretation;
use crate::history::HistoryTuple;
use crate::purpose::well_known;

/// A regulation's checkable parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Regulation {
    /// Display name ("GDPR", "CCPA" …).
    pub name: String,
    /// The minimum erasure interpretation that satisfies the regulation's
    /// right to erasure (a deployment-level grounding choice; GDPR's text
    /// is ambiguous, which is the paper's point).
    pub min_erasure: ErasureInterpretation,
    /// "Without undue delay": the window between an erasure obligation
    /// falling due and the erase action.
    pub erase_grace: Dur,
    /// Window for notifying the subject after a breach/policy change
    /// (GDPR Art. 33: 72 hours).
    pub notification_window: Dur,
    /// Whether personal data must be encrypted at rest (our grounding of
    /// Art. 25/32 "data protection by design" for invariant VI).
    pub require_encryption_at_rest: bool,
    /// Whether a pre-processing assessment (Art. 35 DPIA) is required
    /// before a new purpose touches personal data.
    pub require_assessment: bool,
    /// Enforced invariant identifiers (subset of the catalog: "I".."X",
    /// "G6", "G17").
    pub invariants: Vec<&'static str>,
}

impl Regulation {
    /// A GDPR-flavoured parameterisation with the full catalog.
    pub fn gdpr() -> Regulation {
        Regulation {
            name: "GDPR".into(),
            min_erasure: ErasureInterpretation::Deleted,
            erase_grace: Dur::from_secs(72 * 3600),
            notification_window: Dur::from_secs(72 * 3600),
            require_encryption_at_rest: true,
            require_assessment: true,
            invariants: vec![
                "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "G6", "G17",
            ],
        }
    }

    /// A stricter member-state variant (shorter delays, strong deletion) —
    /// "GDPR itself allows EU member states to define their own data
    /// processing principles" (§4.3).
    pub fn gdpr_strict_member_state() -> Regulation {
        Regulation {
            name: "GDPR (strict member state)".into(),
            min_erasure: ErasureInterpretation::StronglyDeleted,
            erase_grace: Dur::from_secs(24 * 3600),
            notification_window: Dur::from_secs(24 * 3600),
            ..Regulation::gdpr()
        }
    }

    /// A PIPEDA-flavoured parameterisation (Canada): consent-centric,
    /// 30-day response window, no DPIA requirement, breach notification
    /// "as soon as feasible" (we ground it as 72 hours).
    pub fn pipeda() -> Regulation {
        Regulation {
            name: "PIPEDA".into(),
            min_erasure: ErasureInterpretation::Deleted,
            erase_grace: Dur::from_secs(30 * 24 * 3600),
            notification_window: Dur::from_secs(72 * 3600),
            require_encryption_at_rest: false,
            require_assessment: false,
            invariants: vec!["I", "II", "IV", "V", "VII", "VIII", "IX", "G6", "G17"],
        }
    }

    /// A CCPA-flavoured parameterisation: no DPIA requirement, weaker
    /// erasure (deletion of the business's copy), 45-day response window.
    pub fn ccpa() -> Regulation {
        Regulation {
            name: "CCPA".into(),
            min_erasure: ErasureInterpretation::Deleted,
            erase_grace: Dur::from_secs(45 * 24 * 3600),
            notification_window: Dur::from_secs(72 * 3600),
            require_encryption_at_rest: false,
            require_assessment: false,
            invariants: vec!["I", "II", "IV", "V", "VII", "IX", "G6", "G17"],
        }
    }

    /// Is the invariant enforced under this regulation?
    pub fn enforces(&self, invariant: &str) -> bool {
        self.invariants.contains(&invariant)
    }

    /// Actions the regulation *requires* irrespective of user policies;
    /// such history tuples are policy-consistent by definition (paper §2.1:
    /// "or the action in the tuple is required by a data regulation").
    ///
    /// We require: erasure/sanitisation under the `compliance-erase`
    /// purpose; consent/contract capture under the `contract` purpose
    /// (the paper's `CtrC1234` example — the contract action is what
    /// *establishes* the policies, so no policy can precede it); subject
    /// notifications; pre-processing assessments; and audit metadata reads
    /// under the `audit` purpose.
    pub fn requires_action(&self, tuple: &HistoryTuple) -> bool {
        match tuple.action.kind() {
            ActionKind::Erase | ActionKind::Sanitize => {
                tuple.purpose == well_known::compliance_erase()
            }
            ActionKind::Create | ActionKind::UpdatePolicy => {
                tuple.purpose == well_known::contract()
            }
            ActionKind::Notify => true,
            ActionKind::Assess => true,
            ActionKind::ReadMeta => tuple.purpose == well_known::audit(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{EntityId, UnitId};
    use datacase_sim::time::Ts;

    fn tup(action: Action, purpose: crate::purpose::PurposeId) -> HistoryTuple {
        HistoryTuple {
            unit: UnitId(1),
            purpose,
            entity: EntityId(1),
            action,
            at: Ts::from_secs(1),
        }
    }

    #[test]
    fn gdpr_enforces_full_catalog() {
        let g = Regulation::gdpr();
        for inv in ["I", "V", "IX", "G6", "G17"] {
            assert!(g.enforces(inv), "{inv}");
        }
        assert!(g.require_encryption_at_rest);
        assert!(g.require_assessment);
    }

    #[test]
    fn pipeda_enforces_obligations_but_not_dpia() {
        let p = Regulation::pipeda();
        assert!(p.enforces("VIII"), "breach notification");
        assert!(!p.enforces("III"), "no DPIA requirement");
        assert!(!p.require_encryption_at_rest);
        assert_eq!(p.min_erasure, ErasureInterpretation::Deleted);
    }

    #[test]
    fn ccpa_is_a_strict_subset_with_weaker_params() {
        let c = Regulation::ccpa();
        assert!(!c.enforces("III"));
        assert!(!c.enforces("VI"));
        assert!(c.enforces("G17"));
        assert!(!c.require_assessment);
        assert!(c.erase_grace > Regulation::gdpr().erase_grace);
    }

    #[test]
    fn strict_member_state_tightens() {
        let g = Regulation::gdpr();
        let s = Regulation::gdpr_strict_member_state();
        assert!(s.min_erasure.implies(g.min_erasure));
        assert!(s.erase_grace < g.erase_grace);
        assert_eq!(s.invariants, g.invariants);
    }

    #[test]
    fn compliance_erase_is_required_action() {
        let g = Regulation::gdpr();
        assert!(g.requires_action(&tup(
            Action::Erase(ErasureInterpretation::Deleted),
            well_known::compliance_erase()
        )));
        assert!(g.requires_action(&tup(Action::Sanitize, well_known::compliance_erase())));
        // Erase under a non-compliance purpose is NOT regulation-required.
        assert!(!g.requires_action(&tup(
            Action::Erase(ErasureInterpretation::Deleted),
            well_known::billing()
        )));
    }

    #[test]
    fn notifications_and_assessments_always_required() {
        let g = Regulation::gdpr();
        assert!(g.requires_action(&tup(Action::Notify, well_known::billing())));
        assert!(g.requires_action(&tup(Action::Assess, well_known::analytics())));
    }

    #[test]
    fn audit_reads_are_required_only_under_audit_purpose() {
        let g = Regulation::gdpr();
        assert!(g.requires_action(&tup(Action::ReadMeta, well_known::audit())));
        assert!(!g.requires_action(&tup(Action::ReadMeta, well_known::billing())));
        assert!(!g.requires_action(&tup(Action::Read, well_known::audit())));
    }
}
