//! The `V` aspect of a data unit: a time-ordered sequence of values
//! `{(v₁,t₁), (v₂,t₂), …}` (paper §2.1).

use datacase_sim::time::Ts;

/// A single value a data unit held at some time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Raw bytes (the common representation in the storage engines).
    Bytes(Vec<u8>),
    /// UTF-8 text.
    Text(String),
    /// A numeric reading (e.g. Mall sensor values).
    Number(i64),
    /// The value after erasure: nothing recoverable.
    Erased,
}

impl Value {
    /// Approximate payload size in bytes (for space accounting).
    pub fn size(&self) -> usize {
        match self {
            Value::Bytes(b) => b.len(),
            Value::Text(s) => s.len(),
            Value::Number(_) => 8,
            Value::Erased => 0,
        }
    }

    /// View as bytes where possible.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            Value::Text(s) => Some(s.as_bytes()),
            _ => None,
        }
    }

    /// Whether the value carries recoverable content.
    pub fn is_erased(&self) -> bool {
        matches!(self, Value::Erased)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Text(s.to_owned())
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Value {
        Value::Bytes(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n)
    }
}

/// The versioned value sequence of a unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VersionedValue {
    versions: Vec<(Ts, Value)>,
}

impl VersionedValue {
    /// Start with an initial value at `t0`.
    pub fn initial(t0: Ts, v: Value) -> VersionedValue {
        VersionedValue {
            versions: vec![(t0, v)],
        }
    }

    /// Append a new version at `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the latest version's timestamp — versions
    /// form a timeline and out-of-order writes would corrupt `V(t)`.
    pub fn write(&mut self, t: Ts, v: Value) {
        if let Some((last, _)) = self.versions.last() {
            assert!(*last <= t, "out-of-order version write: {last:?} > {t:?}");
        }
        self.versions.push((t, v));
    }

    /// `V(t)`: the value in effect at time `t` (the latest version with
    /// timestamp ≤ `t`).
    pub fn at(&self, t: Ts) -> Option<&Value> {
        self.versions
            .iter()
            .rev()
            .find(|(vt, _)| *vt <= t)
            .map(|(_, v)| v)
    }

    /// The current (latest) value.
    pub fn current(&self) -> Option<&Value> {
        self.versions.last().map(|(_, v)| v)
    }

    /// All versions in time order (for invariant VII record-keeping checks).
    pub fn versions(&self) -> &[(Ts, Value)] {
        &self.versions
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if the sequence has no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Total payload bytes across versions (space accounting).
    pub fn total_size(&self) -> usize {
        self.versions.iter().map(|(_, v)| v.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    #[test]
    fn versions_resolve_by_time() {
        let mut v = VersionedValue::initial(t(10), "a".into());
        v.write(t(20), "b".into());
        v.write(t(30), "c".into());
        assert_eq!(v.at(t(5)), None);
        assert_eq!(v.at(t(10)), Some(&Value::Text("a".into())));
        assert_eq!(v.at(t(25)), Some(&Value::Text("b".into())));
        assert_eq!(v.at(t(99)), Some(&Value::Text("c".into())));
        assert_eq!(v.current(), Some(&Value::Text("c".into())));
        assert_eq!(v.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_write_panics() {
        let mut v = VersionedValue::initial(t(10), "a".into());
        v.write(t(5), "b".into());
    }

    #[test]
    fn same_timestamp_write_allowed() {
        let mut v = VersionedValue::initial(t(10), "a".into());
        v.write(t(10), "b".into());
        assert_eq!(v.at(t(10)), Some(&Value::Text("b".into())));
    }

    #[test]
    fn sizes_account_payloads() {
        let mut v = VersionedValue::initial(t(0), Value::Bytes(vec![0; 100]));
        v.write(t(1), Value::Number(5));
        v.write(t(2), Value::Erased);
        assert_eq!(v.total_size(), 108);
        assert!(v.current().unwrap().is_erased());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x").size(), 1);
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::from(7i64), Value::Number(7));
        assert_eq!(Value::Number(7).as_bytes(), None);
    }
}
