//! Mapping grounded interpretations to **system-actions** (paper Figure 2
//! step ③ and Table 1's last column).
//!
//! A system-action is whatever the concrete backend offers: `DELETE` /
//! `VACUUM` / `VACUUM FULL` in the PostgreSQL-style heap, tombstone insert
//! and compaction in the LSM backend, key destruction in the crypto vault.
//! The mapping is *system dependent* — Data-CASE itself only states which
//! plan implements which interpretation, and the engine executes it.

use std::collections::HashMap;

use super::erasure::ErasureInterpretation;

/// The storage backend a plan targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Backend {
    /// PostgreSQL-style MVCC heap.
    Heap,
    /// LSM tree with tombstones (Cassandra-style).
    Lsm,
    /// Encrypted-at-rest store with per-unit keys (crypto-erasure).
    CryptoVault,
}

impl Backend {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Heap => "heap (PSQL-style)",
            Backend::Lsm => "LSM (Cassandra-style)",
            Backend::CryptoVault => "crypto-vault",
        }
    }
}

/// One primitive system-action the engine can execute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SystemAction {
    /// Set a `hidden` attribute on the row (plus partial index filtering).
    SetHiddenAttribute,
    /// Clear the `hidden` attribute (restore).
    ClearHiddenAttribute,
    /// SQL `DELETE` (marks the tuple dead; bytes remain on the page).
    Delete,
    /// Lazy `VACUUM` (reclaims dead tuples in place).
    Vacuum,
    /// `VACUUM FULL` (rewrites the table, physically dropping old pages).
    VacuumFull,
    /// Cascade the erasure to identifying derived units.
    CascadeToDerived,
    /// Delete the unit's log records (P_SYS does this on erase).
    DeleteLogs,
    /// Multi-pass overwrite of freed storage (drive sanitisation).
    SanitizeDrive,
    /// Insert an LSM tombstone.
    InsertTombstone,
    /// Force LSM compaction until the tombstone and shadowed versions drop.
    ForceCompaction,
    /// Destroy the unit's encryption key (crypto-erasure).
    DestroyKey,
}

impl SystemAction {
    /// The label the paper/engine uses for the action.
    pub fn label(self) -> &'static str {
        match self {
            SystemAction::SetHiddenAttribute => "ADD/SET hidden attribute",
            SystemAction::ClearHiddenAttribute => "CLEAR hidden attribute",
            SystemAction::Delete => "DELETE",
            SystemAction::Vacuum => "VACUUM",
            SystemAction::VacuumFull => "VACUUM FULL",
            SystemAction::CascadeToDerived => "CASCADE to identifying derived units",
            SystemAction::DeleteLogs => "DELETE unit's logs",
            SystemAction::SanitizeDrive => "SANITIZE (multi-pass overwrite)",
            SystemAction::InsertTombstone => "INSERT tombstone",
            SystemAction::ForceCompaction => "FORCE compaction",
            SystemAction::DestroyKey => "DESTROY per-unit key",
        }
    }
}

/// An ordered sequence of system-actions implementing one interpretation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SystemActionPlan {
    /// The actions, in execution order.
    pub actions: Vec<SystemAction>,
    /// Whether the backend natively supports the full plan (Table 1 notes
    /// "permanently delete: Not supported" for stock PSQL).
    pub natively_supported: bool,
}

impl SystemActionPlan {
    /// A supported plan from a list of actions.
    pub fn supported(actions: &[SystemAction]) -> SystemActionPlan {
        SystemActionPlan {
            actions: actions.to_vec(),
            natively_supported: true,
        }
    }

    /// A plan that requires retrofitting the system.
    pub fn retrofit(actions: &[SystemAction]) -> SystemActionPlan {
        SystemActionPlan {
            actions: actions.to_vec(),
            natively_supported: false,
        }
    }

    /// Render like the paper's "System-Action(s)" column.
    pub fn describe(&self) -> String {
        let joined = self
            .actions
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>()
            .join(" + ");
        if self.natively_supported {
            joined
        } else {
            format!("{joined} (requires retrofit)")
        }
    }
}

/// The grounding table: (backend, interpretation) → plan.
#[derive(Clone, Debug, Default)]
pub struct GroundingTable {
    plans: HashMap<(Backend, ErasureInterpretation), SystemActionPlan>,
}

impl GroundingTable {
    /// An empty table.
    pub fn new() -> GroundingTable {
        GroundingTable::default()
    }

    /// The table used throughout the reproduction, mirroring the paper's
    /// Table 1 for the heap backend and extending it with LSM and
    /// crypto-vault groundings.
    pub fn standard() -> GroundingTable {
        use Backend::*;
        use ErasureInterpretation::*;
        use SystemAction::*;
        let mut t = GroundingTable::new();
        // Heap (PSQL-style) — Table 1.
        t.set(
            Heap,
            ReversiblyInaccessible,
            SystemActionPlan::supported(&[SetHiddenAttribute]),
        );
        t.set(
            Heap,
            Deleted,
            SystemActionPlan::supported(&[Delete, Vacuum]),
        );
        t.set(
            Heap,
            StronglyDeleted,
            SystemActionPlan::supported(&[Delete, CascadeToDerived, VacuumFull]),
        );
        // Paper: "permanently delete: Not supported" in stock PSQL — our
        // engine retrofits it with a sanitisation pass + log deletion.
        t.set(
            Heap,
            PermanentlyDeleted,
            SystemActionPlan::retrofit(&[
                Delete,
                CascadeToDerived,
                VacuumFull,
                DeleteLogs,
                SanitizeDrive,
            ]),
        );
        // LSM backend.
        t.set(
            Lsm,
            ReversiblyInaccessible,
            SystemActionPlan::supported(&[SetHiddenAttribute]),
        );
        t.set(
            Lsm,
            Deleted,
            SystemActionPlan::supported(&[InsertTombstone, ForceCompaction]),
        );
        t.set(
            Lsm,
            StronglyDeleted,
            SystemActionPlan::supported(&[InsertTombstone, CascadeToDerived, ForceCompaction]),
        );
        t.set(
            Lsm,
            PermanentlyDeleted,
            SystemActionPlan::retrofit(&[
                InsertTombstone,
                CascadeToDerived,
                ForceCompaction,
                DeleteLogs,
                SanitizeDrive,
            ]),
        );
        // Crypto-vault: key destruction is a *permanent* erasure in one
        // step (the transformation becomes non-invertible for everyone).
        t.set(
            CryptoVault,
            PermanentlyDeleted,
            SystemActionPlan::supported(&[DestroyKey, CascadeToDerived, DeleteLogs]),
        );
        t
    }

    /// Set the plan for a (backend, interpretation) pair.
    pub fn set(&mut self, backend: Backend, interp: ErasureInterpretation, plan: SystemActionPlan) {
        self.plans.insert((backend, interp), plan);
    }

    /// The plan for a pair, if grounded.
    pub fn plan(
        &self,
        backend: Backend,
        interp: ErasureInterpretation,
    ) -> Option<&SystemActionPlan> {
        self.plans.get(&(backend, interp))
    }

    /// All interpretations grounded for a backend, in restrictiveness order.
    pub fn grounded_for(&self, backend: Backend) -> Vec<ErasureInterpretation> {
        ErasureInterpretation::ALL
            .into_iter()
            .filter(|i| self.plans.contains_key(&(backend, *i)))
            .collect()
    }

    /// Number of grounded pairs.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True if no grounding is present.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_matches_paper_heap_column() {
        let t = GroundingTable::standard();
        let del = t
            .plan(Backend::Heap, ErasureInterpretation::Deleted)
            .unwrap();
        assert_eq!(del.describe(), "DELETE + VACUUM");
        let sd = t
            .plan(Backend::Heap, ErasureInterpretation::StronglyDeleted)
            .unwrap();
        assert!(sd.describe().contains("VACUUM FULL"));
        let pd = t
            .plan(Backend::Heap, ErasureInterpretation::PermanentlyDeleted)
            .unwrap();
        assert!(!pd.natively_supported, "paper: not supported in stock PSQL");
        assert!(pd.describe().contains("requires retrofit"));
    }

    #[test]
    fn reversible_uses_attribute() {
        let t = GroundingTable::standard();
        let ri = t
            .plan(Backend::Heap, ErasureInterpretation::ReversiblyInaccessible)
            .unwrap();
        assert_eq!(ri.actions, vec![SystemAction::SetHiddenAttribute]);
    }

    #[test]
    fn lsm_grounding_uses_tombstones() {
        let t = GroundingTable::standard();
        let del = t
            .plan(Backend::Lsm, ErasureInterpretation::Deleted)
            .unwrap();
        assert!(del.actions.contains(&SystemAction::InsertTombstone));
        assert!(del.actions.contains(&SystemAction::ForceCompaction));
    }

    #[test]
    fn crypto_vault_grounds_permanent_only() {
        let t = GroundingTable::standard();
        assert_eq!(
            t.grounded_for(Backend::CryptoVault),
            vec![ErasureInterpretation::PermanentlyDeleted]
        );
    }

    #[test]
    fn grounded_for_is_ordered_by_restrictiveness() {
        let t = GroundingTable::standard();
        let heap = t.grounded_for(Backend::Heap);
        assert_eq!(heap, ErasureInterpretation::ALL.to_vec());
    }

    #[test]
    fn custom_grounding_overrides() {
        let mut t = GroundingTable::standard();
        t.set(
            Backend::Heap,
            ErasureInterpretation::Deleted,
            SystemActionPlan::supported(&[SystemAction::Delete]),
        );
        assert_eq!(
            t.plan(Backend::Heap, ErasureInterpretation::Deleted)
                .unwrap()
                .describe(),
            "DELETE"
        );
    }
}
