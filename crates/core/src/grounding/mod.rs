//! Grounding: mapping an ambiguous concept to a unique, formally stated
//! interpretation, then to system-actions (paper §3, Figure 2).
//!
//! The paper works erasure end to end; this module does the same:
//! * [`erasure`] — the four interpretations and their restrictiveness order;
//! * [`properties`] — the three characterising properties (IR, II, Inv) and
//!   the expected matrix of Table 1;
//! * [`table`] — per-backend system-action plans implementing each
//!   interpretation (Table 1's last column), for the PostgreSQL-style heap,
//!   the LSM backend, and the crypto-erasure alternative.

pub mod erasure;
pub mod properties;
pub mod table;

pub use erasure::ErasureInterpretation;
pub use properties::{ErasureProperties, PropertyProbe};
pub use table::{Backend, GroundingTable, SystemAction, SystemActionPlan};
