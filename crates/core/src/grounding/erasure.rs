//! The four interpretations of data erasure (paper §3.1) and their
//! restrictiveness lattice (here a chain): strong deletion implies
//! deletion, etc.

/// An interpretation of "erase" a system may choose to support.
///
/// ```
/// use datacase_core::grounding::erasure::ErasureInterpretation::*;
///
/// // The paper's restrictiveness ordering: "strongly delete implies delete".
/// assert!(StronglyDeleted.implies(Deleted));
/// assert!(!Deleted.implies(StronglyDeleted));
/// assert!(PermanentlyDeleted.implies(ReversiblyInaccessible));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErasureInterpretation {
    /// Data cannot be read by data-subjects but remains accessible to the
    /// controller/processor and can be restored by a specific action.
    ReversiblyInaccessible,
    /// The data and all its copies physically erased.
    Deleted,
    /// Deleted, plus all dependent data where the subject is identifiable.
    StronglyDeleted,
    /// Strongly deleted, plus advanced physical drive sanitisation.
    PermanentlyDeleted,
}

impl ErasureInterpretation {
    /// All interpretations, in increasing restrictiveness.
    pub const ALL: [ErasureInterpretation; 4] = [
        ErasureInterpretation::ReversiblyInaccessible,
        ErasureInterpretation::Deleted,
        ErasureInterpretation::StronglyDeleted,
        ErasureInterpretation::PermanentlyDeleted,
    ];

    /// Restrictiveness rank, 1..=4.
    pub fn rank(self) -> u8 {
        match self {
            ErasureInterpretation::ReversiblyInaccessible => 1,
            ErasureInterpretation::Deleted => 2,
            ErasureInterpretation::StronglyDeleted => 3,
            ErasureInterpretation::PermanentlyDeleted => 4,
        }
    }

    /// `self` implies `other` iff `self` is at least as restrictive
    /// ("strongly delete implies delete", paper §3.1).
    pub fn implies(self, other: ErasureInterpretation) -> bool {
        self.rank() >= other.rank()
    }

    /// Paper's row label in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            ErasureInterpretation::ReversiblyInaccessible => "reversibly inaccessible",
            ErasureInterpretation::Deleted => "delete",
            ErasureInterpretation::StronglyDeleted => "strong delete",
            ErasureInterpretation::PermanentlyDeleted => "permanently delete",
        }
    }
}

impl PartialOrd for ErasureInterpretation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ErasureInterpretation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl std::fmt::Display for ErasureInterpretation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restrictiveness_chain_holds() {
        use ErasureInterpretation::*;
        assert!(StronglyDeleted.implies(Deleted));
        assert!(Deleted.implies(ReversiblyInaccessible));
        assert!(PermanentlyDeleted.implies(StronglyDeleted));
        assert!(!Deleted.implies(StronglyDeleted));
        assert!(!ReversiblyInaccessible.implies(Deleted));
    }

    #[test]
    fn implies_is_reflexive_and_transitive() {
        for a in ErasureInterpretation::ALL {
            assert!(a.implies(a));
            for b in ErasureInterpretation::ALL {
                for c in ErasureInterpretation::ALL {
                    if a.implies(b) && b.implies(c) {
                        assert!(a.implies(c));
                    }
                }
            }
        }
    }

    #[test]
    fn ordering_matches_rank() {
        use ErasureInterpretation::*;
        assert!(ReversiblyInaccessible < Deleted);
        assert!(Deleted < StronglyDeleted);
        assert!(StronglyDeleted < PermanentlyDeleted);
        let mut v = vec![
            PermanentlyDeleted,
            ReversiblyInaccessible,
            StronglyDeleted,
            Deleted,
        ];
        v.sort();
        assert_eq!(v, ErasureInterpretation::ALL.to_vec());
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(
            ErasureInterpretation::ReversiblyInaccessible.label(),
            "reversibly inaccessible"
        );
        assert_eq!(
            ErasureInterpretation::StronglyDeleted.label(),
            "strong delete"
        );
    }
}
