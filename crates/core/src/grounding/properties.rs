//! The three properties that ground erasure interpretations (paper §3.1):
//!
//! * **Erasure-inconsistent read (IR)** — a read of `X` at a time when
//!   `P(t) = ∅` (no policy authorised it).
//! * **Erasure-inconsistent inference (II)** — `X` was erased but can still
//!   be inferred: from dependent/provenance data, or from physical
//!   residuals (dead tuples, old SSTable runs, logs).
//! * **Transformation invertibility (Inv)** — the transformation applied to
//!   prevent reads (hiding, encryption, zeroing) is reversible.
//!
//! Table 1's characterisation is encoded in [`ErasureProperties::expected`];
//! [`PropertyProbe`] carries the empirical result measured on a concrete
//! backend so the `repro table1` harness can print expected vs measured.

use super::erasure::ErasureInterpretation;

/// The (IR, II, Inv) feasibility triple for one interpretation.
/// `true` = the phenomenon is feasible/possible under that interpretation
/// (the paper's ✓).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ErasureProperties {
    /// Can an erasure-inconsistent read occur?
    pub illegal_read: bool,
    /// Can the erased data still be inferred?
    pub illegal_inference: bool,
    /// Is the transformation invertible (data recoverable by design)?
    pub invertible: bool,
}

impl ErasureProperties {
    /// Table 1's expected matrix.
    ///
    /// | erasure                | IR | II | Inv |
    /// |------------------------|----|----|-----|
    /// | reversibly inaccessible| ×  | ✓  | ✓   |
    /// | delete                 | ×  | ✓  | ×   |
    /// | strong delete          | ×  | ×  | ×   |
    /// | permanently delete     | ×  | ×  | ×   |
    ///
    /// IR is infeasible under every interpretation *provided the system
    /// enforces policies on every read path* — which is exactly what the
    /// engine's policy middleware guarantees and the probe verifies.
    /// Plain delete leaves II feasible because dependent/derived data (and
    /// physical residuals) survive; strong/permanent deletion remove them.
    pub fn expected(interp: ErasureInterpretation) -> ErasureProperties {
        match interp {
            ErasureInterpretation::ReversiblyInaccessible => ErasureProperties {
                illegal_read: false,
                illegal_inference: true,
                invertible: true,
            },
            ErasureInterpretation::Deleted => ErasureProperties {
                illegal_read: false,
                illegal_inference: true,
                invertible: false,
            },
            ErasureInterpretation::StronglyDeleted | ErasureInterpretation::PermanentlyDeleted => {
                ErasureProperties {
                    illegal_read: false,
                    illegal_inference: false,
                    invertible: false,
                }
            }
        }
    }

    /// Render as the paper's ✓/× cells, in (IR, II, Inv) order.
    pub fn cells(&self) -> [&'static str; 3] {
        let mark = |b: bool| if b { "✓" } else { "×" };
        [
            mark(self.illegal_read),
            mark(self.illegal_inference),
            mark(self.invertible),
        ]
    }
}

/// An empirical measurement of the three properties on a live backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyProbe {
    /// The interpretation that was exercised.
    pub interpretation: ErasureInterpretation,
    /// Measured (IR, II, Inv).
    pub measured: ErasureProperties,
    /// Free-form notes from the probe (what residuals were found, etc.).
    pub notes: Vec<String>,
}

impl PropertyProbe {
    /// Does the measurement match Table 1's expectation?
    pub fn matches_expected(&self) -> bool {
        self.measured == ErasureProperties::expected(self.interpretation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_table_1() {
        use ErasureInterpretation::*;
        let ri = ErasureProperties::expected(ReversiblyInaccessible);
        assert!(!ri.illegal_read && ri.illegal_inference && ri.invertible);
        let del = ErasureProperties::expected(Deleted);
        assert!(!del.illegal_read && del.illegal_inference && !del.invertible);
        let sd = ErasureProperties::expected(StronglyDeleted);
        assert!(!sd.illegal_read && !sd.illegal_inference && !sd.invertible);
        let pd = ErasureProperties::expected(PermanentlyDeleted);
        assert_eq!(sd, pd, "strong and permanent share the property triple");
    }

    #[test]
    fn stricter_interpretations_never_add_feasibility() {
        // Monotonicity: as restrictiveness grows, each property can only go
        // from feasible to infeasible.
        let all: Vec<_> = ErasureInterpretation::ALL
            .iter()
            .map(|&i| ErasureProperties::expected(i))
            .collect();
        for w in all.windows(2) {
            assert!(w[0].illegal_read || !w[1].illegal_read);
            assert!(w[0].illegal_inference || !w[1].illegal_inference);
            assert!(w[0].invertible || !w[1].invertible);
        }
    }

    #[test]
    fn cells_render_checkmarks() {
        let p = ErasureProperties::expected(ErasureInterpretation::ReversiblyInaccessible);
        assert_eq!(p.cells(), ["×", "✓", "✓"]);
    }

    #[test]
    fn probe_match_detection() {
        let ok = PropertyProbe {
            interpretation: ErasureInterpretation::Deleted,
            measured: ErasureProperties::expected(ErasureInterpretation::Deleted),
            notes: vec![],
        };
        assert!(ok.matches_expected());
        let bad = PropertyProbe {
            interpretation: ErasureInterpretation::StronglyDeleted,
            measured: ErasureProperties {
                illegal_read: false,
                illegal_inference: true, // residuals found!
                invertible: false,
            },
            notes: vec!["raw page residual at page 3".into()],
        };
        assert!(!bad.matches_expected());
    }
}
