//! Purposes of data processing (paper §2.1 and §3.2).
//!
//! A purpose names the task or service collected data is used for; the
//! paper's example: Netflix collects credit cards *for billing* and viewing
//! history *for targeted advertising*. Grounding a purpose (paper §3.2)
//! means fixing the set of action kinds it authorises — e.g. *billing*
//! allows reading and processing the card with the bank but not sharing it
//! with a third party. [`PurposeRegistry`] holds those grounded authorisations.

use std::collections::HashMap;

use crate::action::ActionKind;
use crate::intern::Symbol;

/// An interned purpose name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PurposeId(Symbol);

impl PurposeId {
    /// Intern a purpose by name.
    pub fn new(name: &str) -> PurposeId {
        PurposeId(Symbol::intern(name))
    }

    /// The purpose's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }
}

impl std::fmt::Debug for PurposeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Purpose({})", self.name())
    }
}

impl std::fmt::Display for PurposeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Well-known purposes used throughout the paper's examples and the
/// benchmark workloads.
pub mod well_known {
    use super::PurposeId;

    /// Billing / payment processing (the Netflix running example).
    pub fn billing() -> PurposeId {
        PurposeId::new("billing")
    }
    /// Retention by a storage processor (the AWS running example).
    pub fn retention() -> PurposeId {
        PurposeId::new("retention")
    }
    /// Targeted advertising.
    pub fn advertising() -> PurposeId {
        PurposeId::new("advertising")
    }
    /// Analytics over (possibly derived) data.
    pub fn analytics() -> PurposeId {
        PurposeId::new("analytics")
    }
    /// The special purpose G17 hinges on: erase-by-deadline obligations.
    pub fn compliance_erase() -> PurposeId {
        PurposeId::new("compliance-erase")
    }
    /// Contract formation / consent capture ("comp" in the paper's
    /// action-history example).
    pub fn contract() -> PurposeId {
        PurposeId::new("contract")
    }
    /// Audit access by a supervisory authority or internal auditor.
    pub fn audit() -> PurposeId {
        PurposeId::new("audit")
    }
    /// Smart-space service provision (the MetaSpace example).
    pub fn smart_space() -> PurposeId {
        PurposeId::new("smart-space")
    }
    /// The data-subject exercising their own rights (access, rectification,
    /// erasure requests) — what invariant II requires storage to support.
    pub fn subject_access() -> PurposeId {
        PurposeId::new("subject-access")
    }
}

/// A grounded purpose: which action kinds it authorises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PurposeGrounding {
    /// The purpose being grounded.
    pub purpose: PurposeId,
    /// The action kinds the purpose authorises.
    pub allowed: Vec<ActionKind>,
}

/// Registry of grounded purposes.
///
/// A purpose not present in the registry is *ungrounded*: the model then
/// falls back to authorising every action kind (matching the paper's
/// observation that ungrounded concepts admit many interpretations — the
/// registry is how a deployment pins one down).
#[derive(Clone, Debug, Default)]
pub struct PurposeRegistry {
    groundings: HashMap<PurposeId, Vec<ActionKind>>,
}

impl PurposeRegistry {
    /// An empty registry (all purposes ungrounded).
    pub fn new() -> PurposeRegistry {
        PurposeRegistry::default()
    }

    /// A registry with sensible groundings for the well-known purposes.
    pub fn with_defaults() -> PurposeRegistry {
        use well_known as wk;
        let mut r = PurposeRegistry::new();
        r.ground(wk::billing(), &[ActionKind::Read, ActionKind::ReadMeta]);
        r.ground(
            wk::retention(),
            &[
                ActionKind::Read,
                ActionKind::UpdateValue,
                ActionKind::ReadMeta,
            ],
        );
        r.ground(
            wk::advertising(),
            &[ActionKind::Read, ActionKind::Derive, ActionKind::ReadMeta],
        );
        r.ground(
            wk::analytics(),
            &[ActionKind::Read, ActionKind::Derive, ActionKind::ReadMeta],
        );
        r.ground(
            wk::compliance_erase(),
            &[
                ActionKind::Erase,
                ActionKind::Sanitize,
                ActionKind::ReadMeta,
            ],
        );
        r.ground(
            wk::contract(),
            &[
                ActionKind::Create,
                ActionKind::UpdatePolicy,
                ActionKind::ReadMeta,
                ActionKind::UpdateMeta,
            ],
        );
        r.ground(wk::audit(), &[ActionKind::ReadMeta]);
        r.ground(
            wk::subject_access(),
            &[
                ActionKind::Read,
                ActionKind::ReadMeta,
                ActionKind::UpdateValue,
                ActionKind::UpdatePolicy,
                ActionKind::Erase,
                ActionKind::Restore,
            ],
        );
        r.ground(
            wk::smart_space(),
            &[
                ActionKind::Read,
                ActionKind::UpdateValue,
                ActionKind::ReadMeta,
                ActionKind::UpdateMeta,
                ActionKind::Derive,
            ],
        );
        r
    }

    /// Ground `purpose` to the given allowed action kinds (replaces any
    /// previous grounding).
    pub fn ground(&mut self, purpose: PurposeId, allowed: &[ActionKind]) {
        self.groundings.insert(purpose, allowed.to_vec());
    }

    /// Is `kind` authorised under `purpose`? Ungrounded purposes authorise
    /// everything (see type-level docs).
    pub fn authorises(&self, purpose: PurposeId, kind: ActionKind) -> bool {
        match self.groundings.get(&purpose) {
            Some(allowed) => allowed.contains(&kind),
            None => true,
        }
    }

    /// Whether the purpose has been grounded.
    pub fn is_grounded(&self, purpose: PurposeId) -> bool {
        self.groundings.contains_key(&purpose)
    }

    /// The grounding for a purpose, if any.
    pub fn grounding(&self, purpose: PurposeId) -> Option<PurposeGrounding> {
        self.groundings
            .get(&purpose)
            .map(|allowed| PurposeGrounding {
                purpose,
                allowed: allowed.clone(),
            })
    }

    /// Number of grounded purposes.
    pub fn len(&self) -> usize {
        self.groundings.len()
    }

    /// True if no purpose has been grounded.
    pub fn is_empty(&self) -> bool {
        self.groundings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purpose_identity_is_by_name() {
        assert_eq!(PurposeId::new("billing"), well_known::billing());
        assert_ne!(well_known::billing(), well_known::retention());
        assert_eq!(well_known::billing().name(), "billing");
    }

    #[test]
    fn default_groundings_restrict_billing() {
        let r = PurposeRegistry::with_defaults();
        assert!(r.authorises(well_known::billing(), ActionKind::Read));
        assert!(!r.authorises(well_known::billing(), ActionKind::Share));
        assert!(!r.authorises(well_known::billing(), ActionKind::Erase));
    }

    #[test]
    fn ungrounded_purpose_authorises_everything() {
        let r = PurposeRegistry::new();
        let p = PurposeId::new("novel-purpose");
        assert!(!r.is_grounded(p));
        assert!(r.authorises(p, ActionKind::Share));
        assert!(r.authorises(p, ActionKind::Erase));
    }

    #[test]
    fn regrounding_replaces() {
        let mut r = PurposeRegistry::new();
        let p = PurposeId::new("p-test-reground");
        r.ground(p, &[ActionKind::Read]);
        assert!(!r.authorises(p, ActionKind::Share));
        r.ground(p, &[ActionKind::Share]);
        assert!(r.authorises(p, ActionKind::Share));
        assert!(!r.authorises(p, ActionKind::Read));
        assert_eq!(r.grounding(p).unwrap().allowed, vec![ActionKind::Share]);
    }

    #[test]
    fn compliance_erase_authorises_erasure_only_paths() {
        let r = PurposeRegistry::with_defaults();
        let p = well_known::compliance_erase();
        assert!(r.authorises(p, ActionKind::Erase));
        assert!(r.authorises(p, ActionKind::Sanitize));
        assert!(!r.authorises(p, ActionKind::Read));
    }
}
