//! Identifier newtypes shared across the model.

/// Identifies an entity (data-subject, controller, processor, auditor …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct EntityId(pub u32);

/// Identifies a data unit — the finest granularity at which Data-CASE
/// refers to data (paper §2.1). What one unit *is* depends on the system:
/// a user's click-stream, a camera interval, a credit-card record.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct UnitId(pub u64);

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl UnitId {
    /// The next sequential unit id (allocation helper for registries).
    pub fn next(self) -> UnitId {
        UnitId(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", EntityId(3)), "e3");
        assert_eq!(format!("{}", UnitId(9)), "x9");
    }

    #[test]
    fn next_increments() {
        assert_eq!(UnitId(0).next(), UnitId(1));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(UnitId(1) < UnitId(2));
        assert!(EntityId(1) < EntityId(2));
    }
}
