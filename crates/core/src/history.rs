//! Action histories: the paper's `(X, p, e, τ(X), t)` tuples and `H(X)`
//! (paper §2.1), plus the policy-consistency predicate (the formal core of
//! G6).

use std::collections::HashMap;

use datacase_sim::time::Ts;

use crate::action::Action;
use crate::ids::{EntityId, UnitId};
use crate::purpose::{PurposeId, PurposeRegistry};
use crate::regulation::Regulation;
use crate::state::DatabaseState;

/// One action-history tuple: entity `e` performed `τ` on unit `X` for
/// purpose `p` at time `t`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryTuple {
    /// The unit acted upon.
    pub unit: UnitId,
    /// The purpose claimed for the action.
    pub purpose: PurposeId,
    /// The acting entity.
    pub entity: EntityId,
    /// The action.
    pub action: Action,
    /// When it happened.
    pub at: Ts,
}

impl std::fmt::Display for HistoryTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}, {})",
            self.unit, self.purpose, self.entity, self.action, self.at
        )
    }
}

/// A collection of action-history tuples with a per-unit index.
///
/// `H(X)` is [`ActionHistory::of_unit`]. The history is append-only, in
/// non-decreasing time order.
#[derive(Clone, Debug, Default)]
pub struct ActionHistory {
    tuples: Vec<HistoryTuple>,
    by_unit: HashMap<UnitId, Vec<u32>>,
}

impl ActionHistory {
    /// An empty history.
    pub fn new() -> ActionHistory {
        ActionHistory::default()
    }

    /// Append a tuple.
    ///
    /// # Panics
    /// Panics if `t.at` precedes the last recorded time (histories are
    /// time-ordered evidence; out-of-order records would invalidate audits).
    pub fn record(&mut self, t: HistoryTuple) {
        if let Some(last) = self.tuples.last() {
            assert!(
                last.at <= t.at,
                "history must be time-ordered: {:?} after {:?}",
                t.at,
                last.at
            );
        }
        self.by_unit
            .entry(t.unit)
            .or_default()
            .push(self.tuples.len() as u32);
        self.tuples.push(t);
    }

    /// `H(X)`: all tuples for `unit`, in time order.
    pub fn of_unit(&self, unit: UnitId) -> Vec<&HistoryTuple> {
        self.by_unit
            .get(&unit)
            .map(|idxs| idxs.iter().map(|&i| &self.tuples[i as usize]).collect())
            .unwrap_or_default()
    }

    /// The last tuple for `unit`, if any.
    pub fn last_of_unit(&self, unit: UnitId) -> Option<&HistoryTuple> {
        self.by_unit
            .get(&unit)
            .and_then(|idxs| idxs.last())
            .map(|&i| &self.tuples[i as usize])
    }

    /// The last tuple for `unit` matching `pred`.
    pub fn last_matching(
        &self,
        unit: UnitId,
        pred: impl Fn(&HistoryTuple) -> bool,
    ) -> Option<&HistoryTuple> {
        self.by_unit.get(&unit).and_then(|idxs| {
            idxs.iter()
                .rev()
                .map(|&i| &self.tuples[i as usize])
                .find(|t| pred(t))
        })
    }

    /// All tuples, in time order.
    pub fn iter(&self) -> impl Iterator<Item = &HistoryTuple> {
        self.tuples.iter()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Policy-consistency of one tuple (paper §2.1):
    ///
    /// a tuple `(X, p, e, τ(X), t)` is policy-consistent iff
    /// * there is a policy `⟨p, e, t_b, t_f⟩ ∈ P(t)` of `X` whose grounded
    ///   purpose authorises `τ`'s kind, **or**
    /// * the action is required by the data regulation (e.g. erasure under
    ///   `compliance-erase`, breach notification).
    pub fn policy_consistent(
        tuple: &HistoryTuple,
        state: &DatabaseState,
        purposes: &PurposeRegistry,
        regulation: &Regulation,
    ) -> bool {
        if regulation.requires_action(tuple) {
            return true;
        }
        let Some(unit) = state.unit(tuple.unit) else {
            // An action on a unit the state never knew is inconsistent by
            // definition — there is no policy that could authorise it.
            return false;
        };
        unit.policies
            .authorises(tuple.purpose, tuple.entity, tuple.at)
            && purposes.authorises(tuple.purpose, tuple.action.kind())
    }

    /// Are **all** actions on `unit` policy-consistent (the per-unit form
    /// used by G6)?
    pub fn unit_policy_consistent(
        &self,
        unit: UnitId,
        state: &DatabaseState,
        purposes: &PurposeRegistry,
        regulation: &Regulation,
    ) -> bool {
        self.of_unit(unit)
            .iter()
            .all(|t| Self::policy_consistent(t, state, purposes, regulation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::policy::Policy;
    use crate::purpose::well_known as wk;
    use crate::unit::Origin;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn tup(unit: u64, purpose: PurposeId, entity: u32, action: Action, at: Ts) -> HistoryTuple {
        HistoryTuple {
            unit: UnitId(unit),
            purpose,
            entity: EntityId(entity),
            action,
            at,
        }
    }

    #[test]
    fn per_unit_index_works() {
        let mut h = ActionHistory::new();
        h.record(tup(1, wk::billing(), 1, Action::Create, t(1)));
        h.record(tup(2, wk::billing(), 1, Action::Create, t(2)));
        h.record(tup(1, wk::billing(), 1, Action::Read, t(3)));
        assert_eq!(h.of_unit(UnitId(1)).len(), 2);
        assert_eq!(h.of_unit(UnitId(2)).len(), 1);
        assert_eq!(h.last_of_unit(UnitId(1)).unwrap().action, Action::Read);
        assert!(h.of_unit(UnitId(9)).is_empty());
        assert_eq!(h.len(), 3);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_record_panics() {
        let mut h = ActionHistory::new();
        h.record(tup(1, wk::billing(), 1, Action::Create, t(5)));
        h.record(tup(1, wk::billing(), 1, Action::Read, t(4)));
    }

    #[test]
    fn last_matching_filters() {
        let mut h = ActionHistory::new();
        h.record(tup(1, wk::billing(), 1, Action::Create, t(1)));
        h.record(tup(1, wk::billing(), 1, Action::Read, t(2)));
        h.record(tup(1, wk::billing(), 1, Action::Read, t(3)));
        let last_create = h.last_matching(UnitId(1), |t| t.action == Action::Create);
        assert_eq!(last_create.unwrap().at, t(1));
    }

    #[test]
    fn policy_consistency_respects_policies_and_groundings() {
        let mut state = DatabaseState::new();
        let purposes = PurposeRegistry::with_defaults();
        let regulation = Regulation::gdpr();
        let netflix = EntityId(1);
        let uid = state.collect(EntityId(7), Origin::Subject(EntityId(7)), "cc".into(), t(0));
        state
            .unit_mut(uid)
            .unwrap()
            .policies
            .grant(Policy::new(wk::billing(), netflix, t(0), t(100)), t(0));

        // Authorised read within window.
        let ok = tup(uid.0, wk::billing(), 1, Action::Read, t(10));
        assert!(ActionHistory::policy_consistent(
            &ok,
            &state,
            &purposes,
            &regulation
        ));

        // Outside the window: inconsistent.
        let late = tup(uid.0, wk::billing(), 1, Action::Read, t(150));
        assert!(!ActionHistory::policy_consistent(
            &late,
            &state,
            &purposes,
            &regulation
        ));

        // Right purpose+entity but the grounding forbids Share under billing.
        let share = tup(
            uid.0,
            wk::billing(),
            1,
            Action::Share { with: EntityId(9) },
            t(10),
        );
        assert!(!ActionHistory::policy_consistent(
            &share,
            &state,
            &purposes,
            &regulation
        ));

        // Unknown unit: inconsistent.
        let ghost = tup(999, wk::billing(), 1, Action::Read, t(10));
        assert!(!ActionHistory::policy_consistent(
            &ghost,
            &state,
            &purposes,
            &regulation
        ));
    }

    #[test]
    fn regulation_required_actions_are_always_consistent() {
        let mut state = DatabaseState::new();
        let purposes = PurposeRegistry::with_defaults();
        let regulation = Regulation::gdpr();
        let uid = state.collect(EntityId(7), Origin::Subject(EntityId(7)), "cc".into(), t(0));
        // No policy at all, but erase-for-compliance is regulation-required.
        let erase = tup(
            uid.0,
            wk::compliance_erase(),
            1,
            Action::Erase(crate::grounding::erasure::ErasureInterpretation::Deleted),
            t(10),
        );
        assert!(ActionHistory::policy_consistent(
            &erase,
            &state,
            &purposes,
            &regulation
        ));
    }

    #[test]
    fn unit_policy_consistency_is_conjunction() {
        let mut state = DatabaseState::new();
        let purposes = PurposeRegistry::with_defaults();
        let regulation = Regulation::gdpr();
        let uid = state.collect(EntityId(7), Origin::Subject(EntityId(7)), "cc".into(), t(0));
        state
            .unit_mut(uid)
            .unwrap()
            .policies
            .grant(Policy::new(wk::billing(), EntityId(1), t(0), t(100)), t(0));
        let mut h = ActionHistory::new();
        h.record(tup(uid.0, wk::billing(), 1, Action::Read, t(10)));
        assert!(h.unit_policy_consistent(uid, &state, &purposes, &regulation));
        h.record(tup(uid.0, wk::billing(), 2, Action::Read, t(20))); // e2 unauthorised
        assert!(!h.unit_policy_consistent(uid, &state, &purposes, &regulation));
    }

    #[test]
    fn display_shows_paper_tuple_form() {
        let s = format!("{}", tup(1, wk::billing(), 2, Action::Read, t(3)));
        assert!(s.starts_with("(x1, billing, e2, read,"));
    }
}
