//! The abstract database state: "the collection of the states of all data
//! units in the database" (paper §2.1).

use std::collections::HashMap;

use datacase_sim::time::Ts;

use crate::ids::{EntityId, UnitId};
use crate::policy::PolicySet;
use crate::provenance::{Derivation, ProvenanceGraph};
use crate::unit::{DataUnit, ErasureStatus, Origin};
use crate::value::Value;

/// The model-level database: data units plus their provenance.
///
/// This is Data-CASE's *abstract* view of a system — engines (the heap or
/// LSM backends) hold the physical bytes, and the compliance checker
/// compares the two. The state is also directly usable on its own, which is
/// how the examples demonstrate the framework without a storage engine.
#[derive(Clone, Debug, Default)]
pub struct DatabaseState {
    units: HashMap<UnitId, DataUnit>,
    provenance: ProvenanceGraph,
    next_unit: u64,
}

impl DatabaseState {
    /// An empty state.
    pub fn new() -> DatabaseState {
        DatabaseState::default()
    }

    /// Allocate the next unit id.
    pub fn allocate_unit_id(&mut self) -> UnitId {
        let id = UnitId(self.next_unit);
        self.next_unit += 1;
        id
    }

    /// Collect a new base unit for `subject` with initial `value`.
    pub fn collect(&mut self, subject: EntityId, origin: Origin, value: Value, now: Ts) -> UnitId {
        let id = self.allocate_unit_id();
        self.units
            .insert(id, DataUnit::base(id, subject, origin, value, now));
        id
    }

    /// Insert a pre-built unit (used by derivations and tests).
    ///
    /// # Panics
    /// Panics if the id is already present.
    pub fn insert(&mut self, unit: DataUnit) {
        assert!(
            !self.units.contains_key(&unit.id),
            "unit {} already present",
            unit.id
        );
        self.next_unit = self.next_unit.max(unit.id.0 + 1);
        self.units.insert(unit.id, unit);
    }

    /// Derive a new unit from `inputs` with the given dependency function.
    ///
    /// Subjects and origin aggregate over the inputs; policies are the
    /// restriction (intersection) of the inputs' active policies, as §2.1
    /// prescribes for derived data.
    pub fn derive(
        &mut self,
        inputs: &[UnitId],
        func: &str,
        invertible: bool,
        identifying: bool,
        value: Value,
        now: Ts,
    ) -> UnitId {
        assert!(!inputs.is_empty(), "derivation needs at least one input");
        let mut subjects: Vec<EntityId> = Vec::new();
        for &i in inputs {
            let u = self.units.get(&i).expect("derivation input must exist");
            for &s in &u.subjects {
                if identifying && !subjects.contains(&s) {
                    subjects.push(s);
                }
            }
        }
        let parent_sets: Vec<&PolicySet> = inputs.iter().map(|i| &self.units[i].policies).collect();
        let policies = PolicySet::restrict_for_derivation(&parent_sets, now);
        let id = self.allocate_unit_id();
        self.units.insert(
            id,
            DataUnit::derived(id, subjects, inputs.to_vec(), value, policies, now),
        );
        self.provenance.record(Derivation {
            output: id,
            inputs: inputs.to_vec(),
            func: crate::intern::Symbol::intern(func),
            invertible,
            identifying,
            at: now,
        });
        id
    }

    /// Look up a unit.
    pub fn unit(&self, id: UnitId) -> Option<&DataUnit> {
        self.units.get(&id)
    }

    /// Mutable lookup.
    pub fn unit_mut(&mut self, id: UnitId) -> Option<&mut DataUnit> {
        self.units.get_mut(&id)
    }

    /// The provenance graph.
    pub fn provenance(&self) -> &ProvenanceGraph {
        &self.provenance
    }

    /// Iterate over all units (arbitrary order).
    pub fn units(&self) -> impl Iterator<Item = &DataUnit> {
        self.units.values()
    }

    /// Iterate over unit ids in ascending order (deterministic reports).
    pub fn unit_ids_sorted(&self) -> Vec<UnitId> {
        let mut ids: Vec<UnitId> = self.units.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of units (including erased ones — the model never forgets
    /// that a unit existed; only its content is erased).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the state holds no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Is the unit's content still obtainable in the model (not erased
    /// beyond reversible inaccessibility)?
    pub fn content_alive(&self, id: UnitId) -> bool {
        self.units
            .get(&id)
            .map(|u| {
                u.erasure.rank() <= 1 && !u.value.current().map(Value::is_erased).unwrap_or(true)
            })
            .unwrap_or(false)
    }

    /// All personal (base/derived, subject-identifying) units of `subject`.
    pub fn units_of_subject(&self, subject: EntityId) -> Vec<UnitId> {
        let mut ids: Vec<UnitId> = self
            .units
            .values()
            .filter(|u| u.is_personal() && u.identifies(subject))
            .map(|u| u.id)
            .collect();
        ids.sort();
        ids
    }

    /// Mark a unit erased at the model level and blank its value.
    /// Delegates the regression check to [`DataUnit::escalate_erasure`].
    pub fn mark_erased(&mut self, id: UnitId, status: ErasureStatus, now: Ts) {
        let u = self.units.get_mut(&id).expect("unit must exist to erase");
        u.escalate_erasure(status);
        if status.rank() >= 2 {
            u.blank_value(now);
        }
    }

    /// Approximate personal-data payload bytes (current versions of live
    /// personal units) — the "Personal data size" column of Table 2.
    pub fn personal_bytes(&self) -> u64 {
        self.units
            .values()
            .filter(|u| u.is_personal())
            .filter_map(|u| u.value.current())
            .map(|v| v.size() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::purpose::well_known as wk;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    #[test]
    fn collect_allocates_sequential_ids() {
        let mut s = DatabaseState::new();
        let a = s.collect(EntityId(1), Origin::Subject(EntityId(1)), "a".into(), t(0));
        let b = s.collect(EntityId(2), Origin::Subject(EntityId(2)), "b".into(), t(1));
        assert_eq!(a, UnitId(0));
        assert_eq!(b, UnitId(1));
        assert_eq!(s.len(), 2);
        assert!(s.content_alive(a));
    }

    #[test]
    fn derive_aggregates_subjects_and_restricts_policies() {
        let mut s = DatabaseState::new();
        let e = EntityId(10);
        let a = s.collect(EntityId(1), Origin::Subject(EntityId(1)), "a".into(), t(0));
        let b = s.collect(EntityId(2), Origin::Subject(EntityId(2)), "b".into(), t(0));
        s.unit_mut(a)
            .unwrap()
            .policies
            .grant(Policy::new(wk::analytics(), e, t(0), t(100)), t(0));
        s.unit_mut(b)
            .unwrap()
            .policies
            .grant(Policy::new(wk::analytics(), e, t(0), t(50)), t(0));
        let d = s.derive(&[a, b], "join", false, true, Value::Number(2), t(10));
        let du = s.unit(d).unwrap();
        assert_eq!(du.subjects.len(), 2);
        assert_eq!(du.category, crate::unit::Category::Derived);
        let pol = du.policies.active_at(t(20));
        assert_eq!(pol.len(), 1);
        assert_eq!(pol[0].until, t(50));
        assert_eq!(s.provenance().parents(d), &[a, b]);
    }

    #[test]
    fn anonymising_derivation_has_no_subjects() {
        let mut s = DatabaseState::new();
        let a = s.collect(EntityId(1), Origin::Subject(EntityId(1)), "a".into(), t(0));
        let d = s.derive(&[a], "count", false, false, Value::Number(1), t(5));
        assert!(s.unit(d).unwrap().subjects.is_empty());
        assert!(!s.unit(d).unwrap().is_personal());
    }

    #[test]
    fn mark_erased_blanks_value_for_delete_and_above() {
        let mut s = DatabaseState::new();
        let a = s.collect(
            EntityId(1),
            Origin::Subject(EntityId(1)),
            "pii".into(),
            t(0),
        );
        s.mark_erased(
            a,
            ErasureStatus::ReversiblyInaccessible { since: t(1) },
            t(1),
        );
        assert!(s.content_alive(a), "reversible keeps content");
        s.mark_erased(a, ErasureStatus::Deleted { since: t(2) }, t(2));
        assert!(!s.content_alive(a));
        assert!(s.unit(a).unwrap().value.current().unwrap().is_erased());
    }

    #[test]
    fn units_of_subject_filters_and_sorts() {
        let mut s = DatabaseState::new();
        let a = s.collect(EntityId(1), Origin::Subject(EntityId(1)), "a".into(), t(0));
        let _b = s.collect(EntityId(2), Origin::Subject(EntityId(2)), "b".into(), t(0));
        let c = s.collect(EntityId(1), Origin::Subject(EntityId(1)), "c".into(), t(0));
        assert_eq!(s.units_of_subject(EntityId(1)), vec![a, c]);
    }

    #[test]
    fn personal_bytes_counts_current_versions() {
        let mut s = DatabaseState::new();
        let a = s.collect(
            EntityId(1),
            Origin::Subject(EntityId(1)),
            Value::Bytes(vec![0; 64]),
            t(0),
        );
        let _ = s.collect(
            EntityId(2),
            Origin::Subject(EntityId(2)),
            Value::Bytes(vec![0; 36]),
            t(0),
        );
        assert_eq!(s.personal_bytes(), 100);
        s.mark_erased(a, ErasureStatus::Deleted { since: t(1) }, t(1));
        assert_eq!(s.personal_bytes(), 36);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut s = DatabaseState::new();
        let a = s.collect(EntityId(1), Origin::Subject(EntityId(1)), "a".into(), t(0));
        let u = s.unit(a).unwrap().clone();
        s.insert(u);
    }
}
