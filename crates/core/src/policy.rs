//! Policies: `⟨p, e, t_b, t_f⟩` constraints stating that entity `e` may
//! access a data unit for purpose `p` from `t_b` to `t_f` (paper §2.1).
//!
//! A [`PolicySet`] is the `P` aspect of a data unit. It tracks the
//! evolution of policies over time — grants and revocations — so the
//! active set `P(t)` can be computed for any instant, which is what
//! policy-consistency (G6) and the erasure deadline (G17) are defined over.

use datacase_sim::time::Ts;

use crate::ids::EntityId;
use crate::purpose::PurposeId;

/// A single policy `⟨p, e, t_b, t_f⟩`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Policy {
    /// Authorised purpose.
    pub purpose: PurposeId,
    /// Authorised entity.
    pub entity: EntityId,
    /// Start of the validity window (inclusive).
    pub from: Ts,
    /// End of the validity window (inclusive).
    pub until: Ts,
}

impl Policy {
    /// A policy valid over `[from, until]`.
    pub fn new(purpose: PurposeId, entity: EntityId, from: Ts, until: Ts) -> Policy {
        Policy {
            purpose,
            entity,
            from,
            until,
        }
    }

    /// A policy valid from `from` with no expiry.
    pub fn open_ended(purpose: PurposeId, entity: EntityId, from: Ts) -> Policy {
        Policy::new(purpose, entity, from, Ts::MAX)
    }

    /// Is the window active at `t`?
    pub fn active_at(&self, t: Ts) -> bool {
        t.within(self.from, self.until)
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "⟨{}, {}, {}, {}⟩",
            self.purpose, self.entity, self.from, self.until
        )
    }
}

/// A granted policy plus its revocation state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyRecord {
    /// The policy as granted.
    pub policy: Policy,
    /// When it was granted (for audit).
    pub granted_at: Ts,
    /// When it was revoked, if ever (consent withdrawal, GDPR Art. 7(3)).
    pub revoked_at: Option<Ts>,
}

impl PolicyRecord {
    /// Is this record active at `t` (window covers `t` and not yet revoked)?
    pub fn active_at(&self, t: Ts) -> bool {
        self.policy.active_at(t) && self.revoked_at.map(|r| t < r).unwrap_or(true)
    }
}

/// The `P` aspect of a data unit: all policies ever attached, with their
/// lifecycle. `P(t)` is derived, never stored.
///
/// ```
/// use datacase_core::policy::{Policy, PolicySet};
/// use datacase_core::purpose::well_known;
/// use datacase_core::ids::EntityId;
/// use datacase_sim::time::Ts;
///
/// // The paper's running example: π1 = ⟨billing, Netflix, t_b, t_f⟩.
/// let netflix = EntityId(1);
/// let mut p = PolicySet::new();
/// p.grant(
///     Policy::new(well_known::billing(), netflix, Ts::from_secs(0), Ts::from_secs(100)),
///     Ts::ZERO,
/// );
/// assert!(p.authorises(well_known::billing(), netflix, Ts::from_secs(50)));
/// assert!(!p.authorises(well_known::billing(), netflix, Ts::from_secs(200)));
/// // Consent withdrawal empties P(t) from that instant on.
/// p.revoke_all(Ts::from_secs(60));
/// assert!(p.is_empty_at(Ts::from_secs(60)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolicySet {
    records: Vec<PolicyRecord>,
}

impl PolicySet {
    /// An empty policy set.
    pub fn new() -> PolicySet {
        PolicySet::default()
    }

    /// Grant a policy at time `now`.
    pub fn grant(&mut self, policy: Policy, now: Ts) {
        self.records.push(PolicyRecord {
            policy,
            granted_at: now,
            revoked_at: None,
        });
    }

    /// Revoke every active policy matching `purpose`/`entity` at `now`.
    /// Returns how many records were revoked.
    pub fn revoke(&mut self, purpose: PurposeId, entity: EntityId, now: Ts) -> usize {
        let mut n = 0;
        for r in &mut self.records {
            if r.revoked_at.is_none()
                && r.policy.purpose == purpose
                && r.policy.entity == entity
                && r.policy.active_at(now)
            {
                r.revoked_at = Some(now);
                n += 1;
            }
        }
        n
    }

    /// Revoke *all* policies at `now` (erasure request: consent withdrawn
    /// wholesale). Returns how many records were revoked.
    pub fn revoke_all(&mut self, now: Ts) -> usize {
        let mut n = 0;
        for r in &mut self.records {
            if r.revoked_at.is_none() && r.policy.active_at(now) {
                r.revoked_at = Some(now);
                n += 1;
            }
        }
        n
    }

    /// The active set `P(t)`.
    pub fn active_at(&self, t: Ts) -> Vec<Policy> {
        self.records
            .iter()
            .filter(|r| r.active_at(t))
            .map(|r| r.policy)
            .collect()
    }

    /// Does some active policy at `t` authorise `(purpose, entity)`?
    pub fn authorises(&self, purpose: PurposeId, entity: EntityId, t: Ts) -> bool {
        self.records
            .iter()
            .any(|r| r.active_at(t) && r.policy.purpose == purpose && r.policy.entity == entity)
    }

    /// Is `P(t)` empty (no active policy at all)? This is the condition in
    /// the paper's *erasure-inconsistent read* definition.
    pub fn is_empty_at(&self, t: Ts) -> bool {
        !self.records.iter().any(|r| r.active_at(t))
    }

    /// The earliest deadline of an active `compliance-erase` policy at `t`,
    /// i.e. the `t_f` by which the unit must be erased (G17).
    pub fn erase_deadline(&self, t: Ts) -> Option<Ts> {
        let ce = crate::purpose::well_known::compliance_erase();
        self.records
            .iter()
            .filter(|r| r.active_at(t) && r.policy.purpose == ce)
            .map(|r| r.policy.until)
            .min()
    }

    /// Whether any (even inactive) `compliance-erase` policy was ever granted.
    pub fn has_erase_policy(&self) -> bool {
        let ce = crate::purpose::well_known::compliance_erase();
        self.records.iter().any(|r| r.policy.purpose == ce)
    }

    /// All records (for audit and space accounting).
    pub fn records(&self) -> &[PolicyRecord] {
        &self.records
    }

    /// Number of records ever granted.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no policy was ever granted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Restrict (intersect) this set for a derived unit: the paper notes a
    /// derived unit's policies are "generally a restriction of the policies
    /// of the base units". We keep policies present (same purpose+entity)
    /// in *all* parents, with the tightest window.
    pub fn restrict_for_derivation(parents: &[&PolicySet], now: Ts) -> PolicySet {
        let mut out = PolicySet::new();
        let Some((first, rest)) = parents.split_first() else {
            return out;
        };
        for p in first.active_at(now) {
            let mut window: Option<(Ts, Ts)> = Some((p.from, p.until));
            for other in rest {
                let matching = other
                    .active_at(now)
                    .into_iter()
                    .find(|q| q.purpose == p.purpose && q.entity == p.entity);
                window = match (window, matching) {
                    (Some((f, u)), Some(q)) => Some((f.max(q.from), u.min(q.until))),
                    _ => None,
                };
            }
            if let Some((f, u)) = window {
                if f <= u {
                    out.grant(Policy::new(p.purpose, p.entity, f, u), now);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purpose::well_known as wk;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    #[test]
    fn paper_example_pi1_pi2() {
        // π1 = ⟨billing, Netflix, 010123, 010124⟩,
        // π2 = ⟨retention, AWS, 010123, 010124⟩ over unit X.
        let netflix = EntityId(1);
        let aws = EntityId(2);
        let mut p = PolicySet::new();
        p.grant(Policy::new(wk::billing(), netflix, t(100), t(200)), t(100));
        p.grant(Policy::new(wk::retention(), aws, t(100), t(200)), t(100));
        assert!(p.authorises(wk::billing(), netflix, t(150)));
        assert!(p.authorises(wk::retention(), aws, t(150)));
        assert!(!p.authorises(wk::billing(), aws, t(150)));
        assert!(!p.authorises(wk::billing(), netflix, t(201)));
        assert_eq!(p.active_at(t(150)).len(), 2);
        assert_eq!(p.active_at(t(250)).len(), 0);
    }

    #[test]
    fn revocation_cuts_access() {
        let e = EntityId(1);
        let mut p = PolicySet::new();
        p.grant(Policy::open_ended(wk::billing(), e, t(0)), t(0));
        assert!(p.authorises(wk::billing(), e, t(50)));
        assert_eq!(p.revoke(wk::billing(), e, t(60)), 1);
        assert!(p.authorises(wk::billing(), e, t(59)));
        assert!(!p.authorises(wk::billing(), e, t(60)));
        assert!(!p.authorises(wk::billing(), e, t(100)));
    }

    #[test]
    fn revoke_all_empties_active_set() {
        let mut p = PolicySet::new();
        p.grant(Policy::open_ended(wk::billing(), EntityId(1), t(0)), t(0));
        p.grant(Policy::open_ended(wk::retention(), EntityId(2), t(0)), t(0));
        assert!(!p.is_empty_at(t(10)));
        assert_eq!(p.revoke_all(t(10)), 2);
        assert!(p.is_empty_at(t(10)));
        // History of grants is preserved for audit.
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn erase_deadline_takes_earliest() {
        let mut p = PolicySet::new();
        p.grant(
            Policy::new(wk::compliance_erase(), EntityId(0), t(0), t(500)),
            t(0),
        );
        p.grant(
            Policy::new(wk::compliance_erase(), EntityId(0), t(0), t(300)),
            t(0),
        );
        assert_eq!(p.erase_deadline(t(10)), Some(t(300)));
        assert!(p.has_erase_policy());
    }

    #[test]
    fn no_erase_policy_means_no_deadline() {
        let mut p = PolicySet::new();
        p.grant(Policy::open_ended(wk::billing(), EntityId(1), t(0)), t(0));
        assert_eq!(p.erase_deadline(t(10)), None);
        assert!(!p.has_erase_policy());
    }

    #[test]
    fn derived_policies_are_intersection() {
        let e = EntityId(1);
        let mut a = PolicySet::new();
        a.grant(Policy::new(wk::analytics(), e, t(0), t(100)), t(0));
        a.grant(Policy::new(wk::billing(), e, t(0), t(100)), t(0));
        let mut b = PolicySet::new();
        b.grant(Policy::new(wk::analytics(), e, t(50), t(200)), t(0));
        let d = PolicySet::restrict_for_derivation(&[&a, &b], t(60));
        // analytics survives with tightened window [50,100]; billing (absent
        // in b) is dropped.
        let active = d.active_at(t(75));
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].purpose, wk::analytics());
        assert_eq!(active[0].from, t(50));
        assert_eq!(active[0].until, t(100));
    }

    #[test]
    fn derivation_from_no_parents_is_empty() {
        let d = PolicySet::restrict_for_derivation(&[], t(0));
        assert!(d.is_empty());
    }

    #[test]
    fn policy_display_shows_tuple() {
        let pi = Policy::new(wk::billing(), EntityId(7), t(1), t(2));
        let s = format!("{pi}");
        assert!(s.contains("billing"));
        assert!(s.contains("e7"));
    }
}
