//! Provenance between data units (paper §2.1: "it is essential to capture
//! the provenance between various kinds of data in a system").
//!
//! Derivations drive two compliance questions:
//!
//! * **strong deletion** — deleting a unit must also delete dependent data
//!   *where the data-subject is identifiable* (paper §3.1), which is the
//!   `identifying` closure here;
//! * **erasure-inconsistent inference (II)** — an erased unit that can be
//!   reconstructed from surviving units via some dependency `f` is still
//!   inferable; [`ProvenanceGraph::reconstructable`] is the model-level
//!   probe behind Table 1's II column.

use std::collections::{HashMap, HashSet, VecDeque};

use datacase_sim::time::Ts;

use crate::ids::UnitId;
use crate::intern::Symbol;

/// A recorded derivation `Y = f(X₁ … Xₙ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// The produced unit `Y`.
    pub output: UnitId,
    /// The input units `X₁ … Xₙ`.
    pub inputs: Vec<UnitId>,
    /// The dependency function's name (aggregation, projection, copy …).
    pub func: Symbol,
    /// Whether `f` is invertible: the inputs can be recomputed from the
    /// output (e.g. an encryption or a lossless copy, as opposed to a
    /// `count(*)` aggregate).
    pub invertible: bool,
    /// Whether the output still identifies the inputs' data-subjects.
    pub identifying: bool,
    /// When the derivation happened.
    pub at: Ts,
}

/// The DAG of derivations.
#[derive(Clone, Debug, Default)]
pub struct ProvenanceGraph {
    derivations: Vec<Derivation>,
    by_output: HashMap<UnitId, usize>,
    children: HashMap<UnitId, Vec<UnitId>>,
}

impl ProvenanceGraph {
    /// An empty graph.
    pub fn new() -> ProvenanceGraph {
        ProvenanceGraph::default()
    }

    /// Record a derivation.
    ///
    /// # Panics
    /// Panics if `output` already has a recorded derivation (units are
    /// produced once) or if `output` appears among its own inputs.
    pub fn record(&mut self, d: Derivation) {
        assert!(
            !self.by_output.contains_key(&d.output),
            "unit {} already has a derivation",
            d.output
        );
        assert!(
            !d.inputs.contains(&d.output),
            "unit {} cannot derive from itself",
            d.output
        );
        for input in &d.inputs {
            self.children.entry(*input).or_default().push(d.output);
        }
        self.by_output.insert(d.output, self.derivations.len());
        self.derivations.push(d);
    }

    /// The derivation that produced `unit`, if any.
    pub fn derivation_of(&self, unit: UnitId) -> Option<&Derivation> {
        self.by_output.get(&unit).map(|&i| &self.derivations[i])
    }

    /// Direct inputs of `unit`.
    pub fn parents(&self, unit: UnitId) -> &[UnitId] {
        self.derivation_of(unit)
            .map(|d| d.inputs.as_slice())
            .unwrap_or(&[])
    }

    /// Units directly derived from `unit`.
    pub fn children(&self, unit: UnitId) -> &[UnitId] {
        self.children.get(&unit).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All transitive descendants of `unit` (BFS order, unit excluded).
    pub fn descendants(&self, unit: UnitId) -> Vec<UnitId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut q: VecDeque<UnitId> = self.children(unit).iter().copied().collect();
        while let Some(u) = q.pop_front() {
            if seen.insert(u) {
                out.push(u);
                q.extend(self.children(u).iter().copied());
            }
        }
        out
    }

    /// Descendants reachable through *identifying* derivations only — the
    /// set strong deletion must also erase.
    pub fn identifying_descendants(&self, unit: UnitId) -> Vec<UnitId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut q = VecDeque::new();
        q.push_back(unit);
        while let Some(u) = q.pop_front() {
            for &c in self.children(u) {
                let d = self.derivation_of(c).expect("child has derivation");
                if d.identifying && seen.insert(c) {
                    out.push(c);
                    q.push_back(c);
                }
            }
        }
        out
    }

    /// Can `unit` be reconstructed from surviving data? True if either
    ///
    /// 1. some child derivation is invertible and the child is alive, or
    /// 2. `unit` was itself derived and *all* its inputs are alive
    ///    (re-run the derivation).
    ///
    /// `alive` reports whether a unit's content is still obtainable.
    pub fn reconstructable(&self, unit: UnitId, alive: &dyn Fn(UnitId) -> bool) -> bool {
        for &c in self.children(unit) {
            let d = self.derivation_of(c).expect("child has derivation");
            if d.invertible && alive(c) {
                return true;
            }
        }
        if let Some(d) = self.derivation_of(unit) {
            if !d.inputs.is_empty() && d.inputs.iter().all(|&i| alive(i)) {
                return true;
            }
        }
        false
    }

    /// Number of recorded derivations.
    pub fn len(&self) -> usize {
        self.derivations.len()
    }

    /// True if no derivation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.derivations.is_empty()
    }

    /// Iterate over all derivations.
    pub fn iter(&self) -> impl Iterator<Item = &Derivation> {
        self.derivations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    fn deriv(output: u64, inputs: &[u64], invertible: bool, identifying: bool) -> Derivation {
        Derivation {
            output: UnitId(output),
            inputs: inputs.iter().map(|&i| UnitId(i)).collect(),
            func: Symbol::intern("f"),
            invertible,
            identifying,
            at: t(1),
        }
    }

    #[test]
    fn parents_and_children() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(3, &[1, 2], false, true));
        assert_eq!(g.parents(UnitId(3)), &[UnitId(1), UnitId(2)]);
        assert_eq!(g.children(UnitId(1)), &[UnitId(3)]);
        assert_eq!(g.children(UnitId(3)), &[] as &[UnitId]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn descendants_are_transitive() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(2, &[1], false, true));
        g.record(deriv(3, &[2], false, true));
        g.record(deriv(4, &[2], false, false));
        let d = g.descendants(UnitId(1));
        assert_eq!(d.len(), 3);
        assert!(d.contains(&UnitId(3)) && d.contains(&UnitId(4)));
    }

    #[test]
    fn identifying_closure_stops_at_anonymising_steps() {
        let mut g = ProvenanceGraph::new();
        // 1 -> 2 (identifying) -> 3 (anonymised aggregate) -> 4 (identifying)
        g.record(deriv(2, &[1], false, true));
        g.record(deriv(3, &[2], false, false));
        g.record(deriv(4, &[3], false, true));
        let d = g.identifying_descendants(UnitId(1));
        // Only 2: the chain is cut at the anonymising derivation 3.
        assert_eq!(d, vec![UnitId(2)]);
    }

    #[test]
    fn reconstructable_via_invertible_child() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(2, &[1], true, true)); // 2 = enc(1), invertible
        let alive = |u: UnitId| u == UnitId(2);
        assert!(g.reconstructable(UnitId(1), &alive));
        let none_alive = |_: UnitId| false;
        assert!(!g.reconstructable(UnitId(1), &none_alive));
    }

    #[test]
    fn reconstructable_by_rerunning_derivation() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(3, &[1, 2], false, true));
        let alive = |u: UnitId| u == UnitId(1) || u == UnitId(2);
        assert!(g.reconstructable(UnitId(3), &alive));
        let partial = |u: UnitId| u == UnitId(1);
        assert!(!g.reconstructable(UnitId(3), &partial));
    }

    #[test]
    fn non_invertible_child_does_not_reconstruct() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(2, &[1], false, true)); // count(*) style
        let alive = |_: UnitId| true;
        assert!(!g.reconstructable(UnitId(1), &alive));
    }

    #[test]
    #[should_panic(expected = "already has a derivation")]
    fn duplicate_output_panics() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(2, &[1], false, true));
        g.record(deriv(2, &[3], false, true));
    }

    #[test]
    #[should_panic(expected = "cannot derive from itself")]
    fn self_derivation_panics() {
        let mut g = ProvenanceGraph::new();
        g.record(deriv(1, &[1], false, true));
    }
}
