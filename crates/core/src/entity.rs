//! Entities: the roles data flows between in the data life cycle
//! (paper §2.1 — data-subject, controller, processor, auditor).

use std::collections::HashMap;

use crate::ids::EntityId;

/// The regulatory role an entity plays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntityKind {
    /// The natural person the data identifies.
    DataSubject,
    /// Decides purposes and means of processing (GDPR Art. 4(7)).
    Controller,
    /// Processes data on behalf of a controller (Art. 4(8)).
    Processor,
    /// Verifies and certifies compliance.
    Auditor,
    /// A supervisory authority / DPA.
    Regulator,
    /// Any other recipient (e.g. an ad partner).
    ThirdParty,
}

impl EntityKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::DataSubject => "data-subject",
            EntityKind::Controller => "controller",
            EntityKind::Processor => "processor",
            EntityKind::Auditor => "auditor",
            EntityKind::Regulator => "regulator",
            EntityKind::ThirdParty => "third-party",
        }
    }
}

/// A named participant in the system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entity {
    /// Stable identifier.
    pub id: EntityId,
    /// Display name ("Netflix", "AWS", "user-1234").
    pub name: String,
    /// Regulatory role.
    pub kind: EntityKind,
}

/// Registry allocating ids and resolving entities.
#[derive(Clone, Debug, Default)]
pub struct EntityRegistry {
    entities: Vec<Entity>,
    by_name: HashMap<String, EntityId>,
}

impl EntityRegistry {
    /// An empty registry.
    pub fn new() -> EntityRegistry {
        EntityRegistry::default()
    }

    /// Register a new entity; names must be unique.
    ///
    /// # Panics
    /// Panics if the name is already registered (entity names act as keys in
    /// experiment configs; silent duplicates would corrupt provenance).
    pub fn register(&mut self, name: &str, kind: EntityKind) -> EntityId {
        assert!(
            !self.by_name.contains_key(name),
            "entity name {name:?} already registered"
        );
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(Entity {
            id,
            name: name.to_owned(),
            kind,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Resolve an entity by id.
    pub fn get(&self, id: EntityId) -> Option<&Entity> {
        self.entities.get(id.0 as usize)
    }

    /// Resolve an entity by name.
    pub fn by_name(&self, name: &str) -> Option<&Entity> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// All entities of a given kind.
    pub fn of_kind(&self, kind: EntityKind) -> impl Iterator<Item = &Entity> {
        self.entities.iter().filter(move |e| e.kind == kind)
    }

    /// Number of registered entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if no entity is registered.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterate over all entities in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut r = EntityRegistry::new();
        let netflix = r.register("Netflix", EntityKind::Controller);
        let aws = r.register("AWS", EntityKind::Processor);
        assert_eq!(r.get(netflix).unwrap().name, "Netflix");
        assert_eq!(r.by_name("AWS").unwrap().id, aws);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn of_kind_filters() {
        let mut r = EntityRegistry::new();
        r.register("u1", EntityKind::DataSubject);
        r.register("u2", EntityKind::DataSubject);
        r.register("corp", EntityKind::Controller);
        assert_eq!(r.of_kind(EntityKind::DataSubject).count(), 2);
        assert_eq!(r.of_kind(EntityKind::Auditor).count(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_panics() {
        let mut r = EntityRegistry::new();
        r.register("X", EntityKind::Controller);
        r.register("X", EntityKind::Processor);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(EntityKind::DataSubject.label(), "data-subject");
        assert_eq!(EntityKind::Regulator.label(), "regulator");
    }

    #[test]
    fn missing_lookups_are_none() {
        let r = EntityRegistry::new();
        assert!(r.get(EntityId(0)).is_none());
        assert!(r.by_name("nobody").is_none());
        assert!(r.is_empty());
    }
}
