//! The compliance checker: evaluates a regulation's invariants over a
//! database state and action history, producing a report (the paper's
//! "demonstrable compliance", §1 and §4.4).

use datacase_sim::report::Table;
use datacase_sim::time::Ts;

use crate::history::ActionHistory;
use crate::invariants::{full_catalog, CheckContext, EvidenceFlags, Invariant};
use crate::purpose::PurposeRegistry;
use crate::regulation::Regulation;
use crate::state::DatabaseState;
use crate::violation::{Severity, Violation};

/// Per-invariant outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct InvariantOutcome {
    /// The invariant's id.
    pub id: &'static str,
    /// Its one-line statement.
    pub statement: &'static str,
    /// Number of violations found.
    pub violations: usize,
    /// Worst severity among them, if any.
    pub worst: Option<Severity>,
}

/// The result of a full compliance check.
#[derive(Clone, Debug, Default)]
pub struct ComplianceReport {
    /// When the check ran.
    pub at: Ts,
    /// Name of the regulation checked against.
    pub regulation: String,
    /// Outcome per enforced invariant, in catalog order.
    pub outcomes: Vec<InvariantOutcome>,
    /// All violations found.
    pub violations: Vec<Violation>,
}

impl ComplianceReport {
    /// Did every enforced invariant hold?
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one invariant.
    pub fn of_invariant(&self, id: &str) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.invariant == id)
            .collect()
    }

    /// Worst severity in the whole report.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.violations.iter().map(|v| v.severity).max()
    }

    /// Render a summary table (one row per invariant).
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Compliance report against {} at {} — {}",
                self.regulation,
                self.at,
                if self.is_compliant() {
                    "COMPLIANT"
                } else {
                    "NON-COMPLIANT"
                }
            ),
            &["invariant", "violations", "worst", "statement"],
        );
        for o in &self.outcomes {
            t.row(vec![
                o.id.to_string(),
                o.violations.to_string(),
                o.worst
                    .map(|s| s.label().to_string())
                    .unwrap_or_else(|| "-".into()),
                o.statement.to_string(),
            ]);
        }
        t.render_text()
    }
}

/// Evaluates the invariants a regulation enforces.
pub struct ComplianceChecker {
    regulation: Regulation,
    invariants: Vec<Box<dyn Invariant>>,
    evidence: EvidenceFlags,
    tenants: Option<crate::tenant::TenantDirectory>,
}

impl ComplianceChecker {
    /// A checker for `regulation`, enforcing its configured invariants.
    pub fn new(regulation: Regulation) -> ComplianceChecker {
        let invariants = full_catalog()
            .into_iter()
            .filter(|i| regulation.enforces(i.id()))
            .collect();
        ComplianceChecker {
            regulation,
            invariants,
            evidence: EvidenceFlags::default(),
            tenants: None,
        }
    }

    /// Supply external evidence (audit integrity, encryption defaults).
    pub fn with_evidence(mut self, evidence: EvidenceFlags) -> ComplianceChecker {
        self.evidence = evidence;
        self
    }

    /// Supply the entity → tenant directory of a served multi-tenant
    /// deployment, arming the tenant-isolation invariant (X). Without it
    /// — or with an empty directory — X holds vacuously.
    pub fn with_tenants(mut self, tenants: crate::tenant::TenantDirectory) -> ComplianceChecker {
        self.tenants = Some(tenants);
        self
    }

    /// The regulation under check.
    pub fn regulation(&self) -> &Regulation {
        &self.regulation
    }

    /// Ids of the enforced invariants, in catalog order.
    pub fn enforced(&self) -> Vec<&'static str> {
        self.invariants.iter().map(|i| i.id()).collect()
    }

    /// Run the check.
    pub fn check(
        &self,
        state: &DatabaseState,
        history: &ActionHistory,
        purposes: &PurposeRegistry,
        now: Ts,
    ) -> ComplianceReport {
        let ctx = CheckContext {
            state,
            history,
            purposes,
            regulation: &self.regulation,
            now,
            evidence: self.evidence,
            tenants: self.tenants.as_ref(),
        };
        let mut report = ComplianceReport {
            at: now,
            regulation: self.regulation.name.clone(),
            outcomes: Vec::with_capacity(self.invariants.len()),
            violations: Vec::new(),
        };
        for inv in &self.invariants {
            let vs = inv.check(&ctx);
            report.outcomes.push(InvariantOutcome {
                id: inv.id(),
                statement: inv.statement(),
                violations: vs.len(),
                worst: vs.iter().map(|v| v.severity).max(),
            });
            report.violations.extend(vs);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::history::HistoryTuple;
    use crate::ids::EntityId;
    use crate::policy::Policy;
    use crate::purpose::well_known as wk;
    use crate::unit::Origin;

    fn t(s: u64) -> Ts {
        Ts::from_secs(s)
    }

    /// Build a fully compliant little world: consented collection, subject
    /// access, retention bound far in the future, tamper-evident logs.
    fn compliant_world() -> (DatabaseState, ActionHistory, PurposeRegistry) {
        let mut state = DatabaseState::new();
        let mut history = ActionHistory::new();
        let subject = EntityId(7);
        let uid = state.collect(subject, Origin::Subject(subject), "cc".into(), t(0));
        history.record(HistoryTuple {
            unit: uid,
            purpose: wk::contract(),
            entity: EntityId(1),
            action: Action::Create,
            at: t(0),
        });
        let u = state.unit_mut(uid).unwrap();
        u.encrypted_at_rest = true;
        u.policies.grant(
            Policy::open_ended(wk::subject_access(), subject, t(0)),
            t(0),
        );
        u.policies.grant(
            Policy::new(
                wk::compliance_erase(),
                EntityId(1),
                t(0),
                Ts::from_secs(1_000_000),
            ),
            t(0),
        );
        (state, history, PurposeRegistry::with_defaults())
    }

    #[test]
    fn compliant_world_passes_everything() {
        let (state, history, purposes) = compliant_world();
        let checker = ComplianceChecker::new(Regulation::gdpr()).with_evidence(EvidenceFlags {
            audit_log_tamper_evident: true,
            encryption_at_rest_default: false,
        });
        let report = checker.check(&state, &history, &purposes, t(100));
        assert!(report.is_compliant(), "violations: {:?}", report.violations);
        assert_eq!(report.outcomes.len(), 12);
        assert!(report.render().contains("COMPLIANT"));
    }

    #[test]
    fn illegal_read_surfaces_in_g6_and_iv() {
        let (state, mut history, purposes) = compliant_world();
        history.record(HistoryTuple {
            unit: crate::ids::UnitId(0),
            purpose: wk::billing(),
            entity: EntityId(66),
            action: Action::Read,
            at: t(10),
        });
        let checker = ComplianceChecker::new(Regulation::gdpr()).with_evidence(EvidenceFlags {
            audit_log_tamper_evident: true,
            encryption_at_rest_default: false,
        });
        let report = checker.check(&state, &history, &purposes, t(100));
        assert!(!report.is_compliant());
        assert_eq!(report.of_invariant("G6").len(), 1);
        assert_eq!(report.of_invariant("IV").len(), 1);
        assert_eq!(report.worst_severity(), Some(Severity::Critical));
    }

    #[test]
    fn ccpa_checker_enforces_fewer_invariants() {
        let gdpr = ComplianceChecker::new(Regulation::gdpr());
        let ccpa = ComplianceChecker::new(Regulation::ccpa());
        assert!(gdpr.enforced().contains(&"III"));
        assert!(!ccpa.enforced().contains(&"III"));
        assert!(ccpa.enforced().len() < gdpr.enforced().len());
    }

    #[test]
    fn report_render_lists_all_invariants() {
        let (state, history, purposes) = compliant_world();
        let checker = ComplianceChecker::new(Regulation::gdpr()).with_evidence(EvidenceFlags {
            audit_log_tamper_evident: true,
            encryption_at_rest_default: false,
        });
        let report = checker.check(&state, &history, &purposes, t(5));
        let rendered = report.render();
        for id in ["I", "V", "IX", "G6", "G17"] {
            assert!(
                rendered.lines().any(|l| l.trim_start().starts_with(id)),
                "missing {id} in:\n{rendered}"
            );
        }
    }
}
