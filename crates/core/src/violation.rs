//! Violations reported by the compliance checker.

use datacase_sim::time::Ts;

use crate::ids::{EntityId, UnitId};

/// How severe a violation is for reporting/triage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational: a gap that does not yet breach an invariant.
    Advisory,
    /// An invariant is breached but remediable (e.g. missing assessment).
    Breach,
    /// Personal data is exposed or illegally retained.
    Critical,
}

impl Severity {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Advisory => "advisory",
            Severity::Breach => "breach",
            Severity::Critical => "critical",
        }
    }
}

/// A single invariant violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The invariant's identifier ("G6", "G17", "I".."IX").
    pub invariant: &'static str,
    /// The unit involved, if unit-specific.
    pub unit: Option<UnitId>,
    /// The entity involved, if entity-specific.
    pub entity: Option<EntityId>,
    /// When the violating condition was observed.
    pub at: Ts,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// A unit-scoped violation.
    pub fn on_unit(
        invariant: &'static str,
        unit: UnitId,
        at: Ts,
        severity: Severity,
        message: impl Into<String>,
    ) -> Violation {
        Violation {
            invariant,
            unit: Some(unit),
            entity: None,
            at,
            severity,
            message: message.into(),
        }
    }

    /// A system-scoped violation.
    pub fn systemic(
        invariant: &'static str,
        at: Ts,
        severity: Severity,
        message: impl Into<String>,
    ) -> Violation {
        Violation {
            invariant,
            unit: None,
            entity: None,
            at,
            severity,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}][{}]", self.invariant, self.severity.label())?;
        if let Some(u) = self.unit {
            write!(f, " unit {u}")?;
        }
        if let Some(e) = self.entity {
            write!(f, " entity {e}")?;
        }
        write!(f, " at {}: {}", self.at, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_are_ordered() {
        assert!(Severity::Advisory < Severity::Breach);
        assert!(Severity::Breach < Severity::Critical);
    }

    #[test]
    fn display_includes_parts() {
        let v = Violation::on_unit(
            "G17",
            UnitId(5),
            Ts::from_secs(9),
            Severity::Critical,
            "not erased by deadline",
        );
        let s = format!("{v}");
        assert!(s.contains("G17"));
        assert!(s.contains("x5"));
        assert!(s.contains("critical"));
        assert!(s.contains("deadline"));
    }

    #[test]
    fn systemic_has_no_unit() {
        let v = Violation::systemic("IX", Ts::ZERO, Severity::Breach, "no evidence");
        assert!(v.unit.is_none());
        assert!(format!("{v}").contains("IX"));
    }
}
