//! GDPR-annotated records and the Mall dataset generator.
//!
//! "We enriched the data records in GDPRBench with the Mall dataset from
//! \[51\] comprising simulated data generated from personal devices in a
//! shopping complex. Each record consists of a personal data-id and the
//! recorded date and time generated using the SmartBench simulator \[35\]."
//! (paper §4.2). The generator below synthesises exactly that shape:
//! device readings (device, person, zone, timestamp) serialized into a
//! fixed-size payload.

use datacase_core::purpose::{well_known as wk, PurposeId};
use datacase_sim::rng::seeded;
use datacase_sim::time::Ts;
use rand::Rng;

/// The GDPR metadata GDPRBench attaches to every record.
#[derive(Clone, Debug, PartialEq)]
pub struct GdprMetadata {
    /// The data-subject's id.
    pub subject: u32,
    /// Collection purpose.
    pub purpose: PurposeId,
    /// Retention deadline (the compliance-erase `t_f`).
    pub ttl: Ts,
    /// Where the record came from (device id).
    pub origin_device: u32,
    /// Whether the subject objects to third-party sharing.
    pub objects_to_sharing: bool,
}

/// One simulated personal-device reading in the shopping complex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MallReading {
    /// The sensing device.
    pub device: u32,
    /// The person observed (data-subject).
    pub person: u32,
    /// Zone within the mall.
    pub zone: u16,
    /// Observation timestamp.
    pub at: Ts,
}

impl MallReading {
    /// Serialize into a fixed-size payload (padded to `size` bytes).
    /// The rendering embeds a per-person marker (`person=<id>`) that the
    /// forensic scanner can use as a needle.
    pub fn to_payload(&self, size: usize) -> Vec<u8> {
        let mut s = format!(
            "dev={:06} person={:06} zone={:03} ts={:012};",
            self.device,
            self.person,
            self.zone,
            self.at.0 / 1_000_000
        )
        .into_bytes();
        if s.len() < size {
            s.resize(size, b'.');
        }
        s
    }

    /// The forensic needle identifying this person's readings.
    pub fn person_needle(person: u32) -> Vec<u8> {
        format!("person={person:06}").into_bytes()
    }
}

/// Seeded generator of Mall readings and their GDPR metadata.
#[derive(Debug)]
pub struct MallGenerator {
    rng: rand::rngs::StdRng,
    devices: u32,
    people: u32,
    zones: u16,
    payload_size: usize,
    clock_step: u64,
    now: u64,
}

impl MallGenerator {
    /// A generator over `people` subjects and `devices` sensors.
    pub fn new(seed: u64, people: u32, devices: u32) -> MallGenerator {
        assert!(people > 0 && devices > 0);
        MallGenerator {
            rng: seeded(seed),
            devices,
            people,
            zones: 64,
            payload_size: 100,
            clock_step: 1_000_000, // 1ms of simulated time between readings
            now: 0,
        }
    }

    /// Override the payload size (default 100 bytes).
    pub fn with_payload_size(mut self, size: usize) -> MallGenerator {
        self.payload_size = size;
        self
    }

    /// Number of distinct subjects.
    pub fn people(&self) -> u32 {
        self.people
    }

    /// Next reading.
    pub fn reading(&mut self) -> MallReading {
        self.now += self.clock_step;
        MallReading {
            device: self.rng.random_range(0..self.devices),
            person: self.rng.random_range(0..self.people),
            zone: self.rng.random_range(0..self.zones),
            at: Ts(self.now),
        }
    }

    /// Next reading plus its GDPR metadata (purpose drawn from the
    /// smart-space purposes, TTL a few simulated days out).
    pub fn record(&mut self) -> (MallReading, GdprMetadata, Vec<u8>) {
        let reading = self.reading();
        let purpose = match self.rng.random_range(0..4u8) {
            0 => wk::billing(),
            1 => wk::analytics(),
            2 => wk::advertising(),
            _ => wk::smart_space(),
        };
        let ttl_days = self.rng.random_range(30..365u64);
        let meta = GdprMetadata {
            subject: reading.person,
            purpose,
            ttl: reading.at + datacase_sim::time::Dur::from_secs(ttl_days * 24 * 3600),
            origin_device: reading.device,
            objects_to_sharing: self.rng.random_range(0..100u8) < 30,
        };
        let payload = reading.to_payload(self.payload_size);
        (reading, meta, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_fixed_size_and_contains_needle() {
        let r = MallReading {
            device: 3,
            person: 42,
            zone: 7,
            at: Ts::from_secs(100),
        };
        let p = r.to_payload(100);
        assert_eq!(p.len(), 100);
        let needle = MallReading::person_needle(42);
        assert!(p.windows(needle.len()).any(|w| w == needle.as_slice()));
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = MallGenerator::new(7, 100, 10);
        let mut b = MallGenerator::new(7, 100, 10);
        for _ in 0..50 {
            assert_eq!(a.reading(), b.reading());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MallGenerator::new(1, 100, 10);
        let mut b = MallGenerator::new(2, 100, 10);
        let ra: Vec<MallReading> = (0..10).map(|_| a.reading()).collect();
        let rb: Vec<MallReading> = (0..10).map(|_| b.reading()).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn metadata_is_plausible() {
        let mut g = MallGenerator::new(3, 50, 5);
        for _ in 0..100 {
            let (reading, meta, payload) = g.record();
            assert!(meta.subject < 50);
            assert!(meta.origin_device < 5);
            assert!(meta.ttl > reading.at);
            assert_eq!(payload.len(), 100);
        }
    }

    #[test]
    fn timestamps_increase() {
        let mut g = MallGenerator::new(3, 50, 5);
        let a = g.reading().at;
        let b = g.reading().at;
        assert!(b > a);
    }
}
