#![warn(missing_docs)]
//! # datacase-workloads
//!
//! The benchmark workloads of the paper's evaluation (§4):
//!
//! * [`record`] — GDPR-annotated records enriched with the Mall dataset
//!   (simulated personal-device readings from a shopping complex,
//!   SmartBench-style), exactly how the paper builds its records;
//! * [`gdprbench`] — GDPRBench's three roles: **WCon** (controller: 25 %
//!   create, 25 % delete, 50 % metadata update), **WPro** (processor: 80 %
//!   key reads, 20 % metadata-based reads), **WCus** (customer: 20 % each
//!   of data read/update/delete and metadata read/update), plus the
//!   Figure-4a customer mix (20 % deletes, 80 % reads);
//! * [`ycsb`] — YCSB workloads A/B/C with zipfian key choice (C is the
//!   paper's non-GDPR baseline);
//! * [`opstream`] — the operation vocabulary engines execute.
//!
//! Every generator is seeded and deterministic.

pub mod gdprbench;
pub mod opstream;
pub mod record;
pub mod ycsb;

pub use gdprbench::{GdprBench, Mix};
pub use opstream::{MetaField, MetaSelector, Op};
pub use record::{GdprMetadata, MallGenerator, MallReading};
pub use ycsb::{Ycsb, YcsbWorkload};
