//! YCSB workloads (Cooper et al., SoCC '10) — the paper's non-GDPR
//! baseline. Workload C (100 % reads) is what Figure 4b/4c use; A and B
//! are included for ablations.

use datacase_sim::rng::seeded;
use datacase_sim::zipf::ScrambledZipfian;
use rand::Rng;

use crate::opstream::Op;
use crate::record::MallGenerator;

/// The standard YCSB mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// 50 % reads / 50 % updates.
    A,
    /// 95 % reads / 5 % updates.
    B,
    /// 100 % reads.
    C,
}

impl YcsbWorkload {
    /// Read percentage of the mix.
    pub fn read_pct(self) -> u8 {
        match self {
            YcsbWorkload::A => 50,
            YcsbWorkload::B => 95,
            YcsbWorkload::C => 100,
        }
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "YCSB-A",
            YcsbWorkload::B => "YCSB-B",
            YcsbWorkload::C => "YCSB-C",
        }
    }
}

/// The YCSB generator: uniform load phase + zipfian request phase.
pub struct Ycsb {
    rng: rand::rngs::StdRng,
    zipf: ScrambledZipfian,
    records: u64,
    mall: MallGenerator,
    payload_size: usize,
    /// When set, load-phase payloads are padded/truncated to this size
    /// (classic YCSB uses 1 KiB records); `None` keeps the natural
    /// MallGenerator record.
    load_payload_size: Option<usize>,
}

impl std::fmt::Debug for Ycsb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ycsb")
            .field("records", &self.records)
            .finish()
    }
}

impl Ycsb {
    /// A generator over `records` keys.
    pub fn new(seed: u64, records: u64) -> Ycsb {
        assert!(records > 0);
        Ycsb {
            rng: seeded(datacase_sim::rng::child_seed(seed, "ycsb-ops")),
            zipf: ScrambledZipfian::new(records),
            records,
            mall: MallGenerator::new(datacase_sim::rng::child_seed(seed, "ycsb-mall"), 1000, 64),
            payload_size: 100,
            load_payload_size: None,
        }
    }

    /// Use `bytes`-sized payloads for both phases (classic YCSB records
    /// are 1 KiB; the default here is the compact 100-byte shape the
    /// paper figures use). Load-phase records are padded/truncated to the
    /// size, update payloads generated at it.
    pub fn with_payload_size(mut self, bytes: usize) -> Ycsb {
        self.payload_size = bytes;
        self.load_payload_size = Some(bytes);
        self
    }

    /// The load phase: create all `records` keys.
    pub fn load_phase(&mut self) -> Vec<Op> {
        (0..self.records)
            .map(|key| {
                let (_, metadata, mut payload) = self.mall.record();
                if let Some(size) = self.load_payload_size {
                    payload.resize(size, b'.');
                }
                Op::Create {
                    key,
                    payload,
                    metadata,
                }
            })
            .collect()
    }

    /// `n` request-phase operations with the given mix, zipfian keys.
    pub fn ops(&mut self, n: usize, workload: YcsbWorkload) -> Vec<Op> {
        let read_pct = workload.read_pct();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let key = self.zipf.sample(&mut self.rng);
            if self.rng.random_range(0..100u8) < read_pct {
                out.push(Op::ReadData { key });
            } else {
                let reading = self.mall.reading();
                out.push(Op::UpdateData {
                    key,
                    payload: reading.to_payload(self.payload_size),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opstream::label_histogram;

    #[test]
    fn c_is_pure_reads() {
        let mut y = Ycsb::new(1, 1000);
        let ops = y.ops(2000, YcsbWorkload::C);
        let h = label_histogram(&ops);
        assert_eq!(h["read-data"], 2000);
    }

    #[test]
    fn a_is_half_updates() {
        let mut y = Ycsb::new(2, 1000);
        let ops = y.ops(10_000, YcsbWorkload::A);
        let h = label_histogram(&ops);
        let updates = h["update-data"] as f64 / 10_000.0;
        assert!((updates - 0.5).abs() < 0.03, "update share {updates}");
    }

    #[test]
    fn load_phase_covers_all_keys() {
        let mut y = Ycsb::new(3, 500);
        let ops = y.load_phase();
        assert_eq!(ops.len(), 500);
        let keys: std::collections::HashSet<u64> = ops.iter().filter_map(|o| o.key()).collect();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn request_keys_are_skewed() {
        let mut y = Ycsb::new(4, 10_000);
        let ops = y.ops(20_000, YcsbWorkload::C);
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for op in &ops {
            *counts.entry(op.key().unwrap()).or_insert(0) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest key should be hit far more than the median key.
        assert!(freqs[0] >= 20, "hottest {}", freqs[0]);
        assert!(counts.len() < 10_000, "not all keys touched (skew)");
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| Ycsb::new(seed, 100).ops(100, YcsbWorkload::A);
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }
}
