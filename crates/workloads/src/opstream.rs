//! The operation vocabulary executed by the engines.

use datacase_core::purpose::PurposeId;

use crate::record::GdprMetadata;

/// Metadata fields GDPRBench updates ("updates to metadata").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaField {
    /// Time-to-live / retention deadline.
    Ttl,
    /// Processing purpose.
    Purpose,
    /// Objection to third-party sharing.
    Objection,
}

/// Selectors for metadata-based reads (WPro's 20 %).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaSelector {
    /// All records collected for a purpose.
    ByPurpose(PurposeId),
    /// All records of one data-subject (subject-access request shape).
    BySubject(u32),
}

/// One benchmark operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Insert a new record with GDPR metadata.
    Create {
        /// Record key.
        key: u64,
        /// Personal-data payload (a Mall reading).
        payload: Vec<u8>,
        /// GDPR metadata attached at collection.
        metadata: GdprMetadata,
    },
    /// Point read of the record's data by key.
    ReadData {
        /// Record key.
        key: u64,
    },
    /// Update the record's data payload.
    UpdateData {
        /// Record key.
        key: u64,
        /// New payload.
        payload: Vec<u8>,
    },
    /// Delete the record (the right-to-erasure path).
    DeleteData {
        /// Record key.
        key: u64,
    },
    /// Read the record's metadata (policies, purpose, TTL).
    ReadMeta {
        /// Record key.
        key: u64,
    },
    /// Update one metadata field.
    UpdateMeta {
        /// Record key.
        key: u64,
        /// Which field.
        field: MetaField,
    },
    /// Read data *via* metadata (e.g. "all records for purpose X").
    ReadByMetadata {
        /// The selector.
        selector: MetaSelector,
    },
}

impl Op {
    /// Short label for statistics.
    pub fn label(&self) -> &'static str {
        match self {
            Op::Create { .. } => "create",
            Op::ReadData { .. } => "read-data",
            Op::UpdateData { .. } => "update-data",
            Op::DeleteData { .. } => "delete-data",
            Op::ReadMeta { .. } => "read-meta",
            Op::UpdateMeta { .. } => "update-meta",
            Op::ReadByMetadata { .. } => "read-by-meta",
        }
    }

    /// The key the op targets, when key-addressed.
    pub fn key(&self) -> Option<u64> {
        match self {
            Op::Create { key, .. }
            | Op::ReadData { key }
            | Op::UpdateData { key, .. }
            | Op::DeleteData { key }
            | Op::ReadMeta { key }
            | Op::UpdateMeta { key, .. } => Some(*key),
            Op::ReadByMetadata { .. } => None,
        }
    }
}

/// Distribution of op labels in a stream (for asserting mixes).
pub fn label_histogram(ops: &[Op]) -> std::collections::HashMap<&'static str, usize> {
    let mut h = std::collections::HashMap::new();
    for op in ops {
        *h.entry(op.label()).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_keys() {
        let op = Op::ReadData { key: 5 };
        assert_eq!(op.label(), "read-data");
        assert_eq!(op.key(), Some(5));
        let scan = Op::ReadByMetadata {
            selector: MetaSelector::BySubject(1),
        };
        assert_eq!(scan.key(), None);
    }

    #[test]
    fn histogram_counts() {
        let ops = vec![
            Op::ReadData { key: 1 },
            Op::ReadData { key: 2 },
            Op::DeleteData { key: 3 },
        ];
        let h = label_histogram(&ops);
        assert_eq!(h["read-data"], 2);
        assert_eq!(h["delete-data"], 1);
    }
}
