//! GDPRBench workload generation (paper §4.2):
//!
//! * **WCon** — Controller: 25 % create, 25 % delete, 50 % metadata update;
//! * **WPro** — Processor: 80 % reads of data by key, 20 % reads of data
//!   using metadata;
//! * **WCus** — Customer: 20 % each of read/update/delete of data, and
//!   read/update of metadata;
//! * **Fig4a customer mix** — 20 % deletes on data, rest reads (§4.1).

use datacase_core::purpose::well_known as wk;
use datacase_sim::rng::seeded;
use rand::Rng;

use crate::opstream::{MetaField, MetaSelector, Op};
use crate::record::MallGenerator;

/// An operation mix: weights per op class (summing to 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// % creates.
    pub create: u8,
    /// % data reads by key.
    pub read_data: u8,
    /// % data updates.
    pub update_data: u8,
    /// % data deletes.
    pub delete_data: u8,
    /// % metadata reads by key.
    pub read_meta: u8,
    /// % metadata updates.
    pub update_meta: u8,
    /// % metadata-based data reads.
    pub read_by_meta: u8,
}

impl Mix {
    /// GDPRBench Controller: 25 % create, 25 % delete, 50 % metadata update.
    pub fn wcon() -> Mix {
        Mix {
            create: 25,
            read_data: 0,
            update_data: 0,
            delete_data: 25,
            read_meta: 0,
            update_meta: 50,
            read_by_meta: 0,
        }
    }

    /// GDPRBench Processor: 80 % key reads, 20 % metadata-based reads.
    pub fn wpro() -> Mix {
        Mix {
            create: 0,
            read_data: 80,
            update_data: 0,
            delete_data: 0,
            read_meta: 0,
            update_meta: 0,
            read_by_meta: 20,
        }
    }

    /// GDPRBench Customer: 20 % each of data read/update/delete and
    /// metadata read/update.
    pub fn wcus() -> Mix {
        Mix {
            create: 0,
            read_data: 20,
            update_data: 20,
            delete_data: 20,
            read_meta: 20,
            update_meta: 20,
            read_by_meta: 0,
        }
    }

    /// The §4.1 case-study customer workload: 20 % deletes, rest reads.
    pub fn fig4a_customer() -> Mix {
        Mix {
            create: 0,
            read_data: 80,
            update_data: 0,
            delete_data: 20,
            read_meta: 0,
            update_meta: 0,
            read_by_meta: 0,
        }
    }

    /// A delete-only workload (the paper's "expected performance is
    /// observed for a workload composed only of deletions").
    pub fn delete_only() -> Mix {
        Mix {
            create: 0,
            read_data: 0,
            update_data: 0,
            delete_data: 100,
            read_meta: 0,
            update_meta: 0,
            read_by_meta: 0,
        }
    }

    fn total(&self) -> u32 {
        self.create as u32
            + self.read_data as u32
            + self.update_data as u32
            + self.delete_data as u32
            + self.read_meta as u32
            + self.update_meta as u32
            + self.read_by_meta as u32
    }
}

/// The GDPRBench generator: a load phase plus seeded op streams.
///
/// Deletions follow GDPRBench's TTL semantics: the *oldest* live records
/// are deleted first (retention deadlines expire in insertion order), so
/// dead tuples cluster on contiguous heap pages — the locality PostgreSQL's
/// visibility map exploits and Figure 4a depends on.
pub struct GdprBench {
    rng: rand::rngs::StdRng,
    mall: MallGenerator,
    live_keys: std::collections::VecDeque<u64>,
    next_key: u64,
    payload_size: usize,
}

impl std::fmt::Debug for GdprBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GdprBench")
            .field("live_keys", &self.live_keys.len())
            .field("next_key", &self.next_key)
            .finish()
    }
}

impl GdprBench {
    /// A bench over `people` subjects with the given seed.
    pub fn new(seed: u64, people: u32) -> GdprBench {
        GdprBench {
            rng: seeded(datacase_sim::rng::child_seed(seed, "gdprbench-ops")),
            mall: MallGenerator::new(datacase_sim::rng::child_seed(seed, "mall"), people, 64),
            live_keys: std::collections::VecDeque::new(),
            next_key: 0,
            payload_size: 100,
        }
    }

    /// The load phase: `n` create operations with Mall records.
    pub fn load_phase(&mut self, n: usize) -> Vec<Op> {
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(self.fresh_create());
        }
        ops
    }

    fn fresh_create(&mut self) -> Op {
        let key = self.next_key;
        self.next_key += 1;
        self.live_keys.push_back(key);
        let (_, metadata, payload) = self.mall.record();
        Op::Create {
            key,
            payload,
            metadata,
        }
    }

    fn pick_live(&mut self) -> Option<u64> {
        if self.live_keys.is_empty() {
            return None;
        }
        let idx = self.rng.random_range(0..self.live_keys.len());
        self.live_keys.get(idx).copied()
    }

    /// TTL-order deletion target: the oldest live key.
    fn pick_expired(&mut self) -> Option<u64> {
        self.live_keys.pop_front()
    }

    /// Uniform over *all* keys ever created — GDPRBench reads do not know
    /// which records were deleted, so reads of deleted keys happen and pay
    /// the dead-tuple penalty (the mechanism behind Figure 4a).
    fn pick_any(&mut self) -> Option<u64> {
        if self.next_key == 0 {
            return None;
        }
        Some(self.rng.random_range(0..self.next_key))
    }

    /// Generate `n` transaction-phase operations with the given mix.
    /// Deletes target the oldest live keys (TTL order) and retire them;
    /// creates mint fresh keys.
    pub fn ops(&mut self, n: usize, mix: Mix) -> Vec<Op> {
        assert_eq!(mix.total(), 100, "mix weights must sum to 100");
        // Cumulative thresholds over the mix classes, in a fixed order.
        let thresholds: [(u32, u8); 7] = {
            let mut acc = 0u32;
            let mut out = [(0u32, 0u8); 7];
            for (slot, (weight, tag)) in [
                (mix.create, 0u8),
                (mix.read_data, 1),
                (mix.update_data, 2),
                (mix.delete_data, 3),
                (mix.read_meta, 4),
                (mix.update_meta, 5),
                (mix.read_by_meta, 6),
            ]
            .into_iter()
            .enumerate()
            {
                acc += weight as u32;
                out[slot] = (acc, tag);
            }
            out
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let roll: u32 = self.rng.random_range(0..100);
            let tag = thresholds
                .iter()
                .find(|(cum, _)| roll < *cum)
                .map(|(_, t)| *t)
                .expect("weights sum to 100");
            let op = match tag {
                0 => self.fresh_create(),
                1 => match self.pick_any() {
                    Some(key) => Op::ReadData { key },
                    None => self.fresh_create(),
                },
                2 => match self.pick_live() {
                    Some(key) => {
                        let reading = self.mall.reading();
                        Op::UpdateData {
                            key,
                            payload: reading.to_payload(self.payload_size),
                        }
                    }
                    None => self.fresh_create(),
                },
                3 => match self.pick_expired() {
                    Some(key) => Op::DeleteData { key },
                    None => self.fresh_create(),
                },
                4 => match self.pick_any() {
                    Some(key) => Op::ReadMeta { key },
                    None => self.fresh_create(),
                },
                5 => match self.pick_live() {
                    Some(key) => {
                        let field = match self.rng.random_range(0..3u8) {
                            0 => MetaField::Ttl,
                            1 => MetaField::Purpose,
                            _ => MetaField::Objection,
                        };
                        Op::UpdateMeta { key, field }
                    }
                    None => self.fresh_create(),
                },
                _ => {
                    let selector = if self.rng.random_range(0..2u8) == 0 {
                        MetaSelector::BySubject(self.rng.random_range(0..self.mall.people()))
                    } else {
                        let p = match self.rng.random_range(0..4u8) {
                            0 => wk::billing(),
                            1 => wk::analytics(),
                            2 => wk::advertising(),
                            _ => wk::smart_space(),
                        };
                        MetaSelector::ByPurpose(p)
                    };
                    Op::ReadByMetadata { selector }
                }
            };
            out.push(op);
        }
        out
    }

    /// Keys currently alive (for harness assertions).
    pub fn live_keys(&self) -> usize {
        self.live_keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opstream::label_histogram;

    #[test]
    fn mixes_sum_to_100() {
        for m in [
            Mix::wcon(),
            Mix::wpro(),
            Mix::wcus(),
            Mix::fig4a_customer(),
            Mix::delete_only(),
        ] {
            assert_eq!(m.total(), 100);
        }
    }

    #[test]
    fn load_phase_creates_unique_keys() {
        let mut b = GdprBench::new(1, 100);
        let ops = b.load_phase(1000);
        assert_eq!(ops.len(), 1000);
        let mut keys: Vec<u64> = ops.iter().filter_map(|o| o.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1000);
        assert_eq!(b.live_keys(), 1000);
    }

    #[test]
    fn wcus_mix_roughly_respected() {
        let mut b = GdprBench::new(2, 100);
        let _ = b.load_phase(5000);
        let ops = b.ops(10_000, Mix::wcus());
        let h = label_histogram(&ops);
        for label in [
            "read-data",
            "update-data",
            "delete-data",
            "read-meta",
            "update-meta",
        ] {
            let share = *h.get(label).unwrap_or(&0) as f64 / ops.len() as f64;
            assert!(
                (share - 0.20).abs() < 0.03,
                "{label} share {share} out of tolerance"
            );
        }
    }

    #[test]
    fn wpro_is_read_only() {
        let mut b = GdprBench::new(3, 100);
        let _ = b.load_phase(1000);
        let ops = b.ops(5000, Mix::wpro());
        let h = label_histogram(&ops);
        assert!(!h.contains_key("delete-data"));
        assert!(!h.contains_key("update-data"));
        assert!(*h.get("read-by-meta").unwrap() > 700);
    }

    #[test]
    fn deletes_retire_keys_and_never_repeat() {
        let mut b = GdprBench::new(4, 100);
        let _ = b.load_phase(2000);
        let ops = b.ops(5000, Mix::fig4a_customer());
        let mut deleted = std::collections::HashSet::new();
        for op in &ops {
            if let Op::DeleteData { key } = op {
                assert!(deleted.insert(*key), "key {key} deleted twice");
            }
        }
        assert_eq!(b.live_keys(), 2000 - deleted.len());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let gen = |seed| {
            let mut b = GdprBench::new(seed, 50);
            let _ = b.load_phase(100);
            b.ops(200, Mix::wcus())
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let mut b = GdprBench::new(1, 10);
        let bad = Mix {
            create: 50,
            read_data: 0,
            update_data: 0,
            delete_data: 0,
            read_meta: 0,
            update_meta: 0,
            read_by_meta: 0,
        };
        let _ = b.ops(10, bad);
    }
}
