//! The served engine: a length-prefixed binary wire protocol
//! ([`wire`]) plus a multi-tenant TCP gateway ([`gateway`]) that
//! authenticates tenants and feeds one shared
//! [`ConcurrentEngine`](datacase_engine::concurrent::ConcurrentEngine).
//!
//! The crate is std-only and thread-per-connection: a [`Server`]
//! binds a loopback listener, each accepted connection performs a
//! tenant handshake, and authenticated batches run under a
//! key-range-scoped engine session so one tenant can never read,
//! write, scan, or erase another tenant's units — a property the
//! grounded `TenantIsolation` invariant (X) re-checks over the final
//! state and audit history.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod gateway;
pub mod wire;

pub use gateway::{Client, Server, TenantSpec};
pub use wire::{Frame, WireError, MAX_FRAME, VERSION};
