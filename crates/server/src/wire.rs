//! The Data-CASE wire protocol: length-prefixed binary frames over any
//! byte stream.
//!
//! ## Frame layout
//!
//! Every frame starts with a fixed 8-byte header:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"DC"
//! 2       1     protocol version (currently 1)
//! 3       1     frame type
//! 4       4     payload length, big-endian u32 (<= MAX_FRAME)
//! 8       n     payload
//! ```
//!
//! Because the header carries the exact payload length, a receiver can
//! always consume a frame it cannot *interpret*: header-level garbage
//! (bad magic, bad version, oversized length) is fatal and closes the
//! connection, but a well-framed payload that fails to decode only
//! poisons that frame — the stream stays synchronized and the peer is
//! answered with a [`Frame::ProtocolError`] instead of a panic.
//!
//! ## Frame vocabulary
//!
//! | type | frame | direction |
//! |------|-------|-----------|
//! | 0x01 | `Hello` (tenant, token, actor) | client → server |
//! | 0x02 | `Welcome` (tenant id, shards)  | server → client |
//! | 0x03 | `Batch` (requests)             | client → server |
//! | 0x04 | `Replies` (responses, stamps)  | server → client |
//! | 0x05 | `ProtocolError` (code, detail) | server → client |
//! | 0x06 | `Goodbye`                      | client → server |
//!
//! All integers are big-endian; byte strings and UTF-8 strings carry a
//! u32 length prefix. [`Request`]/[`Reply`]/[`EngineError`] variants are
//! tagged with one leading byte each; the codecs cover the engine's full
//! typed vocabulary and are exercised variant-by-variant in
//! `tests/prop_wire.rs`.

use std::io::{Read, Write};

use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::purpose::PurposeId;
use datacase_engine::concurrent::SubmitStamp;
use datacase_engine::error::EngineError;
use datacase_engine::frontend::{AuditRef, Reply, Request, Response};
use datacase_engine::Actor;
use datacase_sim::time::Ts;
use datacase_workloads::opstream::{MetaField, MetaSelector};
use datacase_workloads::record::GdprMetadata;

/// Frame magic: every Data-CASE frame starts with these two bytes.
pub const MAGIC: [u8; 2] = *b"DC";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Hard ceiling on a frame payload (1 MiB). An honest client never gets
/// close; a length past it is treated as stream corruption, not an
/// allocation request.
pub const MAX_FRAME: u32 = 1 << 20;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 8;

/// Why a wire operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The underlying transport failed (connection reset, EOF mid-frame).
    Io(String),
    /// The frame did not start with [`MAGIC`] — the stream is not (or no
    /// longer) speaking this protocol. Fatal.
    BadMagic,
    /// Unsupported protocol version. Fatal.
    BadVersion(u8),
    /// Unknown frame type byte. Fatal (cannot know the sender's intent).
    UnknownFrame(u8),
    /// Declared payload length exceeds [`MAX_FRAME`]. Fatal.
    Oversized(u32),
    /// The payload ended before the structure it declared was complete.
    Truncated,
    /// The payload decoded fully but left unconsumed trailing bytes.
    Trailing(usize),
    /// An enum tag that names no variant.
    UnknownTag {
        /// Which decoder hit it ("request", "reply", ...).
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A whole frame did not arrive within the receiver's read deadline.
    /// Fatal: the stream may be stalled mid-frame, so synchronization is
    /// no longer known — and a peer that dribbles bytes slower than the
    /// deadline is indistinguishable from a slow-loris hold.
    Timeout,
    /// The peer reported a protocol error (decoded from a
    /// [`Frame::ProtocolError`] frame).
    Protocol(String),
}

impl WireError {
    /// Does this error poison the whole connection? Header-level errors
    /// do — after them the receiver no longer knows where the next frame
    /// starts. Payload-level errors do not: the length prefix already
    /// consumed the bad frame, so the stream stays synchronized.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            WireError::Io(_)
                | WireError::BadMagic
                | WireError::BadVersion(_)
                | WireError::UnknownFrame(_)
                | WireError::Oversized(_)
                | WireError::Timeout
        )
    }

    /// Short stable code for the [`Frame::ProtocolError`] payload.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Io(_) => "io",
            WireError::BadMagic => "bad-magic",
            WireError::BadVersion(_) => "bad-version",
            WireError::UnknownFrame(_) => "unknown-frame",
            WireError::Oversized(_) => "oversized",
            WireError::Truncated => "truncated",
            WireError::Trailing(_) => "trailing",
            WireError::UnknownTag { .. } => "unknown-tag",
            WireError::BadUtf8 => "bad-utf8",
            WireError::Timeout => "timeout",
            WireError::Protocol(_) => "protocol",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(detail) => write!(f, "transport failure: {detail}"),
            WireError::BadMagic => write!(f, "frame does not start with the DC magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownFrame(t) => write!(f, "unknown frame type 0x{t:02x}"),
            WireError::Oversized(n) => {
                write!(f, "declared payload of {n} bytes exceeds the frame cap")
            }
            WireError::Truncated => write!(f, "payload truncated mid-structure"),
            WireError::Trailing(n) => write!(f, "{n} unconsumed trailing payload bytes"),
            WireError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag 0x{tag:02x}")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Timeout => write!(f, "frame did not complete within the read deadline"),
            WireError::Protocol(detail) => write!(f, "peer reported: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.to_string())
    }
}

/// One protocol frame, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Tenant handshake: the first frame a client sends.
    Hello {
        /// Tenant name as registered with the gateway.
        tenant: String,
        /// The tenant's shared-secret token.
        token: String,
        /// The actor role the connection's sessions run as.
        actor: Actor,
    },
    /// Handshake accepted.
    Welcome {
        /// The tenant's numeric id (its keyspace block).
        tenant_id: u32,
        /// Shard count of the engine behind the gateway.
        shards: u16,
    },
    /// A batch of requests in tenant-local key terms.
    Batch(Vec<Request>),
    /// Answers to one batch, in request order, plus the submit stamps
    /// (the batch's position in each touched shard's serial history).
    Replies {
        /// One response per request.
        responses: Vec<Response>,
        /// Where the batch landed, per touched shard in shard order.
        stamps: Vec<SubmitStamp>,
    },
    /// The peer could not honour a frame; the stream remains usable
    /// unless the underlying error was fatal.
    ProtocolError {
        /// Stable error code (see [`WireError::code`]).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Orderly half-close: the client is done.
    Goodbye,
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Welcome { .. } => 0x02,
            Frame::Batch(_) => 0x03,
            Frame::Replies { .. } => 0x04,
            Frame::ProtocolError { .. } => 0x05,
            Frame::Goodbye => 0x06,
        }
    }

    /// Encode the frame (header + payload) into a byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Frame::Hello {
                tenant,
                token,
                actor,
            } => {
                put_str(&mut payload, tenant);
                put_str(&mut payload, token);
                payload.push(actor_tag(*actor));
            }
            Frame::Welcome { tenant_id, shards } => {
                payload.extend_from_slice(&tenant_id.to_be_bytes());
                payload.extend_from_slice(&shards.to_be_bytes());
            }
            Frame::Batch(requests) => {
                payload.extend_from_slice(&(requests.len() as u32).to_be_bytes());
                for request in requests {
                    put_request(&mut payload, request);
                }
            }
            Frame::Replies { responses, stamps } => {
                payload.extend_from_slice(&(responses.len() as u32).to_be_bytes());
                for response in responses {
                    put_response(&mut payload, response);
                }
                payload.extend_from_slice(&(stamps.len() as u32).to_be_bytes());
                for stamp in stamps {
                    payload.extend_from_slice(&(stamp.shard as u32).to_be_bytes());
                    payload.extend_from_slice(&stamp.seq.to_be_bytes());
                }
            }
            Frame::ProtocolError { code, detail } => {
                put_str(&mut payload, code);
                put_str(&mut payload, detail);
            }
            Frame::Goodbye => {}
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.type_byte());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one frame from a (type byte, payload) pair, as produced by
    /// [`read_frame_raw`]. Payload-level failures here are recoverable:
    /// the frame was already consumed from the stream.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cursor::new(payload);
        let frame = match frame_type {
            0x01 => {
                let tenant = cur.get_str()?;
                let token = cur.get_str()?;
                let actor = actor_from_tag(cur.get_u8()?)?;
                Frame::Hello {
                    tenant,
                    token,
                    actor,
                }
            }
            0x02 => Frame::Welcome {
                tenant_id: cur.get_u32()?,
                shards: cur.get_u16()?,
            },
            0x03 => {
                let n = cur.get_u32()? as usize;
                let mut requests = Vec::new();
                for _ in 0..n {
                    requests.push(cur.get_request()?);
                }
                Frame::Batch(requests)
            }
            0x04 => {
                let n = cur.get_u32()? as usize;
                let mut responses = Vec::new();
                for _ in 0..n {
                    responses.push(cur.get_response()?);
                }
                let s = cur.get_u32()? as usize;
                let mut stamps = Vec::new();
                for _ in 0..s {
                    let shard = cur.get_u32()? as usize;
                    let seq = cur.get_u64()?;
                    stamps.push(SubmitStamp { shard, seq });
                }
                Frame::Replies { responses, stamps }
            }
            0x05 => Frame::ProtocolError {
                code: cur.get_str()?,
                detail: cur.get_str()?,
            },
            0x06 => Frame::Goodbye,
            other => return Err(WireError::UnknownFrame(other)),
        };
        cur.finish()?;
        Ok(frame)
    }
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())?;
    w.flush()?;
    Ok(())
}

/// Read one frame header + payload off a stream without interpreting the
/// payload. Returns `(frame_type, payload)`. Every error from here is
/// fatal — either the transport failed or frame synchronization is lost.
pub fn read_frame_raw<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let frame_type = header[3];
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((frame_type, payload))
}

/// Read and decode one frame. Payload-level decode failures are returned
/// as non-fatal errors with the stream still synchronized on the next
/// frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let (frame_type, payload) = read_frame_raw(r)?;
    Frame::decode(frame_type, &payload)
}

// ---------------------------------------------------------------------
// Primitive put/get
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn actor_tag(actor: Actor) -> u8 {
    match actor {
        Actor::Controller => 0,
        Actor::Processor => 1,
        Actor::Subject => 2,
    }
}

fn actor_from_tag(tag: u8) -> Result<Actor, WireError> {
    match tag {
        0 => Ok(Actor::Controller),
        1 => Ok(Actor::Processor),
        2 => Ok(Actor::Subject),
        tag => Err(WireError::UnknownTag { what: "actor", tag }),
    }
}

fn interpretation_tag(i: ErasureInterpretation) -> u8 {
    match i {
        ErasureInterpretation::ReversiblyInaccessible => 0,
        ErasureInterpretation::Deleted => 1,
        ErasureInterpretation::StronglyDeleted => 2,
        ErasureInterpretation::PermanentlyDeleted => 3,
    }
}

fn interpretation_from_tag(tag: u8) -> Result<ErasureInterpretation, WireError> {
    match tag {
        0 => Ok(ErasureInterpretation::ReversiblyInaccessible),
        1 => Ok(ErasureInterpretation::Deleted),
        2 => Ok(ErasureInterpretation::StronglyDeleted),
        3 => Ok(ErasureInterpretation::PermanentlyDeleted),
        tag => Err(WireError::UnknownTag {
            what: "erasure-interpretation",
            tag,
        }),
    }
}

fn put_request(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Create {
            key,
            payload,
            metadata,
        } => {
            out.push(0);
            out.extend_from_slice(&key.to_be_bytes());
            put_bytes(out, payload);
            out.extend_from_slice(&metadata.subject.to_be_bytes());
            put_str(out, metadata.purpose.name());
            out.extend_from_slice(&metadata.ttl.0.to_be_bytes());
            out.extend_from_slice(&metadata.origin_device.to_be_bytes());
            out.push(metadata.objects_to_sharing as u8);
        }
        Request::Read { key } => {
            out.push(1);
            out.extend_from_slice(&key.to_be_bytes());
        }
        Request::Update { key, payload } => {
            out.push(2);
            out.extend_from_slice(&key.to_be_bytes());
            put_bytes(out, payload);
        }
        Request::Delete { key } => {
            out.push(3);
            out.extend_from_slice(&key.to_be_bytes());
        }
        Request::ReadMeta { key } => {
            out.push(4);
            out.extend_from_slice(&key.to_be_bytes());
        }
        Request::UpdateMeta { key, field } => {
            out.push(5);
            out.extend_from_slice(&key.to_be_bytes());
            out.push(match field {
                MetaField::Ttl => 0,
                MetaField::Purpose => 1,
                MetaField::Objection => 2,
            });
        }
        Request::ReadByMeta { selector } => {
            out.push(6);
            match selector {
                MetaSelector::ByPurpose(p) => {
                    out.push(0);
                    put_str(out, p.name());
                }
                MetaSelector::BySubject(s) => {
                    out.push(1);
                    out.extend_from_slice(&s.to_be_bytes());
                }
            }
        }
        Request::Erase {
            key,
            interpretation,
        } => {
            out.push(7);
            out.extend_from_slice(&key.to_be_bytes());
            out.push(interpretation_tag(*interpretation));
        }
        Request::Restore { key } => {
            out.push(8);
            out.extend_from_slice(&key.to_be_bytes());
        }
    }
}

fn put_reply(out: &mut Vec<u8>, reply: Reply) {
    match reply {
        Reply::Done => out.push(0),
        Reply::Value(n) => {
            out.push(1);
            out.extend_from_slice(&(n as u64).to_be_bytes());
        }
        Reply::Rows(n) => {
            out.push(2);
            out.extend_from_slice(&(n as u64).to_be_bytes());
        }
        Reply::Erased(i) => {
            out.push(3);
            out.push(interpretation_tag(i));
        }
        Reply::Restored => out.push(4),
    }
}

fn put_error(out: &mut Vec<u8>, error: &EngineError) {
    match error {
        EngineError::Denied { reason } => {
            out.push(0);
            put_str(out, reason);
        }
        EngineError::NotFound { key } => {
            out.push(1);
            out.extend_from_slice(&key.to_be_bytes());
        }
        EngineError::RetentionExpired { key, since } => {
            out.push(2);
            out.extend_from_slice(&key.to_be_bytes());
            out.extend_from_slice(&since.0.to_be_bytes());
        }
        EngineError::Backend { detail } => {
            out.push(3);
            put_str(out, detail);
        }
    }
}

fn put_response(out: &mut Vec<u8>, response: &Response) {
    out.extend_from_slice(&(response.index as u64).to_be_bytes());
    match &response.outcome {
        Ok(reply) => {
            out.push(1);
            put_reply(out, *reply);
        }
        Err(error) => {
            out.push(0);
            put_error(out, error);
        }
    }
    out.extend_from_slice(&response.audit.start.to_be_bytes());
    out.extend_from_slice(&response.audit.records.to_be_bytes());
    out.extend_from_slice(&response.audit.at.0.to_be_bytes());
}

/// A bounds-checked payload reader: every accessor returns
/// [`WireError::Truncated`] instead of slicing past the end.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.get_u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn get_str(&mut self) -> Result<String, WireError> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|_| WireError::BadUtf8)
    }

    fn get_purpose(&mut self) -> Result<PurposeId, WireError> {
        Ok(PurposeId::new(&self.get_str()?))
    }

    fn get_request(&mut self) -> Result<Request, WireError> {
        let tag = self.get_u8()?;
        Ok(match tag {
            0 => {
                let key = self.get_u64()?;
                let payload = self.get_bytes()?;
                let subject = self.get_u32()?;
                let purpose = self.get_purpose()?;
                let ttl = Ts(self.get_u64()?);
                let origin_device = self.get_u32()?;
                let objects_to_sharing = self.get_u8()? != 0;
                Request::Create {
                    key,
                    payload,
                    metadata: GdprMetadata {
                        subject,
                        purpose,
                        ttl,
                        origin_device,
                        objects_to_sharing,
                    },
                }
            }
            1 => Request::Read {
                key: self.get_u64()?,
            },
            2 => Request::Update {
                key: self.get_u64()?,
                payload: self.get_bytes()?,
            },
            3 => Request::Delete {
                key: self.get_u64()?,
            },
            4 => Request::ReadMeta {
                key: self.get_u64()?,
            },
            5 => {
                let key = self.get_u64()?;
                let field = match self.get_u8()? {
                    0 => MetaField::Ttl,
                    1 => MetaField::Purpose,
                    2 => MetaField::Objection,
                    tag => {
                        return Err(WireError::UnknownTag {
                            what: "meta-field",
                            tag,
                        })
                    }
                };
                Request::UpdateMeta { key, field }
            }
            6 => {
                let selector = match self.get_u8()? {
                    0 => MetaSelector::ByPurpose(self.get_purpose()?),
                    1 => MetaSelector::BySubject(self.get_u32()?),
                    tag => {
                        return Err(WireError::UnknownTag {
                            what: "meta-selector",
                            tag,
                        })
                    }
                };
                Request::ReadByMeta { selector }
            }
            7 => {
                let key = self.get_u64()?;
                let interpretation = interpretation_from_tag(self.get_u8()?)?;
                Request::Erase {
                    key,
                    interpretation,
                }
            }
            8 => Request::Restore {
                key: self.get_u64()?,
            },
            tag => {
                return Err(WireError::UnknownTag {
                    what: "request",
                    tag,
                })
            }
        })
    }

    fn get_reply(&mut self) -> Result<Reply, WireError> {
        Ok(match self.get_u8()? {
            0 => Reply::Done,
            1 => Reply::Value(self.get_u64()? as usize),
            2 => Reply::Rows(self.get_u64()? as usize),
            3 => Reply::Erased(interpretation_from_tag(self.get_u8()?)?),
            4 => Reply::Restored,
            tag => return Err(WireError::UnknownTag { what: "reply", tag }),
        })
    }

    fn get_error(&mut self) -> Result<EngineError, WireError> {
        Ok(match self.get_u8()? {
            0 => EngineError::Denied {
                reason: self.get_str()?,
            },
            1 => EngineError::NotFound {
                key: self.get_u64()?,
            },
            2 => EngineError::RetentionExpired {
                key: self.get_u64()?,
                since: Ts(self.get_u64()?),
            },
            3 => EngineError::Backend {
                detail: self.get_str()?,
            },
            tag => {
                return Err(WireError::UnknownTag {
                    what: "engine-error",
                    tag,
                })
            }
        })
    }

    fn get_response(&mut self) -> Result<Response, WireError> {
        let index = self.get_u64()? as usize;
        let outcome = match self.get_u8()? {
            0 => Err(self.get_error()?),
            1 => Ok(self.get_reply()?),
            tag => {
                return Err(WireError::UnknownTag {
                    what: "outcome",
                    tag,
                })
            }
        };
        let audit = AuditRef {
            start: self.get_u64()?,
            records: self.get_u64()?,
            at: Ts(self.get_u64()?),
        };
        Ok(Response {
            index,
            outcome,
            audit,
        })
    }

    /// Assert the payload is fully consumed.
    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left > 0 {
            return Err(WireError::Trailing(left));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let mut slice = bytes.as_slice();
        let decoded = read_frame(&mut slice).expect("decode");
        assert_eq!(decoded, frame);
        assert!(slice.is_empty(), "frame fully consumed");
    }

    #[test]
    fn control_frames_round_trip() {
        round_trip(Frame::Hello {
            tenant: "acme".into(),
            token: "s3cret".into(),
            actor: Actor::Processor,
        });
        round_trip(Frame::Welcome {
            tenant_id: 7,
            shards: 4,
        });
        round_trip(Frame::ProtocolError {
            code: "truncated".into(),
            detail: "payload truncated mid-structure".into(),
        });
        round_trip(Frame::Goodbye);
    }

    #[test]
    fn batch_and_replies_round_trip() {
        round_trip(Frame::Batch(vec![
            Request::Read { key: 9 },
            Request::Erase {
                key: 2,
                interpretation: ErasureInterpretation::StronglyDeleted,
            },
        ]));
        round_trip(Frame::Replies {
            responses: vec![Response {
                index: 0,
                outcome: Err(EngineError::RetentionExpired {
                    key: 2,
                    since: Ts(99),
                }),
                audit: AuditRef {
                    start: 5,
                    records: 2,
                    at: Ts(100),
                },
            }],
            stamps: vec![SubmitStamp { shard: 1, seq: 42 }],
        });
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = Frame::Goodbye.encode();
        bytes[0] = b'X';
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, WireError::BadMagic);
        assert!(err.is_fatal());
    }

    #[test]
    fn truncated_payload_is_recoverable() {
        let bytes = Frame::Hello {
            tenant: "t".into(),
            token: "k".into(),
            actor: Actor::Subject,
        }
        .encode();
        // Re-frame a chopped payload under a correct header.
        let payload = &bytes[HEADER_LEN..bytes.len() - 1];
        let err = Frame::decode(0x01, payload).unwrap_err();
        assert_eq!(err, WireError::Truncated);
        assert!(!err.is_fatal());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Frame::Goodbye.encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, WireError::Oversized(u32::MAX));
        assert!(err.is_fatal());
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let err = Frame::decode(0x06, &[0u8]).unwrap_err();
        assert_eq!(err, WireError::Trailing(1));
    }

    #[test]
    fn timeout_is_fatal_with_a_stable_code() {
        let err = WireError::Timeout;
        assert!(err.is_fatal());
        assert_eq!(err.code(), "timeout");
        assert!(err.to_string().contains("deadline"));
    }
}
