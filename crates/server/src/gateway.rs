//! The multi-tenant TCP gateway: authenticates tenants, namespaces their
//! requests, and feeds one shared [`ConcurrentEngine`].
//!
//! One [`Server`] owns one engine and hosts many tenants. Each accepted
//! connection must open with a [`Frame::Hello`] naming a registered
//! tenant and presenting its token; the gateway answers with
//! [`Frame::Welcome`] and from then on serves [`Frame::Batch`]es.
//!
//! ## Isolation, in three layers
//!
//! 1. **Namespacing.** Client requests speak tenant-local keys and
//!    subject ids; the gateway rewrites them into the tenant's block of
//!    the shared keyspace ([`TenantId::global_key`] /
//!    [`TenantId::global_subject`]) on the way in and rewrites reply keys
//!    back on the way out, so no tenant ever *sees* a global id.
//! 2. **Engine scoping.** Every batch executes under a
//!    [`Session`] carrying the tenant's [`TenantId::key_range`]: the
//!    engine itself denies key-addressed requests outside the block and
//!    filters metadata scans to it — a compromised or buggy gateway
//!    rewrite cannot reach across tenants.
//! 3. **Grounding.** The engine's subject registry records which tenant
//!    each subject belongs to, so
//!    [`compliance_report`](datacase_engine::frontend::Frontend::compliance_report)
//!    checks the `TenantIsolation` invariant (X) over the final state,
//!    history, and audit records.
//!
//! ## Resource protection
//!
//! Every connection is served under [`GatewayLimits`]: a whole-frame
//! read deadline (a slow-loris client dribbling bytes cannot hold a
//! thread past it), a write timeout (a client that stops draining its
//! socket cannot park a reply), and a server-wide bound on concurrently
//! executing batches (past it the gateway load-sheds with an
//! `overloaded` protocol error instead of queueing). All refusals are
//! typed [`WireError`]s or [`Frame::ProtocolError`] replies — a hostile
//! client can never panic the gateway.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use datacase_core::tenant::TenantId;
use datacase_engine::concurrent::{ConcurrentEngine, EngineHandle};
use datacase_engine::error::EngineError;
use datacase_engine::frontend::{Frontend, Request, Response, Session};
use datacase_engine::profiles::EngineConfig;
use datacase_engine::Actor;
use datacase_workloads::opstream::MetaSelector;

use crate::wire::{read_frame_raw, write_frame, Frame, WireError};

/// A tenant as registered with the gateway: its wire name and
/// shared-secret token. Tenant ids are assigned at registration order,
/// starting from 1 (tenant 0 is the default/unserved tenant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Name the tenant presents in its handshake.
    pub name: String,
    /// Shared-secret token the handshake must match.
    pub token: String,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(name: &str, token: &str) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            token: token.into(),
        }
    }
}

struct Registered {
    id: TenantId,
    token: String,
}

/// Resource-protection limits for served connections. Every limit is
/// enforced with a typed [`WireError`] or a [`Frame::ProtocolError`] —
/// never a panic — so a hostile or broken client can only ever cost the
/// gateway one bounded connection.
#[derive(Clone, Copy, Debug)]
pub struct GatewayLimits {
    /// Whole-frame read deadline. The clock starts when the gateway
    /// begins waiting for a frame and covers every byte of it, so a
    /// slow-loris client dribbling one byte per almost-timeout still
    /// trips it: the *frame* must finish inside the window, not each
    /// read. Also bounds shutdown — an idle connection unblocks within
    /// one deadline of the listener stopping.
    pub read_timeout: Duration,
    /// Per-write timeout on replies; a client that stops draining its
    /// socket loses the connection instead of parking the thread.
    pub write_timeout: Duration,
    /// Server-wide bound on concurrently executing [`Frame::Batch`]es.
    /// Past it the gateway answers `overloaded` instead of queueing —
    /// the refusal is non-fatal and the client may retry on the same
    /// connection.
    pub max_in_flight_frames: usize,
}

impl Default for GatewayLimits {
    fn default() -> GatewayLimits {
        GatewayLimits {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_in_flight_frames: 1024,
        }
    }
}

/// Server-wide count of batches currently executing in the engine.
/// Admission is try-acquire: past the bound the batch is refused, never
/// queued, so the gate cannot itself become a place to park threads.
struct InFlightGate {
    max: usize,
    in_flight: Mutex<usize>,
}

impl InFlightGate {
    fn new(max: usize) -> Arc<InFlightGate> {
        Arc::new(InFlightGate {
            max,
            in_flight: Mutex::new(0),
        })
    }

    fn try_acquire(self: &Arc<InFlightGate>) -> Option<InFlightPermit> {
        let mut n = self.in_flight.lock().expect("in-flight gate");
        if *n >= self.max {
            return None;
        }
        *n += 1;
        Some(InFlightPermit {
            gate: Arc::clone(self),
        })
    }
}

/// One admitted batch; releases its slot on drop (including on the
/// error paths out of the serve loop).
struct InFlightPermit {
    gate: Arc<InFlightGate>,
}

impl Drop for InFlightPermit {
    fn drop(&mut self) {
        *self.gate.in_flight.lock().expect("in-flight gate") -= 1;
    }
}

/// A [`Read`] adapter holding the whole read to one fixed deadline: each
/// underlying read gets only the *remaining* window via
/// `set_read_timeout`, so the total wait is bounded no matter how many
/// one-byte instalments the peer sends.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
    timed_out: bool,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let now = Instant::now();
        if now >= self.deadline {
            self.timed_out = true;
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "frame read deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(self.deadline - now))?;
        match (&mut &*self.stream).read(buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                self.timed_out = true;
                Err(e)
            }
            other => other,
        }
    }
}

/// Read one raw frame with the whole frame held to `timeout`. Deadline
/// expiry surfaces as the typed [`WireError::Timeout`] instead of a
/// generic transport error.
fn read_frame_deadline(stream: &TcpStream, timeout: Duration) -> Result<(u8, Vec<u8>), WireError> {
    let mut guarded = DeadlineStream {
        stream,
        deadline: Instant::now() + timeout,
        timed_out: false,
    };
    match read_frame_raw(&mut guarded) {
        Err(WireError::Io(_)) if guarded.timed_out => Err(WireError::Timeout),
        other => other,
    }
}

/// The running gateway: accept loop + one thread per connection, all
/// feeding cloneable [`EngineHandle`]s of one shared engine.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    engine: ConcurrentEngine,
}

impl Server {
    /// Bind a loopback listener, spin up `shards` engine shards of
    /// `config`, and start serving the given tenants under
    /// [`GatewayLimits::default`]. Returns once the listener is
    /// accepting.
    pub fn spawn(config: EngineConfig, shards: usize, tenants: &[TenantSpec]) -> Server {
        Server::spawn_with_limits(config, shards, tenants, GatewayLimits::default())
    }

    /// [`Server::spawn`] with explicit connection-protection limits.
    pub fn spawn_with_limits(
        config: EngineConfig,
        shards: usize,
        tenants: &[TenantSpec],
        limits: GatewayLimits,
    ) -> Server {
        let engine = ConcurrentEngine::new(config, shards);
        let mut registry: HashMap<String, Registered> = HashMap::new();
        for (i, spec) in tenants.iter().enumerate() {
            registry.insert(
                spec.name.clone(),
                Registered {
                    id: TenantId(i as u32 + 1),
                    token: spec.token.clone(),
                },
            );
        }
        let registry = Arc::new(registry);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener address");
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let gate = InFlightGate::new(limits.max_in_flight_frames);
        let accept = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let handle = engine.handle();
            let shards = engine.shards() as u16;
            std::thread::Builder::new()
                .name("datacase-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let registry = Arc::clone(&registry);
                        let handle = handle.clone();
                        let gate = Arc::clone(&gate);
                        let conn = std::thread::Builder::new()
                            .name("datacase-conn".into())
                            .spawn(move || {
                                serve_connection(stream, &registry, handle, shards, limits, &gate)
                            })
                            .expect("spawn connection thread");
                        connections.lock().expect("connection list").push(conn);
                    }
                })
                .expect("spawn accept thread")
        };
        Server {
            addr,
            stop,
            accept: Some(accept),
            connections,
            engine,
        }
    }

    /// The address the gateway is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A direct in-process submission port into the shared engine (used
    /// by benches to measure the wire layer's overhead against the same
    /// engine).
    pub fn engine_handle(&self) -> EngineHandle {
        self.engine.handle()
    }

    /// Graceful shutdown: stop accepting, drain every in-flight
    /// connection (each is served until its client closes, says goodbye,
    /// or sits idle past the read deadline — an idle client cannot pin
    /// shutdown), then drain and join the engine's shard workers. Returns
    /// the per-shard [`Frontend`]s for forensics, chain verification, and
    /// compliance checks.
    pub fn shutdown(mut self) -> Vec<Frontend> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        let connections = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for conn in connections {
            conn.join().expect("connection thread panicked");
        }
        self.engine.shutdown()
    }
}

/// Serve one authenticated connection until EOF, goodbye, a fatal
/// protocol error, or a blown [`GatewayLimits`] deadline. Never panics
/// on malformed input: payload-level decode failures are answered with
/// [`Frame::ProtocolError`] and the stream continues at the next frame
/// boundary; deadline and overload refusals are typed, and only the
/// deadline one closes the connection.
fn serve_connection(
    mut stream: TcpStream,
    registry: &HashMap<String, Registered>,
    handle: EngineHandle,
    shards: u16,
    limits: GatewayLimits,
    gate: &Arc<InFlightGate>,
) {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(limits.write_timeout)).ok();
    // --- Handshake ---
    let hello = match read_frame_deadline(&stream, limits.read_timeout)
        .and_then(|(frame_type, payload)| Frame::decode(frame_type, &payload))
    {
        Ok(frame) => frame,
        Err(_) => return,
    };
    let (tenant, actor) = match hello {
        Frame::Hello {
            tenant,
            token,
            actor,
        } => match registry.get(&tenant) {
            // Constant-time token check: an early-exit `==` on the shared
            // secret would let a remote peer walk the token byte by byte
            // off response timing.
            Some(reg) if datacase_crypto::ct_eq(reg.token.as_bytes(), token.as_bytes()) => {
                (reg.id, actor)
            }
            _ => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::ProtocolError {
                        code: "unauthorized".into(),
                        detail: "unknown tenant or bad token".into(),
                    },
                );
                return;
            }
        },
        _ => {
            let _ = write_frame(
                &mut stream,
                &Frame::ProtocolError {
                    code: "handshake".into(),
                    detail: "expected a Hello frame".into(),
                },
            );
            return;
        }
    };
    if write_frame(
        &mut stream,
        &Frame::Welcome {
            tenant_id: tenant.0,
            shards,
        },
    )
    .is_err()
    {
        return;
    }
    // --- Serve batches ---
    let session = Session::new(actor).scoped(tenant.key_range());
    loop {
        let frame = match read_frame_deadline(&stream, limits.read_timeout) {
            Ok((frame_type, payload)) => match Frame::decode(frame_type, &payload) {
                Ok(frame) => frame,
                Err(err) if !err.is_fatal() => {
                    // The length prefix consumed the bad frame; report and
                    // keep serving from the next boundary.
                    if reply_protocol_error(&mut stream, &err).is_err() {
                        return;
                    }
                    continue;
                }
                Err(err) => {
                    let _ = reply_protocol_error(&mut stream, &err);
                    return;
                }
            },
            // A blown deadline is reported (best effort — the write is
            // itself bounded) before the connection closes, so an honest
            // but stalled client learns why it was dropped.
            Err(err @ WireError::Timeout) => {
                let _ = reply_protocol_error(&mut stream, &err);
                return;
            }
            // EOF and header-level corruption both end the connection.
            Err(_) => return,
        };
        match frame {
            Frame::Batch(local) => {
                let Some(_permit) = gate.try_acquire() else {
                    // Load-shed instead of queueing: the refusal is
                    // non-fatal and the client may retry on this same
                    // connection.
                    let refusal = Frame::ProtocolError {
                        code: "overloaded".into(),
                        detail: format!(
                            "gateway at its in-flight batch bound ({}); retry",
                            gate.max
                        ),
                    };
                    if write_frame(&mut stream, &refusal).is_err() {
                        return;
                    }
                    continue;
                };
                let global = match namespace_batch(tenant, &local) {
                    Ok(global) => global,
                    Err(detail) => {
                        let refusal = Frame::ProtocolError {
                            code: "namespace".into(),
                            detail,
                        };
                        if write_frame(&mut stream, &refusal).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let (responses, stamps) = handle.submit(&session, &global).wait();
                let responses: Vec<Response> = responses
                    .into_iter()
                    .map(|r| localise_response(tenant, r))
                    .collect();
                if write_frame(&mut stream, &Frame::Replies { responses, stamps }).is_err() {
                    return;
                }
            }
            Frame::Goodbye => {
                let _ = stream.flush();
                return;
            }
            _ => {
                let err = WireError::Protocol("unexpected frame after handshake".into());
                if reply_protocol_error(&mut stream, &err).is_err() {
                    return;
                }
            }
        }
    }
}

fn read_decoded(stream: &mut TcpStream) -> Result<Frame, WireError> {
    let (frame_type, payload) = read_frame_raw(stream)?;
    Frame::decode(frame_type, &payload)
}

fn reply_protocol_error(stream: &mut TcpStream, err: &WireError) -> Result<(), WireError> {
    write_frame(
        stream,
        &Frame::ProtocolError {
            code: err.code().into(),
            detail: err.to_string(),
        },
    )
}

/// Rewrite a tenant-local batch into the shared keyspace: keys move into
/// the tenant's block, and the subject ids carried by `Create` metadata
/// and `BySubject` selectors move into the tenant's subject block.
fn namespace_batch(tenant: TenantId, local: &[Request]) -> Result<Vec<Request>, String> {
    let key = |k: u64| {
        tenant
            .global_key(k)
            .ok_or_else(|| format!("key {k} outside the tenant-local keyspace"))
    };
    let subject = |s: u32| {
        tenant
            .global_subject(s)
            .ok_or_else(|| format!("subject {s} outside the tenant-local subject space"))
    };
    local
        .iter()
        .map(|request| {
            Ok(match request {
                Request::Create {
                    key: k,
                    payload,
                    metadata,
                } => {
                    let mut metadata = metadata.clone();
                    metadata.subject = subject(metadata.subject)?;
                    Request::Create {
                        key: key(*k)?,
                        payload: payload.clone(),
                        metadata,
                    }
                }
                Request::Read { key: k } => Request::Read { key: key(*k)? },
                Request::Update { key: k, payload } => Request::Update {
                    key: key(*k)?,
                    payload: payload.clone(),
                },
                Request::Delete { key: k } => Request::Delete { key: key(*k)? },
                Request::ReadMeta { key: k } => Request::ReadMeta { key: key(*k)? },
                Request::UpdateMeta { key: k, field } => Request::UpdateMeta {
                    key: key(*k)?,
                    field: *field,
                },
                Request::ReadByMeta { selector } => Request::ReadByMeta {
                    selector: match selector {
                        MetaSelector::BySubject(s) => MetaSelector::BySubject(subject(*s)?),
                        MetaSelector::ByPurpose(p) => MetaSelector::ByPurpose(*p),
                    },
                },
                Request::Erase {
                    key: k,
                    interpretation,
                } => Request::Erase {
                    key: key(*k)?,
                    interpretation: *interpretation,
                },
                Request::Restore { key: k } => Request::Restore { key: key(*k)? },
            })
        })
        .collect()
}

/// Rewrite global keys in a response's error back into the tenant's
/// local terms — a client must never see (or learn from) another block's
/// key numbering.
fn localise_response(tenant: TenantId, mut response: Response) -> Response {
    if let Err(error) = &mut response.outcome {
        match error {
            EngineError::NotFound { key } => {
                if let Some(local) = tenant.local_key(*key) {
                    *key = local;
                }
            }
            EngineError::RetentionExpired { key, .. } => {
                if let Some(local) = tenant.local_key(*key) {
                    *key = local;
                }
            }
            EngineError::Denied { .. } | EngineError::Backend { .. } => {}
        }
    }
    response
}

/// Connect to a served engine as `tenant` and run batches over the wire.
/// Blocking, one in-flight batch at a time — the closed-loop client the
/// bench driver and tests use.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The server-assigned tenant id.
    pub tenant_id: u32,
    /// Shard count reported by the server.
    pub shards: u16,
}

impl Client {
    /// Dial `addr`, perform the tenant handshake, and return a connected
    /// client (or the handshake's protocol error).
    pub fn connect(
        addr: SocketAddr,
        tenant: &str,
        token: &str,
        actor: Actor,
    ) -> Result<Client, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_frame(
            &mut stream,
            &Frame::Hello {
                tenant: tenant.into(),
                token: token.into(),
                actor,
            },
        )?;
        match read_decoded(&mut stream) {
            Ok(Frame::Welcome { tenant_id, shards }) => Ok(Client {
                stream,
                tenant_id,
                shards,
            }),
            Ok(Frame::ProtocolError { code, detail }) => {
                Err(WireError::Protocol(format!("{code}: {detail}")))
            }
            Ok(_) => Err(WireError::Protocol("unexpected handshake reply".into())),
            Err(err) => Err(err),
        }
    }

    /// Submit one batch (tenant-local keys) and block for the responses
    /// plus the batch's submit stamps.
    pub fn call_stamped(
        &mut self,
        requests: &[Request],
    ) -> Result<(Vec<Response>, Vec<datacase_engine::concurrent::SubmitStamp>), WireError> {
        write_frame(&mut self.stream, &Frame::Batch(requests.to_vec()))?;
        match read_decoded(&mut self.stream)? {
            Frame::Replies { responses, stamps } => Ok((responses, stamps)),
            Frame::ProtocolError { code, detail } => {
                Err(WireError::Protocol(format!("{code}: {detail}")))
            }
            _ => Err(WireError::Protocol("unexpected reply frame".into())),
        }
    }

    /// Submit one batch and block for the responses.
    pub fn call(&mut self, requests: &[Request]) -> Result<Vec<Response>, WireError> {
        Ok(self.call_stamped(requests)?.0)
    }

    /// Send one raw pre-encoded frame and read back the next frame —
    /// test hook for protocol-error behaviour.
    pub fn raw_round_trip(&mut self, bytes: &[u8]) -> Result<Frame, WireError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        read_decoded(&mut self.stream)
    }

    /// Orderly close: tell the server this client is done.
    pub fn goodbye(mut self) -> Result<(), WireError> {
        write_frame(&mut self.stream, &Frame::Goodbye)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_rejects_bad_token() {
        let server = Server::spawn(
            EngineConfig::p_base(),
            2,
            &[TenantSpec::new("acme", "topsecret")],
        );
        let err = Client::connect(server.addr(), "acme", "wrong", Actor::Controller).unwrap_err();
        assert!(matches!(err, WireError::Protocol(ref s) if s.contains("unauthorized")));
        let err =
            Client::connect(server.addr(), "ghost", "topsecret", Actor::Controller).unwrap_err();
        assert!(matches!(err, WireError::Protocol(ref s) if s.contains("unauthorized")));
        server.shutdown();
    }

    #[test]
    fn handshake_token_check_is_constant_time_and_exact() {
        // The gateway compares tokens with datacase_crypto::ct_eq. Near
        // misses that an early-exit `==` would also reject — but after
        // leaking how far the prefix matched — must fail, and only the
        // exact token must pass.
        let server = Server::spawn(
            EngineConfig::p_base(),
            2,
            &[TenantSpec::new("acme", "topsecret")],
        );
        for near_miss in ["topsecreT", "topsecre", "topsecret0", "Topsecret", ""] {
            let err =
                Client::connect(server.addr(), "acme", near_miss, Actor::Controller).unwrap_err();
            assert!(
                matches!(err, WireError::Protocol(ref s) if s.contains("unauthorized")),
                "token {near_miss:?} must be rejected"
            );
        }
        Client::connect(server.addr(), "acme", "topsecret", Actor::Controller)
            .expect("exact token authenticates")
            .goodbye()
            .unwrap();
        server.shutdown();
    }

    #[test]
    fn namespacing_rejects_out_of_block_ids() {
        let t = TenantId(1);
        let over_key = Request::Read {
            key: u64::from(u32::MAX) + 1,
        };
        assert!(namespace_batch(t, &[over_key]).is_err());
        let ok = namespace_batch(t, &[Request::Read { key: 7 }]).unwrap();
        assert_eq!(ok, vec![Request::Read { key: (1 << 32) | 7 }]);
    }

    #[test]
    fn overload_gate_load_sheds_and_the_connection_survives() {
        // A zero in-flight bound refuses every batch — deterministically,
        // with no concurrency needed — and the refusal must be non-fatal.
        let server = Server::spawn_with_limits(
            EngineConfig::p_base(),
            2,
            &[TenantSpec::new("acme", "topsecret")],
            GatewayLimits {
                max_in_flight_frames: 0,
                ..GatewayLimits::default()
            },
        );
        let mut client =
            Client::connect(server.addr(), "acme", "topsecret", Actor::Controller).unwrap();
        for _ in 0..2 {
            let err = client.call(&[Request::Read { key: 1 }]).unwrap_err();
            assert!(
                matches!(err, WireError::Protocol(ref s) if s.contains("overloaded")),
                "expected an overloaded refusal, got {err:?}"
            );
        }
        // The connection stayed usable through both refusals.
        client.goodbye().unwrap();
        server.shutdown();
    }

    #[test]
    fn in_flight_permits_are_released_between_batches() {
        // With a bound of one, sequential batches must all be admitted:
        // each permit is returned when its batch finishes.
        let server = Server::spawn_with_limits(
            EngineConfig::p_base(),
            2,
            &[TenantSpec::new("acme", "topsecret")],
            GatewayLimits {
                max_in_flight_frames: 1,
                ..GatewayLimits::default()
            },
        );
        let mut client =
            Client::connect(server.addr(), "acme", "topsecret", Actor::Controller).unwrap();
        for _ in 0..3 {
            client
                .call(&[Request::Read { key: 1 }])
                .expect("admitted batch");
        }
        client.goodbye().unwrap();
        server.shutdown();
    }

    #[test]
    fn slow_loris_is_disconnected_at_the_frame_deadline() {
        let server = Server::spawn_with_limits(
            EngineConfig::p_base(),
            2,
            &[TenantSpec::new("acme", "topsecret")],
            GatewayLimits {
                read_timeout: Duration::from_millis(200),
                ..GatewayLimits::default()
            },
        );
        // A connection that never even finishes its handshake is cut.
        let mut silent = TcpStream::connect(server.addr()).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(silent.read(&mut buf).unwrap_or(0), 0, "expected EOF");
        // An authenticated connection that stalls mid-frame is answered
        // with a typed timeout and then cut — the deadline covers the
        // whole frame, so a partial header held open cannot pin a thread.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let hello = Frame::Hello {
            tenant: "acme".into(),
            token: "topsecret".into(),
            actor: Actor::Controller,
        };
        stream.write_all(&hello.encode()).unwrap();
        assert!(matches!(
            crate::wire::read_frame(&mut stream).unwrap(),
            Frame::Welcome { .. }
        ));
        let batch = Frame::Batch(vec![Request::Read { key: 1 }]).encode();
        stream.write_all(&batch[..4]).unwrap();
        stream.flush().unwrap();
        match crate::wire::read_frame(&mut stream) {
            Ok(Frame::ProtocolError { code, .. }) => assert_eq!(code, "timeout"),
            other => panic!("expected a timeout protocol error, got {other:?}"),
        }
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "expected EOF");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_bounded_despite_an_idle_client() {
        let server = Server::spawn_with_limits(
            EngineConfig::p_base(),
            2,
            &[TenantSpec::new("acme", "topsecret")],
            GatewayLimits {
                read_timeout: Duration::from_millis(200),
                ..GatewayLimits::default()
            },
        );
        // An authenticated client that goes idle without goodbye must not
        // pin shutdown: its connection thread unblocks at the deadline.
        let client =
            Client::connect(server.addr(), "acme", "topsecret", Actor::Controller).unwrap();
        let started = Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown pinned by an idle client"
        );
        drop(client);
    }

    #[test]
    fn errors_are_localised_to_tenant_keys() {
        let t = TenantId(2);
        let global = t.global_key(5).unwrap();
        let r = Response {
            index: 0,
            outcome: Err(EngineError::NotFound { key: global }),
            audit: Default::default(),
        };
        let localised = localise_response(t, r);
        assert_eq!(localised.outcome, Err(EngineError::NotFound { key: 5 }));
    }
}
