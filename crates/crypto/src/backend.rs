//! Pluggable crypto-backend selection.
//!
//! Three AES implementations coexist in this crate — the hardware AES-NI
//! path ([`crate::aesni`]), the software fused-T-table path
//! ([`crate::aes`]), and the retained byte-oriented FIPS-197 reference —
//! and all three are byte-identical by the crypto-equivalence gate. The
//! [`CryptoBackend`] selector names which one a cipher instance should
//! run; [`Auto`](CryptoBackend::Auto) (the default) runtime-detects
//! hardware support and is what every engine uses unless a bench or test
//! forces a specific path.
//!
//! Selection is resolved **once per cipher construction** (key
//! expansion time), never per block: an [`AesCtr`](crate::ctr::AesCtr)
//! built under one selector carries its resolved implementation for
//! life, so hot loops pay zero dispatch overhead and a stream can never
//! silently mix backends mid-way.

/// Which AES implementation a cipher should use. Resolved against host
/// capabilities at construction time via [`CryptoBackend::resolve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CryptoBackend {
    /// Runtime-detect: hardware AES when the host CPU supports it,
    /// otherwise the software T-table path. The default everywhere.
    #[default]
    Auto,
    /// Force the software fused-T-table path (the crypto A/B's "software"
    /// series, and the path CI hosts without AES-NI always take).
    Software,
    /// Request hardware AES-NI. Falls back to [`Software`] semantics on
    /// hosts (or builds) without it — forcing `Hardware` is a preference,
    /// never a hard failure, so one config runs everywhere.
    ///
    /// [`Software`]: CryptoBackend::Software
    Hardware,
    /// The retained byte-oriented FIPS-197 reference implementation —
    /// benchmark instrumentation only (the A/B's "before" series).
    Reference,
}

/// The implementation a [`CryptoBackend`] actually resolves to on this
/// host — what a constructed cipher reports via
/// [`AesCtr::active_backend`](crate::ctr::AesCtr::active_backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActiveBackend {
    /// AES-NI rounds, wide-batched CTR in XMM registers.
    Hardware,
    /// Fused T-table rounds, x4-batched keystream, u128-lane XOR.
    Software,
    /// Byte-oriented FIPS-197 rounds, byte-at-a-time XOR.
    Reference,
}

impl CryptoBackend {
    /// Resolve this selector against the host: `Auto` and `Hardware`
    /// yield [`ActiveBackend::Hardware`] exactly when AES-NI is detected
    /// (and fall back to software otherwise); `Software` and `Reference`
    /// are themselves. Detection is a CPUID check on x86_64 and a
    /// compile-time `false` elsewhere.
    pub fn resolve(self) -> ActiveBackend {
        match self {
            CryptoBackend::Reference => ActiveBackend::Reference,
            CryptoBackend::Software => ActiveBackend::Software,
            CryptoBackend::Auto | CryptoBackend::Hardware => {
                if crate::aesni::available() {
                    ActiveBackend::Hardware
                } else {
                    ActiveBackend::Software
                }
            }
        }
    }

    /// Does this host have usable hardware AES? (What `Auto` keys off.)
    pub fn hardware_available() -> bool {
        crate::aesni::available()
    }

    /// Short lowercase label (`"auto"`, `"software"`, …) for reports.
    pub fn label(self) -> &'static str {
        match self {
            CryptoBackend::Auto => "auto",
            CryptoBackend::Software => "software",
            CryptoBackend::Hardware => "hardware",
            CryptoBackend::Reference => "reference",
        }
    }
}

impl ActiveBackend {
    /// Short lowercase label (`"hardware"`, `"software"`, `"reference"`).
    pub fn label(self) -> &'static str {
        match self {
            ActiveBackend::Hardware => "hardware",
            ActiveBackend::Software => "software",
            ActiveBackend::Reference => "reference",
        }
    }
}

impl std::fmt::Display for CryptoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::fmt::Display for ActiveBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The crypto-relevant CPU features of this host, as `(name, detected)`
/// pairs — recorded into `BENCH_crypto.json` so a measurement is always
/// attributable to the silicon it ran on. Empty-handed (all `false`)
/// on non-x86_64 targets and software-only builds.
pub fn cpu_features() -> Vec<(&'static str, bool)> {
    #[cfg(all(target_arch = "x86_64", feature = "hw-aes"))]
    {
        vec![
            ("aes", std::arch::is_x86_feature_detected!("aes")),
            (
                "pclmulqdq",
                std::arch::is_x86_feature_detected!("pclmulqdq"),
            ),
            ("sse4.1", std::arch::is_x86_feature_detected!("sse4.1")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("vaes", std::arch::is_x86_feature_detected!("vaes")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("sha", std::arch::is_x86_feature_detected!("sha")),
        ]
    }
    #[cfg(not(all(target_arch = "x86_64", feature = "hw-aes")))]
    {
        vec![
            ("aes", false),
            ("pclmulqdq", false),
            ("sse4.1", false),
            ("avx2", false),
            ("vaes", false),
            ("avx512f", false),
            ("sha", false),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_backends_resolve_to_themselves() {
        assert_eq!(CryptoBackend::Software.resolve(), ActiveBackend::Software);
        assert_eq!(CryptoBackend::Reference.resolve(), ActiveBackend::Reference);
    }

    #[test]
    fn auto_and_hardware_resolve_by_detection() {
        let expect = if CryptoBackend::hardware_available() {
            ActiveBackend::Hardware
        } else {
            ActiveBackend::Software
        };
        assert_eq!(CryptoBackend::Auto.resolve(), expect);
        // Forced Hardware is a preference, not a hard failure: it must
        // degrade to Software on non-capable hosts instead of panicking.
        assert_eq!(CryptoBackend::Hardware.resolve(), expect);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(CryptoBackend::default(), CryptoBackend::Auto);
    }

    #[test]
    fn cpu_features_report_is_consistent_with_detection() {
        let features = cpu_features();
        let aes = features
            .iter()
            .find(|(name, _)| *name == "aes")
            .expect("aes always reported")
            .1;
        assert_eq!(aes, CryptoBackend::hardware_available());
    }
}
