//! AES-128/192/256 block cipher (FIPS-197), with a fused-T-table hot path.
//!
//! The S-box is generated at construction from the GF(2⁸) inverse + affine
//! transform rather than pasted as a 256-entry literal, which keeps the code
//! auditable; correctness is pinned by the FIPS-197 appendix vectors in the
//! tests below.
//!
//! Two round implementations coexist:
//!
//! * [`Aes::encrypt_block`] / [`Aes::decrypt_block`] — the hot path. Each
//!   round fuses SubBytes + ShiftRows + MixColumns + AddRoundKey into four
//!   u32 table lookups and four XORs per column (the classic T-table
//!   construction; decryption uses the FIPS-197 §5.3.5 *equivalent inverse
//!   cipher* with InvMixColumns-transformed round keys).
//! * [`Aes::encrypt_block_ref`] / [`Aes::decrypt_block_ref`] — the original
//!   byte-oriented FIPS-197 rounds, retained verbatim as the reference
//!   implementation. The crypto-equivalence gate (`tests/prop_crypto.rs`)
//!   pins the T-table path byte-identical to this one on random keys and
//!   blocks for all three key sizes, and the `crypto_throughput` bench
//!   reports both so the speedup stays measurable.

/// AES key sizes supported by the cipher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of rounds (Nr).
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Key length in 32-bit words (Nk).
    pub fn nk(self) -> usize {
        self.key_len() / 4
    }

    /// Key size in bits (for cost accounting).
    pub fn bits(self) -> u32 {
        (self.key_len() * 8) as u32
    }
}

/// GF(2⁸) multiplication modulo the AES polynomial x⁸+x⁴+x³+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), by exponentiation to 254.
fn ginv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8)*
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

#[allow(clippy::needless_range_loop)] // i is the GF(2^8) element, not just an index
fn build_sbox() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    for i in 0..256usize {
        let x = ginv(i as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let s =
            x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
        sbox[i] = s;
        inv[s as usize] = i as u8;
    }
    (sbox, inv)
}

/// Precomputed GF(2⁸) multiplication tables for the MixColumns constants.
/// Sector-level encryption pushes megabytes through the cipher, so the
/// per-byte `gmul` loop is replaced by table lookups (≈10× throughput)
/// while key expansion keeps using `gmul` directly.
#[derive(Clone)]
struct MulTables {
    x2: [u8; 256],
    x3: [u8; 256],
    x9: [u8; 256],
    x11: [u8; 256],
    x13: [u8; 256],
    x14: [u8; 256],
}

fn build_mul_tables() -> MulTables {
    let mut t = MulTables {
        x2: [0; 256],
        x3: [0; 256],
        x9: [0; 256],
        x11: [0; 256],
        x13: [0; 256],
        x14: [0; 256],
    };
    for i in 0..256usize {
        let b = i as u8;
        t.x2[i] = gmul(b, 2);
        t.x3[i] = gmul(b, 3);
        t.x9[i] = gmul(b, 9);
        t.x11[i] = gmul(b, 11);
        t.x13[i] = gmul(b, 13);
        t.x14[i] = gmul(b, 14);
    }
    t
}

fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static SBOXES: std::sync::OnceLock<([u8; 256], [u8; 256])> = std::sync::OnceLock::new();
    SBOXES.get_or_init(build_sbox)
}

fn mul_tables() -> &'static MulTables {
    static TABLES: std::sync::OnceLock<MulTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(build_mul_tables)
}

/// Fused round tables: `te[r][x]` is MixColumns' column `r` scaled by
/// `S(x)`, packed big-endian, so one encryption round per column is
/// `te[0][b0] ^ te[1][b1] ^ te[2][b2] ^ te[3][b3] ^ rk` (SubBytes,
/// ShiftRows and MixColumns fused into the lookups, AddRoundKey the final
/// XOR). `td` is the mirror image over `InvS` with the InvMixColumns
/// constants, used by the equivalent inverse cipher. 8 KiB total,
/// derived — like the S-box — from `gmul` at first use.
struct TTables {
    te: [[u32; 256]; 4],
    td: [[u32; 256]; 4],
}

#[allow(clippy::needless_range_loop)] // x is the GF(2^8) element, not just an index
fn build_ttables() -> TTables {
    let (sbox, inv_sbox) = sboxes();
    let m = mul_tables();
    let mut t = TTables {
        te: [[0u32; 256]; 4],
        td: [[0u32; 256]; 4],
    };
    for x in 0..256usize {
        let s = sbox[x] as usize;
        let te0 = u32::from_be_bytes([m.x2[s], s as u8, s as u8, m.x3[s]]);
        let is = inv_sbox[x] as usize;
        let td0 = u32::from_be_bytes([m.x14[is], m.x9[is], m.x13[is], m.x11[is]]);
        for r in 0..4 {
            t.te[r][x] = te0.rotate_right(8 * r as u32);
            t.td[r][x] = td0.rotate_right(8 * r as u32);
        }
    }
    t
}

fn ttables() -> &'static TTables {
    static TABLES: std::sync::OnceLock<TTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(build_ttables)
}

/// InvMixColumns of one big-endian column word (key-schedule transform
/// for the equivalent inverse cipher — cold path, so plain `MulTables`).
fn inv_mix_word(m: &MulTables, w: u32) -> u32 {
    let [a0, a1, a2, a3] = w.to_be_bytes().map(|b| b as usize);
    u32::from_be_bytes([
        m.x14[a0] ^ m.x11[a1] ^ m.x13[a2] ^ m.x9[a3],
        m.x9[a0] ^ m.x14[a1] ^ m.x11[a2] ^ m.x13[a3],
        m.x13[a0] ^ m.x9[a1] ^ m.x14[a2] ^ m.x11[a3],
        m.x11[a0] ^ m.x13[a1] ^ m.x9[a2] ^ m.x14[a3],
    ])
}

/// An expanded AES key ready to encrypt/decrypt 16-byte blocks.
#[derive(Clone)]
pub struct Aes {
    size: KeySize,
    round_keys: Vec<[u8; 16]>,
    /// Encryption round keys as big-endian column words (T-table path).
    ek: Vec<[u32; 4]>,
    /// Equivalent-inverse-cipher round keys: `ek` reversed, middle rounds
    /// passed through InvMixColumns (FIPS-197 §5.3.5).
    dk: Vec<[u32; 4]>,
    sbox: &'static [u8; 256],
    inv_sbox: &'static [u8; 256],
    mul: &'static MulTables,
    tt: &'static TTables,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("size", &self.size).finish()
    }
}

impl Aes {
    /// Expand `key` (length must match `size`) into round keys.
    ///
    /// # Panics
    /// Panics if `key.len() != size.key_len()`.
    pub fn new(size: KeySize, key: &[u8]) -> Aes {
        assert_eq!(key.len(), size.key_len(), "AES key length mismatch");
        let (sbox, inv_sbox) = sboxes();
        let nk = size.nk();
        let nr = size.rounds();
        let nwords = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(nwords);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon: u8 = 1;
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = [temp[1], temp[2], temp[3], temp[0]]; // RotWord
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize]; // SubWord
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys: Vec<[u8; 16]> = (0..=nr)
            .map(|r| {
                let mut rk = [0u8; 16];
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                rk
            })
            .collect();
        let mul = mul_tables();
        let ek: Vec<[u32; 4]> = round_keys
            .iter()
            .map(|rk| {
                [0, 1, 2, 3]
                    .map(|c| u32::from_be_bytes(rk[4 * c..4 * c + 4].try_into().expect("4 bytes")))
            })
            .collect();
        let dk: Vec<[u32; 4]> = (0..=nr)
            .map(|r| {
                let src = ek[nr - r];
                if r == 0 || r == nr {
                    src
                } else {
                    src.map(|w| inv_mix_word(mul, w))
                }
            })
            .collect();
        Aes {
            size,
            round_keys,
            ek,
            dk,
            sbox,
            inv_sbox,
            mul,
            tt: ttables(),
        }
    }

    /// The configured key size.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// The raw cipher key, reconstructed from the schedule (FIPS-197
    /// §5.2: the first `Nk` expansion words *are* the key). Lets
    /// [`AesCtr`](crate::ctr::AesCtr) re-expand an already-built cipher
    /// onto a different backend without carrying key bytes separately.
    pub(crate) fn raw_key(&self) -> Vec<u8> {
        self.round_keys
            .iter()
            .flatten()
            .copied()
            .take(self.size.key_len())
            .collect()
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout: state[4*c + r] = byte at row r, column c (FIPS column-major).
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[4 * ((c + r) % 4) + r];
            }
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[(c + r) % 4] = state[4 * c + r];
            }
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn mix_columns(&self, state: &mut [u8; 16]) {
        let m = &self.mul;
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = m.x2[col[0] as usize] ^ m.x3[col[1] as usize] ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ m.x2[col[1] as usize] ^ m.x3[col[2] as usize] ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ m.x2[col[2] as usize] ^ m.x3[col[3] as usize];
            state[4 * c + 3] = m.x3[col[0] as usize] ^ col[1] ^ col[2] ^ m.x2[col[3] as usize];
        }
    }

    fn inv_mix_columns(&self, state: &mut [u8; 16]) {
        let m = &self.mul;
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = m.x14[col[0] as usize]
                ^ m.x11[col[1] as usize]
                ^ m.x13[col[2] as usize]
                ^ m.x9[col[3] as usize];
            state[4 * c + 1] = m.x9[col[0] as usize]
                ^ m.x14[col[1] as usize]
                ^ m.x11[col[2] as usize]
                ^ m.x13[col[3] as usize];
            state[4 * c + 2] = m.x13[col[0] as usize]
                ^ m.x9[col[1] as usize]
                ^ m.x14[col[2] as usize]
                ^ m.x11[col[3] as usize];
            state[4 * c + 3] = m.x11[col[0] as usize]
                ^ m.x13[col[1] as usize]
                ^ m.x9[col[2] as usize]
                ^ m.x14[col[3] as usize];
        }
    }

    /// Encrypt one 16-byte block in place (T-table hot path).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let out = self.encrypt_words(Self::load_words(block));
        Self::store_words(out, block);
    }

    /// Decrypt one 16-byte block in place (equivalent inverse cipher).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let td = &self.tt.td;
        let is = self.inv_sbox;
        let nr = self.size.rounds();
        let mut s = Self::load_words(block);
        for (w, rk) in s.iter_mut().zip(self.dk[0]) {
            *w ^= rk;
        }
        for r in 1..nr {
            let rk = self.dk[r];
            // InvShiftRows moves row r right by r: output column i, row r
            // comes from input column (i + 4 - r) % 4.
            s = [
                td[0][(s[0] >> 24) as usize]
                    ^ td[1][((s[3] >> 16) & 0xff) as usize]
                    ^ td[2][((s[2] >> 8) & 0xff) as usize]
                    ^ td[3][(s[1] & 0xff) as usize]
                    ^ rk[0],
                td[0][(s[1] >> 24) as usize]
                    ^ td[1][((s[0] >> 16) & 0xff) as usize]
                    ^ td[2][((s[3] >> 8) & 0xff) as usize]
                    ^ td[3][(s[2] & 0xff) as usize]
                    ^ rk[1],
                td[0][(s[2] >> 24) as usize]
                    ^ td[1][((s[1] >> 16) & 0xff) as usize]
                    ^ td[2][((s[0] >> 8) & 0xff) as usize]
                    ^ td[3][(s[3] & 0xff) as usize]
                    ^ rk[2],
                td[0][(s[3] >> 24) as usize]
                    ^ td[1][((s[2] >> 16) & 0xff) as usize]
                    ^ td[2][((s[1] >> 8) & 0xff) as usize]
                    ^ td[3][(s[0] & 0xff) as usize]
                    ^ rk[3],
            ];
        }
        let rk = self.dk[nr];
        let sub = |i: usize, j3: usize, j2: usize, j1: usize| -> u32 {
            u32::from_be_bytes([
                is[(s[i] >> 24) as usize],
                is[((s[j3] >> 16) & 0xff) as usize],
                is[((s[j2] >> 8) & 0xff) as usize],
                is[(s[j1] & 0xff) as usize],
            ])
        };
        let out = [
            sub(0, 3, 2, 1) ^ rk[0],
            sub(1, 0, 3, 2) ^ rk[1],
            sub(2, 1, 0, 3) ^ rk[2],
            sub(3, 2, 1, 0) ^ rk[3],
        ];
        Self::store_words(out, block);
    }

    /// The FIPS column-major state as four big-endian column words.
    #[inline]
    fn load_words(block: &[u8; 16]) -> [u32; 4] {
        [0, 1, 2, 3].map(|c| u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("4")))
    }

    #[inline]
    fn store_words(words: [u32; 4], block: &mut [u8; 16]) {
        for (c, w) in words.into_iter().enumerate() {
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    /// One full encryption over column words — the shared core of
    /// [`encrypt_block`](Aes::encrypt_block) and the CTR keystream
    /// generator, which keeps its counter in words and skips the byte
    /// round-trip entirely.
    #[inline]
    pub(crate) fn encrypt_words(&self, mut s: [u32; 4]) -> [u32; 4] {
        let te = &self.tt.te;
        let sbox = self.sbox;
        let nr = self.size.rounds();
        for (w, rk) in s.iter_mut().zip(self.ek[0]) {
            *w ^= rk;
        }
        for r in 1..nr {
            let rk = self.ek[r];
            // ShiftRows moves row r left by r: output column i, row r
            // comes from input column (i + r) % 4.
            s = [
                te[0][(s[0] >> 24) as usize]
                    ^ te[1][((s[1] >> 16) & 0xff) as usize]
                    ^ te[2][((s[2] >> 8) & 0xff) as usize]
                    ^ te[3][(s[3] & 0xff) as usize]
                    ^ rk[0],
                te[0][(s[1] >> 24) as usize]
                    ^ te[1][((s[2] >> 16) & 0xff) as usize]
                    ^ te[2][((s[3] >> 8) & 0xff) as usize]
                    ^ te[3][(s[0] & 0xff) as usize]
                    ^ rk[1],
                te[0][(s[2] >> 24) as usize]
                    ^ te[1][((s[3] >> 16) & 0xff) as usize]
                    ^ te[2][((s[0] >> 8) & 0xff) as usize]
                    ^ te[3][(s[1] & 0xff) as usize]
                    ^ rk[2],
                te[0][(s[3] >> 24) as usize]
                    ^ te[1][((s[0] >> 16) & 0xff) as usize]
                    ^ te[2][((s[1] >> 8) & 0xff) as usize]
                    ^ te[3][(s[2] & 0xff) as usize]
                    ^ rk[3],
            ];
        }
        let rk = self.ek[nr];
        let sub = |i: usize, j1: usize, j2: usize, j3: usize| -> u32 {
            u32::from_be_bytes([
                sbox[(s[i] >> 24) as usize],
                sbox[((s[j1] >> 16) & 0xff) as usize],
                sbox[((s[j2] >> 8) & 0xff) as usize],
                sbox[(s[j3] & 0xff) as usize],
            ])
        };
        [
            sub(0, 1, 2, 3) ^ rk[0],
            sub(1, 2, 3, 0) ^ rk[1],
            sub(2, 3, 0, 1) ^ rk[2],
            sub(3, 0, 1, 2) ^ rk[3],
        ]
    }

    /// Four [`encrypt_words`](Aes::encrypt_words) in software-SIMD
    /// lockstep: each round loads its key once and advances four
    /// independent states through the T-tables together, so the four
    /// dependency chains overlap (the per-chain table-load latency hides
    /// behind the other three) instead of serialising block after block.
    /// CTR keystream generation is the caller: four counter blocks per
    /// call, bit-identical to four scalar calls.
    #[inline]
    pub(crate) fn encrypt_words_x4(&self, mut s: [[u32; 4]; 4]) -> [[u32; 4]; 4] {
        let te = &self.tt.te;
        let sbox = self.sbox;
        let nr = self.size.rounds();
        let rk0 = self.ek[0];
        for lane in s.iter_mut() {
            for (w, rk) in lane.iter_mut().zip(rk0) {
                *w ^= rk;
            }
        }
        for r in 1..nr {
            let rk = self.ek[r];
            for lane in s.iter_mut() {
                let v = *lane;
                *lane = [
                    te[0][(v[0] >> 24) as usize]
                        ^ te[1][((v[1] >> 16) & 0xff) as usize]
                        ^ te[2][((v[2] >> 8) & 0xff) as usize]
                        ^ te[3][(v[3] & 0xff) as usize]
                        ^ rk[0],
                    te[0][(v[1] >> 24) as usize]
                        ^ te[1][((v[2] >> 16) & 0xff) as usize]
                        ^ te[2][((v[3] >> 8) & 0xff) as usize]
                        ^ te[3][(v[0] & 0xff) as usize]
                        ^ rk[1],
                    te[0][(v[2] >> 24) as usize]
                        ^ te[1][((v[3] >> 16) & 0xff) as usize]
                        ^ te[2][((v[0] >> 8) & 0xff) as usize]
                        ^ te[3][(v[1] & 0xff) as usize]
                        ^ rk[2],
                    te[0][(v[3] >> 24) as usize]
                        ^ te[1][((v[0] >> 16) & 0xff) as usize]
                        ^ te[2][((v[1] >> 8) & 0xff) as usize]
                        ^ te[3][(v[2] & 0xff) as usize]
                        ^ rk[3],
                ];
            }
        }
        let rk = self.ek[nr];
        for lane in s.iter_mut() {
            let v = *lane;
            let sub = |i: usize, j1: usize, j2: usize, j3: usize| -> u32 {
                u32::from_be_bytes([
                    sbox[(v[i] >> 24) as usize],
                    sbox[((v[j1] >> 16) & 0xff) as usize],
                    sbox[((v[j2] >> 8) & 0xff) as usize],
                    sbox[(v[j3] & 0xff) as usize],
                ])
            };
            *lane = [
                sub(0, 1, 2, 3) ^ rk[0],
                sub(1, 2, 3, 0) ^ rk[1],
                sub(2, 3, 0, 1) ^ rk[2],
                sub(3, 0, 1, 2) ^ rk[3],
            ];
        }
        s
    }

    /// Encrypt one block with the retained byte-oriented FIPS-197 rounds —
    /// the reference path the crypto-equivalence gate pins
    /// [`encrypt_block`](Aes::encrypt_block) against, and the "before"
    /// series of the `crypto_throughput` bench.
    pub fn encrypt_block_ref(&self, block: &mut [u8; 16]) {
        let nr = self.size.rounds();
        Self::add_round_key(block, &self.round_keys[0]);
        for r in 1..nr {
            self.sub_bytes(block);
            Self::shift_rows(block);
            self.mix_columns(block);
            Self::add_round_key(block, &self.round_keys[r]);
        }
        self.sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[nr]);
    }

    /// Decrypt one block with the retained byte-oriented FIPS-197 rounds
    /// (see [`encrypt_block_ref`](Aes::encrypt_block_ref)).
    pub fn decrypt_block_ref(&self, block: &mut [u8; 16]) {
        let nr = self.size.rounds();
        Self::add_round_key(block, &self.round_keys[nr]);
        for r in (1..nr).rev() {
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[r]);
            self.inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        let (sbox, inv) = build_sbox();
        // FIPS-197 Figure 7 spot checks.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        for i in 0..256 {
            assert_eq!(inv[sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(KeySize::Aes128, &key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let key = hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let aes = Aes::new(KeySize::Aes192, &key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(KeySize::Aes256, &key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn sp800_38a_aes128_ecb_block1() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt, block #1.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(KeySize::Aes128, &key);
        let mut block: [u8; 16] = hex("6bc1bee22e409f96e93d7e117393172a").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn wrong_key_length_panics() {
        let _ = Aes::new(KeySize::Aes128, &[0u8; 24]);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new(KeySize::Aes128, &[7u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains('7'), "debug output leaked key bytes: {dbg}");
    }

    #[test]
    fn gmul_matches_known_products() {
        // 0x57 * 0x83 = 0xc1 (FIPS-197 §4.2 example)
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn ginv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gmul(a, ginv(a)), 1, "a={a}");
        }
        assert_eq!(ginv(0), 0);
    }

    #[test]
    fn reference_path_passes_fips197_vectors() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(KeySize::Aes128, &key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block_ref(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block_ref(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_all_sizes(key in proptest::collection::vec(0u8..=255, 32),
                               pt in proptest::collection::vec(0u8..=255, 16)) {
            let mut block: [u8; 16] = pt.clone().try_into().unwrap();
            for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
                let aes = Aes::new(size, &key[..size.key_len()]);
                let orig = block;
                aes.encrypt_block(&mut block);
                proptest::prop_assert_ne!(&block[..], &orig[..]);
                aes.decrypt_block(&mut block);
                proptest::prop_assert_eq!(&block[..], &orig[..]);
            }
        }

        #[test]
        fn ttable_path_matches_reference(key in proptest::collection::vec(0u8..=255, 32),
                                         pt in proptest::collection::vec(0u8..=255, 16)) {
            let block: [u8; 16] = pt.clone().try_into().unwrap();
            for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
                let aes = Aes::new(size, &key[..size.key_len()]);
                let mut fast = block;
                let mut slow = block;
                aes.encrypt_block(&mut fast);
                aes.encrypt_block_ref(&mut slow);
                proptest::prop_assert_eq!(&fast[..], &slow[..]);
                aes.decrypt_block(&mut fast);
                aes.decrypt_block_ref(&mut slow);
                proptest::prop_assert_eq!(&fast[..], &slow[..]);
                proptest::prop_assert_eq!(&fast[..], &block[..]);
            }
        }
    }
}
