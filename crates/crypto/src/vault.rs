//! Per-data-unit key vault for *crypto-erasure*.
//!
//! The paper's related work (\[66\] "Purging compliance from database backups
//! by encryption") motivates an alternative grounding of **permanent
//! deletion**: encrypt each data unit under its own key and destroy the key
//! on erasure. The ciphertext may physically persist (in backups, WAL, old
//! SSTable runs) yet the unit is unrecoverable — a *non-invertible*
//! transformation in Data-CASE terms. The engine's crypto-erasure ablation
//! compares this against VACUUM FULL + drive sanitisation.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::aes::KeySize;
use crate::backend::CryptoBackend;
use crate::ctr::AesCtr;
use crate::sha256::Sha256;

/// Errors surfaced by the vault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VaultError {
    /// No live key for the requested unit (never created, or destroyed).
    KeyUnavailable(u64),
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::KeyUnavailable(id) => {
                write!(
                    f,
                    "no live key for data unit {id} (destroyed or never created)"
                )
            }
        }
    }
}

impl std::error::Error for VaultError {}

/// One cached keystream segment: the CTR stream for a (unit, IV) pair
/// from block 0, stamped with the key generation it was generated under.
///
/// Only *keystream* is cached — never plaintext, never ciphertext — so a
/// cache entry on its own reveals nothing about the data it protected:
/// the encryption-at-rest capsule stays sealed.
#[derive(Debug)]
struct KeystreamEntry {
    generation: u64,
    keystream: Vec<u8>,
}

/// State of a unit's key, kept for audit purposes after destruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyState {
    /// Key material is live and usable.
    Live,
    /// Key material has been destroyed (crypto-erased).
    Destroyed,
}

/// A vault holding one symmetric key per data unit.
///
/// Keys are derived deterministically from a vault master secret and the
/// unit id, then stored; destroying a key removes the material and records
/// a tombstone so audits can prove *when* erasure became irreversible.
///
/// The vault also owns each live key's **expanded schedule**: the
/// [`AesCtr`] is built once when the key materialises and handed out as a
/// shared [`Arc`] by [`cipher`](KeyVault::cipher), so per-operation crypto
/// never re-runs key expansion. [`destroy_key`](KeyVault::destroy_key)
/// drops the cached schedule together with the key material — after it,
/// no path through the vault can reach a working cipher, which is what
/// keeps crypto-erasure semantics intact under caching.
#[derive(Debug)]
pub struct KeyVault {
    master: [u8; 32],
    size: KeySize,
    keys: HashMap<u64, Vec<u8>>,
    schedules: HashMap<u64, Arc<AesCtr>>,
    states: HashMap<u64, KeyState>,
    /// Monotonic per-unit key generation, bumped by every
    /// [`destroy_key`](KeyVault::destroy_key) and hashed into the
    /// derivation — so no destroyed generation's material can ever be
    /// re-derived, no matter how many destroy/recreate cycles a unit
    /// goes through.
    generations: HashMap<u64, u64>,
    /// The backend every schedule in this vault is expanded under — a
    /// **construction-time invariant**: the builder asserts no schedule
    /// exists yet, so a vault can never hold mixed-backend schedules.
    backend: CryptoBackend,
    /// Bounded keystream cache for repeated same-IV re-reads (zipfian
    /// hot tuples). `0` capacity disables it. See
    /// [`keystream_apply`](KeyVault::keystream_apply).
    ks_cache: HashMap<(u64, [u8; 16]), KeystreamEntry>,
    /// Insertion order of `ks_cache` keys — deterministic FIFO eviction.
    ks_order: VecDeque<(u64, [u8; 16])>,
    /// Maximum number of cached keystream segments.
    ks_capacity: usize,
}

impl KeyVault {
    /// A vault deriving keys of the given size from `master_secret`.
    pub fn new(master_secret: &[u8], size: KeySize) -> KeyVault {
        KeyVault {
            master: Sha256::digest(master_secret),
            size,
            keys: HashMap::new(),
            schedules: HashMap::new(),
            states: HashMap::new(),
            generations: HashMap::new(),
            backend: CryptoBackend::Auto,
            ks_cache: HashMap::new(),
            ks_order: VecDeque::new(),
            ks_capacity: 0,
        }
    }

    /// Enable the keystream cache with room for `capacity` (unit, IV)
    /// segments (`0` disables it — the default, so measured crypto costs
    /// stay paper-faithful unless a configuration opts in).
    pub fn with_keystream_cache(mut self, capacity: usize) -> KeyVault {
        self.ks_capacity = capacity;
        self
    }

    /// Expand every schedule in this vault under `backend` — per-vault,
    /// so one bench engine's A/B cannot reroute any other engine in the
    /// process. Derived key *material* is unchanged (the backends are
    /// byte-identical); only expansion and round implementation differ.
    ///
    /// Must be called before any key materialises: the backend is a
    /// construction-time invariant, so a vault can never hold schedules
    /// expanded by different backends.
    ///
    /// # Panics
    /// Panics if any schedule has already been expanded.
    pub fn with_backend(mut self, backend: CryptoBackend) -> KeyVault {
        assert!(
            self.schedules.is_empty(),
            "KeyVault backend is a construction-time invariant: set it \
             before the first ensure_key, not after schedules exist"
        );
        self.backend = backend;
        self
    }

    /// Back-compat shim: `true` is [`CryptoBackend::Reference`], `false`
    /// the default [`CryptoBackend::Auto`]. Prefer
    /// [`with_backend`](KeyVault::with_backend).
    pub fn with_reference_mode(self, on: bool) -> KeyVault {
        self.with_backend(if on {
            CryptoBackend::Reference
        } else {
            CryptoBackend::Auto
        })
    }

    /// The backend this vault expands schedules under.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// The configured key size.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Create (or return the existing) key for `unit`, expanding its
    /// cipher schedule into the cache alongside.
    pub fn ensure_key(&mut self, unit: u64) -> &[u8] {
        // A destroyed key must never be silently recreated with the same
        // material: every destroy bumped the unit's generation, and the
        // generation is hashed into the derivation.
        let generation = self.generations.get(&unit).copied().unwrap_or(0);
        self.states.insert(unit, KeyState::Live);
        if !self.keys.contains_key(&unit) {
            let key = Self::derive_raw(&self.master, self.size, unit, generation);
            self.schedules.insert(
                unit,
                Arc::new(AesCtr::from_key(self.size, &key).with_backend(self.backend)),
            );
            self.keys.insert(unit, key);
        }
        self.keys.get(&unit).expect("just ensured")
    }

    fn derive_raw(master: &[u8; 32], size: KeySize, unit: u64, generation: u64) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(master);
        h.update(&unit.to_be_bytes());
        h.update(&generation.to_be_bytes());
        let d = h.finalize();
        match size {
            KeySize::Aes128 => d[..16].to_vec(),
            KeySize::Aes192 => d[..24].to_vec(),
            KeySize::Aes256 => {
                let mut h2 = Sha256::new();
                h2.update(&d);
                h2.update(b"ext");
                let d2 = h2.finalize();
                let mut k = d.to_vec();
                k.truncate(16);
                k.extend_from_slice(&d2[..16]);
                k
            }
        }
    }

    /// The unit's CTR cipher, if its key is live — a shared handle to the
    /// schedule expanded once at [`ensure_key`](KeyVault::ensure_key)
    /// time, cheap enough to hand to every operation (and to worker
    /// threads: the handle is `Send + Sync`).
    pub fn cipher(&self, unit: u64) -> Result<Arc<AesCtr>, VaultError> {
        match self.schedules.get(&unit) {
            Some(c) => {
                // The construction-time invariant makes a mismatch
                // unreachable; the assertion guards against future
                // refactors reintroducing post-construction rerouting
                // (mixed-backend streams are a silent perf lie).
                debug_assert_eq!(
                    c.active_backend(),
                    self.backend.resolve(),
                    "cached schedule was built by a different backend"
                );
                Ok(Arc::clone(c))
            }
            None => Err(VaultError::KeyUnavailable(unit)),
        }
    }

    /// Apply the unit's CTR stream for `iv` to `data` via the keystream
    /// cache: a hit XORs the cached stream (no AES at all), a miss (or a
    /// too-short entry) generates the uncovered blocks through the
    /// unit's cipher and caches them for the next same-IV operation —
    /// exactly the hot-tuple re-read pattern of zipfian workloads, where
    /// the IV is bound to the unit and never changes.
    ///
    /// Returns `Ok(true)` if the cache served (fully or after extension),
    /// `Ok(false)` if caching is disabled (caller takes the ordinary
    /// [`cipher`](KeyVault::cipher) path), and `Err` if the unit's key is
    /// destroyed or was never created. Output bytes are identical to
    /// `cipher(unit)?.apply(iv, data)` in every case.
    ///
    /// Entries are stamped with the unit's key generation: a destroyed
    /// key's stream can never be served for a recreated key, even though
    /// [`destroy_key`](KeyVault::destroy_key) also drops the entries
    /// eagerly (the stamp is defence in depth).
    pub fn keystream_apply(
        &mut self,
        unit: u64,
        iv: [u8; 16],
        data: &mut [u8],
    ) -> Result<bool, VaultError> {
        if self.ks_capacity == 0 {
            return Ok(false);
        }
        let cipher = match self.schedules.get(&unit) {
            Some(c) => {
                debug_assert_eq!(
                    c.active_backend(),
                    self.backend.resolve(),
                    "cached schedule was built by a different backend"
                );
                Arc::clone(c)
            }
            None => return Err(VaultError::KeyUnavailable(unit)),
        };
        let generation = self.generations.get(&unit).copied().unwrap_or(0);
        let needed = data.len().next_multiple_of(16);
        let key = (unit, iv);
        let stale = self
            .ks_cache
            .get(&key)
            .is_some_and(|e| e.generation != generation);
        if stale {
            self.ks_cache.remove(&key);
            self.ks_order.retain(|k| *k != key);
        }
        let entry = match self.ks_cache.get_mut(&key) {
            Some(e) => e,
            None => {
                if self.ks_cache.len() >= self.ks_capacity {
                    if let Some(oldest) = self.ks_order.pop_front() {
                        self.ks_cache.remove(&oldest);
                    }
                }
                self.ks_order.push_back(key);
                self.ks_cache.entry(key).or_insert(KeystreamEntry {
                    generation,
                    keystream: Vec::new(),
                })
            }
        };
        if entry.keystream.len() < needed {
            // Keystream is the encryption of zeros: extend the cached
            // prefix by running the cipher from the first uncovered block.
            let covered_blocks = (entry.keystream.len() / 16) as u64;
            let mut suffix = vec![0u8; needed - entry.keystream.len()];
            cipher.apply_at(iv, covered_blocks, &mut suffix);
            entry.keystream.extend_from_slice(&suffix);
        }
        for (d, k) in data.iter_mut().zip(entry.keystream.iter()) {
            *d ^= k;
        }
        Ok(true)
    }

    /// Drop every cached keystream segment for `unit` without touching
    /// its key — the cache-invalidation half of
    /// [`destroy_key`](KeyVault::destroy_key), exposed for purge paths
    /// that scrub a unit's physical traces while the key stays live.
    pub fn purge_unit(&mut self, unit: u64) {
        self.ks_cache.retain(|(u, _), _| *u != unit);
        self.ks_order.retain(|(u, _)| *u != unit);
    }

    /// Cached keystream segments currently held (tests and space
    /// accounting).
    pub fn cached_keystreams(&self) -> usize {
        self.ks_cache.len()
    }

    /// Destroy the key for `unit` — the crypto-erasure system-action.
    ///
    /// Returns true if a live key existed. After this call, ciphertexts of
    /// the unit are permanently unreadable through the vault: both the key
    /// material and its cached cipher schedule are dropped. (Handles
    /// already held by in-flight work finish their operation — exactly
    /// like sequential execution, where the erase only takes effect after
    /// the preceding operation completed.)
    pub fn destroy_key(&mut self, unit: u64) -> bool {
        let existed = self.keys.remove(&unit).is_some();
        self.schedules.remove(&unit);
        // Cached keystream goes with the key: XORing it with ciphertext
        // would reveal plaintext, so erasure must not leave it behind.
        self.purge_unit(unit);
        if existed {
            self.states.insert(unit, KeyState::Destroyed);
            *self.generations.entry(unit).or_insert(0) += 1;
        }
        existed
    }

    /// Audit view: the key state for `unit`, if it was ever created.
    pub fn key_state(&self, unit: u64) -> Option<KeyState> {
        self.states.get(&unit).copied()
    }

    /// Number of live keys (contributes to metadata space accounting).
    pub fn live_keys(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::AesCtr;

    #[test]
    fn roundtrip_through_unit_cipher() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        v.ensure_key(7);
        let c = v.cipher(7).unwrap();
        let mut data = b"personal data".to_vec();
        c.apply(AesCtr::iv_from_nonce(7), &mut data);
        assert_ne!(&data, b"personal data");
        c.apply(AesCtr::iv_from_nonce(7), &mut data);
        assert_eq!(&data, b"personal data");
    }

    #[test]
    fn destroy_makes_cipher_unavailable() {
        let mut v = KeyVault::new(b"master", KeySize::Aes256);
        v.ensure_key(1);
        assert!(v.destroy_key(1));
        assert_eq!(v.cipher(1).unwrap_err(), VaultError::KeyUnavailable(1));
        assert_eq!(v.key_state(1), Some(KeyState::Destroyed));
        assert!(!v.destroy_key(1), "double destroy reports no live key");
    }

    #[test]
    fn recreated_key_differs_from_destroyed_one() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        let k1 = v.ensure_key(9).to_vec();
        v.destroy_key(9);
        let k2 = v.ensure_key(9).to_vec();
        assert_ne!(k1, k2, "a destroyed key must never come back");
    }

    #[test]
    fn distinct_units_have_distinct_keys() {
        let mut v = KeyVault::new(b"master", KeySize::Aes256);
        let a = v.ensure_key(1).to_vec();
        let b = v.ensure_key(2).to_vec();
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn key_sizes_respected() {
        for (size, len) in [
            (KeySize::Aes128, 16),
            (KeySize::Aes192, 24),
            (KeySize::Aes256, 32),
        ] {
            let mut v = KeyVault::new(b"m", size);
            assert_eq!(v.ensure_key(1).len(), len);
        }
    }

    #[test]
    fn destroy_drops_cached_schedule_and_blocks_reencryption() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        v.ensure_key(5);
        let cipher = v.cipher(5).unwrap();
        let mut data = b"unit-5-plaintext".to_vec();
        cipher.apply(AesCtr::iv_from_nonce(5), &mut data);
        v.destroy_key(5);
        // The cached schedule went with the key: any attempt to encrypt
        // or decrypt through the vault now fails typed.
        assert_eq!(v.cipher(5).unwrap_err(), VaultError::KeyUnavailable(5));
        // A handle obtained before the destroy still works (in-flight
        // operations complete, like sequential execution), but the vault
        // itself can never mint another.
        cipher.apply(AesCtr::iv_from_nonce(5), &mut data);
        assert_eq!(&data, b"unit-5-plaintext");
    }

    #[test]
    fn destroyed_generations_never_return_across_cycles() {
        // The generation counter is monotonic: a second (third, …)
        // destroy/recreate cycle must not resurrect any previously
        // destroyed generation's material.
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        let mut seen: Vec<Vec<u8>> = Vec::new();
        for cycle in 0..4 {
            let key = v.ensure_key(11).to_vec();
            assert!(
                !seen.contains(&key),
                "cycle {cycle} re-derived a destroyed generation's key"
            );
            seen.push(key);
            v.destroy_key(11);
        }
    }

    #[test]
    fn cached_schedule_is_shared_not_reexpanded() {
        let mut v = KeyVault::new(b"master", KeySize::Aes256);
        v.ensure_key(3);
        let a = v.cipher(3).unwrap();
        let b = v.cipher(3).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "cipher() must hand out the one cached schedule"
        );
    }

    #[test]
    fn recreated_key_gets_fresh_schedule() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        v.ensure_key(9);
        let old = v.cipher(9).unwrap();
        v.destroy_key(9);
        v.ensure_key(9);
        let new = v.cipher(9).unwrap();
        assert!(!Arc::ptr_eq(&old, &new));
        // And the fresh schedule encrypts under the *new* generation.
        let mut a = b"x".repeat(32);
        let mut b = a.clone();
        old.apply(AesCtr::iv_from_nonce(9), &mut a);
        new.apply(AesCtr::iv_from_nonce(9), &mut b);
        assert_ne!(a, b, "destroyed-generation keystream must not return");
    }

    #[test]
    fn keystream_cache_matches_direct_cipher_and_extends() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128).with_keystream_cache(8);
        v.ensure_key(4);
        let iv = AesCtr::iv_from_nonce(4);
        let plain: Vec<u8> = (0..100).map(|i| i as u8).collect();
        // Cold: generates + caches. Warm: served from cache. Longer than
        // cached: extends the segment. All byte-identical to the cipher.
        for len in [40usize, 40, 100, 7] {
            let mut via_cache = plain[..len].to_vec();
            assert_eq!(v.keystream_apply(4, iv, &mut via_cache), Ok(true));
            let mut direct = plain[..len].to_vec();
            v.cipher(4).unwrap().apply(iv, &mut direct);
            assert_eq!(via_cache, direct, "len {len}");
        }
        assert_eq!(v.cached_keystreams(), 1, "one (unit, iv) segment");
    }

    #[test]
    fn keystream_cache_disabled_returns_false() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        v.ensure_key(1);
        let mut data = vec![0xAB; 32];
        assert_eq!(
            v.keystream_apply(1, AesCtr::iv_from_nonce(1), &mut data),
            Ok(false)
        );
        assert_eq!(data, vec![0xAB; 32], "disabled cache must not touch data");
    }

    #[test]
    fn destroy_key_purges_cached_keystream() {
        let mut v = KeyVault::new(b"master", KeySize::Aes256).with_keystream_cache(8);
        v.ensure_key(6);
        let iv = AesCtr::iv_from_nonce(6);
        let mut data = vec![0u8; 64];
        v.keystream_apply(6, iv, &mut data).unwrap();
        assert_eq!(v.cached_keystreams(), 1);
        v.destroy_key(6);
        assert_eq!(
            v.cached_keystreams(),
            0,
            "keystream must not outlive the key"
        );
        let mut again = vec![0u8; 64];
        assert_eq!(
            v.keystream_apply(6, iv, &mut again),
            Err(VaultError::KeyUnavailable(6)),
            "no stale keystream after crypto-erasure"
        );
    }

    #[test]
    fn purge_unit_invalidates_cache_but_keeps_key() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128).with_keystream_cache(8);
        v.ensure_key(2);
        let iv = AesCtr::iv_from_nonce(2);
        let mut data = vec![0u8; 32];
        v.keystream_apply(2, iv, &mut data).unwrap();
        v.purge_unit(2);
        assert_eq!(v.cached_keystreams(), 0);
        // Key still live: the next apply regenerates and still matches.
        let mut a = b"regenerated-after-purge!".to_vec();
        let mut b = a.clone();
        assert_eq!(v.keystream_apply(2, iv, &mut a), Ok(true));
        v.cipher(2).unwrap().apply(iv, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn recreated_key_never_sees_the_old_generations_stream() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128).with_keystream_cache(8);
        v.ensure_key(9);
        let iv = AesCtr::iv_from_nonce(9);
        let mut old_stream = vec![0u8; 32];
        v.keystream_apply(9, iv, &mut old_stream).unwrap();
        v.destroy_key(9);
        v.ensure_key(9);
        let mut new_stream = vec![0u8; 32];
        v.keystream_apply(9, iv, &mut new_stream).unwrap();
        assert_ne!(old_stream, new_stream, "generations must not alias");
        let mut direct = vec![0u8; 32];
        v.cipher(9).unwrap().apply(iv, &mut direct);
        assert_eq!(new_stream, direct);
    }

    #[test]
    fn keystream_cache_capacity_is_bounded_fifo() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128).with_keystream_cache(2);
        for unit in 1..=3u64 {
            v.ensure_key(unit);
            let mut data = vec![0u8; 16];
            v.keystream_apply(unit, AesCtr::iv_from_nonce(unit), &mut data)
                .unwrap();
        }
        assert_eq!(v.cached_keystreams(), 2, "oldest segment evicted");
        // The evicted (oldest) entry regenerates correctly on re-probe.
        let mut a = vec![0x11; 48];
        let mut b = a.clone();
        v.keystream_apply(1, AesCtr::iv_from_nonce(1), &mut a)
            .unwrap();
        v.cipher(1).unwrap().apply(AesCtr::iv_from_nonce(1), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn backend_is_a_construction_time_invariant() {
        // Setting the backend before any key exists is fine…
        let mut v = KeyVault::new(b"m", KeySize::Aes128).with_backend(CryptoBackend::Software);
        assert_eq!(v.backend(), CryptoBackend::Software);
        v.ensure_key(1);
        assert_eq!(
            v.cipher(1).unwrap().active_backend(),
            CryptoBackend::Software.resolve()
        );
    }

    #[test]
    #[should_panic(expected = "construction-time invariant")]
    fn backend_change_after_first_key_is_impossible() {
        let mut v = KeyVault::new(b"m", KeySize::Aes128);
        v.ensure_key(1);
        // A schedule exists: rerouting now would silently mix backends.
        let _ = v.with_backend(CryptoBackend::Reference);
    }

    #[test]
    #[should_panic(expected = "construction-time invariant")]
    fn reference_shim_after_first_key_is_impossible_too() {
        let mut v = KeyVault::new(b"m", KeySize::Aes128);
        v.ensure_key(1);
        let _ = v.with_reference_mode(true);
    }

    #[test]
    fn all_backends_derive_identical_key_material() {
        for backend in [
            CryptoBackend::Auto,
            CryptoBackend::Software,
            CryptoBackend::Hardware,
            CryptoBackend::Reference,
        ] {
            let mut v = KeyVault::new(b"master", KeySize::Aes256).with_backend(backend);
            let mut base = KeyVault::new(b"master", KeySize::Aes256);
            assert_eq!(
                v.ensure_key(3),
                base.ensure_key(3),
                "backend {backend} changed derived key material"
            );
        }
    }

    #[test]
    fn live_key_count_tracks_lifecycle() {
        let mut v = KeyVault::new(b"m", KeySize::Aes128);
        v.ensure_key(1);
        v.ensure_key(2);
        assert_eq!(v.live_keys(), 2);
        v.destroy_key(1);
        assert_eq!(v.live_keys(), 1);
    }
}
