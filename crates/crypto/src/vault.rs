//! Per-data-unit key vault for *crypto-erasure*.
//!
//! The paper's related work (\[66\] "Purging compliance from database backups
//! by encryption") motivates an alternative grounding of **permanent
//! deletion**: encrypt each data unit under its own key and destroy the key
//! on erasure. The ciphertext may physically persist (in backups, WAL, old
//! SSTable runs) yet the unit is unrecoverable — a *non-invertible*
//! transformation in Data-CASE terms. The engine's crypto-erasure ablation
//! compares this against VACUUM FULL + drive sanitisation.

use std::collections::HashMap;

use crate::aes::KeySize;
use crate::ctr::AesCtr;
use crate::sha256::Sha256;

/// Errors surfaced by the vault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VaultError {
    /// No live key for the requested unit (never created, or destroyed).
    KeyUnavailable(u64),
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::KeyUnavailable(id) => {
                write!(
                    f,
                    "no live key for data unit {id} (destroyed or never created)"
                )
            }
        }
    }
}

impl std::error::Error for VaultError {}

/// State of a unit's key, kept for audit purposes after destruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyState {
    /// Key material is live and usable.
    Live,
    /// Key material has been destroyed (crypto-erased).
    Destroyed,
}

/// A vault holding one symmetric key per data unit.
///
/// Keys are derived deterministically from a vault master secret and the
/// unit id, then stored; destroying a key removes the material and records
/// a tombstone so audits can prove *when* erasure became irreversible.
#[derive(Debug)]
pub struct KeyVault {
    master: [u8; 32],
    size: KeySize,
    keys: HashMap<u64, Vec<u8>>,
    states: HashMap<u64, KeyState>,
}

impl KeyVault {
    /// A vault deriving keys of the given size from `master_secret`.
    pub fn new(master_secret: &[u8], size: KeySize) -> KeyVault {
        KeyVault {
            master: Sha256::digest(master_secret),
            size,
            keys: HashMap::new(),
            states: HashMap::new(),
        }
    }

    /// The configured key size.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Create (or return the existing) key for `unit`.
    pub fn ensure_key(&mut self, unit: u64) -> &[u8] {
        if self.states.get(&unit) == Some(&KeyState::Destroyed) {
            // A destroyed key must never be silently recreated with the same
            // material. Derive a fresh generation by hashing in the state.
            let key = self.derive(unit, 1);
            self.states.insert(unit, KeyState::Live);
            return self.keys.entry(unit).or_insert(key);
        }
        self.states.insert(unit, KeyState::Live);
        let size = self.size;
        let master = self.master;
        self.keys
            .entry(unit)
            .or_insert_with(|| Self::derive_raw(&master, size, unit, 0))
    }

    fn derive(&self, unit: u64, generation: u64) -> Vec<u8> {
        Self::derive_raw(&self.master, self.size, unit, generation)
    }

    fn derive_raw(master: &[u8; 32], size: KeySize, unit: u64, generation: u64) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(master);
        h.update(&unit.to_be_bytes());
        h.update(&generation.to_be_bytes());
        let d = h.finalize();
        match size {
            KeySize::Aes128 => d[..16].to_vec(),
            KeySize::Aes192 => d[..24].to_vec(),
            KeySize::Aes256 => {
                let mut h2 = Sha256::new();
                h2.update(&d);
                h2.update(b"ext");
                let d2 = h2.finalize();
                let mut k = d.to_vec();
                k.truncate(16);
                k.extend_from_slice(&d2[..16]);
                k
            }
        }
    }

    /// A CTR cipher for the unit, if its key is live.
    pub fn cipher(&self, unit: u64) -> Result<AesCtr, VaultError> {
        match self.keys.get(&unit) {
            Some(k) => Ok(AesCtr::from_key(self.size, k)),
            None => Err(VaultError::KeyUnavailable(unit)),
        }
    }

    /// Destroy the key for `unit` — the crypto-erasure system-action.
    ///
    /// Returns true if a live key existed. After this call, ciphertexts of
    /// the unit are permanently unreadable through the vault.
    pub fn destroy_key(&mut self, unit: u64) -> bool {
        let existed = self.keys.remove(&unit).is_some();
        if existed {
            self.states.insert(unit, KeyState::Destroyed);
        }
        existed
    }

    /// Audit view: the key state for `unit`, if it was ever created.
    pub fn key_state(&self, unit: u64) -> Option<KeyState> {
        self.states.get(&unit).copied()
    }

    /// Number of live keys (contributes to metadata space accounting).
    pub fn live_keys(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::AesCtr;

    #[test]
    fn roundtrip_through_unit_cipher() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        v.ensure_key(7);
        let c = v.cipher(7).unwrap();
        let mut data = b"personal data".to_vec();
        c.apply(AesCtr::iv_from_nonce(7), &mut data);
        assert_ne!(&data, b"personal data");
        c.apply(AesCtr::iv_from_nonce(7), &mut data);
        assert_eq!(&data, b"personal data");
    }

    #[test]
    fn destroy_makes_cipher_unavailable() {
        let mut v = KeyVault::new(b"master", KeySize::Aes256);
        v.ensure_key(1);
        assert!(v.destroy_key(1));
        assert_eq!(v.cipher(1).unwrap_err(), VaultError::KeyUnavailable(1));
        assert_eq!(v.key_state(1), Some(KeyState::Destroyed));
        assert!(!v.destroy_key(1), "double destroy reports no live key");
    }

    #[test]
    fn recreated_key_differs_from_destroyed_one() {
        let mut v = KeyVault::new(b"master", KeySize::Aes128);
        let k1 = v.ensure_key(9).to_vec();
        v.destroy_key(9);
        let k2 = v.ensure_key(9).to_vec();
        assert_ne!(k1, k2, "a destroyed key must never come back");
    }

    #[test]
    fn distinct_units_have_distinct_keys() {
        let mut v = KeyVault::new(b"master", KeySize::Aes256);
        let a = v.ensure_key(1).to_vec();
        let b = v.ensure_key(2).to_vec();
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn key_sizes_respected() {
        for (size, len) in [
            (KeySize::Aes128, 16),
            (KeySize::Aes192, 24),
            (KeySize::Aes256, 32),
        ] {
            let mut v = KeyVault::new(b"m", size);
            assert_eq!(v.ensure_key(1).len(), len);
        }
    }

    #[test]
    fn live_key_count_tracks_lifecycle() {
        let mut v = KeyVault::new(b"m", KeySize::Aes128);
        v.ensure_key(1);
        v.ensure_key(2);
        assert_eq!(v.live_keys(), 2);
        v.destroy_key(1);
        assert_eq!(v.live_keys(), 1);
    }
}
