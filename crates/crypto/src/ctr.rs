//! AES-CTR stream mode (NIST SP 800-38A §6.5).
//!
//! CTR turns the block cipher into a stream cipher: encryption and
//! decryption are the same operation (XOR with the encrypted counter
//! stream), which is what the storage layers use for tuple payloads and
//! whole pages.

use crate::aes::{Aes, KeySize};

/// AES in counter mode with a 16-byte initial counter block.
#[derive(Clone, Debug)]
pub struct AesCtr {
    aes: Aes,
}

impl AesCtr {
    /// Build from an already-expanded cipher.
    pub fn new(aes: Aes) -> AesCtr {
        AesCtr { aes }
    }

    /// Convenience constructor from raw key bytes.
    pub fn from_key(size: KeySize, key: &[u8]) -> AesCtr {
        AesCtr::new(Aes::new(size, key))
    }

    /// The underlying key size (for cost accounting).
    pub fn key_size(&self) -> KeySize {
        self.aes.key_size()
    }

    /// XOR `data` in place with the keystream generated from `iv`.
    ///
    /// The counter occupies the last 8 bytes of the IV block, big-endian,
    /// and increments once per 16-byte block. Calling this twice with the
    /// same IV restores the original data (CTR is an involution).
    pub fn apply(&self, iv: [u8; 16], data: &mut [u8]) {
        let mut counter_block = iv;
        let mut counter = u64::from_be_bytes(iv[8..16].try_into().expect("8 bytes"));
        for chunk in data.chunks_mut(16) {
            counter_block[8..16].copy_from_slice(&counter.to_be_bytes());
            let mut ks = counter_block;
            self.aes.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Derive a deterministic IV from a 64-bit nonce (e.g. a tuple id or a
    /// sector number), placing the nonce in the IV prefix and zeroing the
    /// counter half.
    pub fn iv_from_nonce(nonce: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[0..8].copy_from_slice(&nonce.to_be_bytes());
        iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_f5_1_ctr_aes128() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        let ctr = AesCtr::from_key(KeySize::Aes128, &key);
        ctr.apply(iv, &mut data);
        assert_eq!(
            data,
            hex(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            ))
        );
    }

    #[test]
    fn sp800_38a_f5_5_ctr_aes256() {
        // NIST SP 800-38A F.5.5 CTR-AES256.Encrypt, first block.
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        let ctr = AesCtr::from_key(KeySize::Aes256, &key);
        ctr.apply(iv, &mut data);
        assert_eq!(data, hex("601ec313775789a5b7a7f504bbf3d228"));
    }

    #[test]
    fn ctr_is_involution() {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[9u8; 16]);
        let iv = AesCtr::iv_from_nonce(12345);
        let original: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut data = original.clone();
        ctr.apply(iv, &mut data);
        assert_ne!(data, original);
        ctr.apply(iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[1u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr.apply(AesCtr::iv_from_nonce(1), &mut a);
        ctr.apply(AesCtr::iv_from_nonce(2), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_block_handled() {
        let ctr = AesCtr::from_key(KeySize::Aes256, &[3u8; 32]);
        let iv = AesCtr::iv_from_nonce(7);
        let mut data = vec![0xAA; 5];
        ctr.apply(iv, &mut data);
        ctr.apply(iv, &mut data);
        assert_eq!(data, vec![0xAA; 5]);
    }

    proptest::proptest! {
        #[test]
        fn involution_property(nonce in proptest::prelude::any::<u64>(),
                               data in proptest::collection::vec(0u8..=255, 0..200)) {
            let ctr = AesCtr::from_key(KeySize::Aes128, &[0x42; 16]);
            let iv = AesCtr::iv_from_nonce(nonce);
            let mut buf = data.clone();
            ctr.apply(iv, &mut buf);
            ctr.apply(iv, &mut buf);
            proptest::prop_assert_eq!(buf, data);
        }
    }
}
