//! AES-CTR stream mode (NIST SP 800-38A §6.5).
//!
//! CTR turns the block cipher into a stream cipher: encryption and
//! decryption are the same operation (XOR with the encrypted counter
//! stream), which is what the storage layers use for tuple payloads and
//! whole pages.
//!
//! The keystream generator dispatches **once per cipher construction**
//! over the [`CryptoBackend`] selector (never per block):
//!
//! * **Hardware** ([`crate::aesni`], x86_64 hosts with AES-NI): counter
//!   blocks run 8-wide through AESENC in XMM registers with an SSE2 XOR.
//! * **Software**: four counter blocks at a time through
//!   `Aes::encrypt_words_x4` in interleaved u32 lanes (round keys loaded
//!   once per round, four dependency chains in flight), scalar remainder
//!   loop, u128-lane XOR.
//! * **Reference**: the original per-byte path, retained as
//!   [`AesCtr::apply_ref`] for the crypto-equivalence gate and
//!   before/after throughput reporting.
//!
//! All three produce byte-identical streams (CI's crypto-equivalence and
//! HW-crypto gates), so the selector changes wall-clock time and nothing
//! else.

use crate::aes::{Aes, KeySize};
use crate::aesni::AesNi;
use crate::backend::{ActiveBackend, CryptoBackend};

/// AES in counter mode with a 16-byte initial counter block.
#[derive(Clone, Debug)]
pub struct AesCtr {
    aes: Aes,
    /// The expanded hardware schedule — present exactly when this
    /// instance's selector resolved to [`ActiveBackend::Hardware`] at
    /// construction.
    hw: Option<AesNi>,
    /// The selector this instance was built under (kept for
    /// introspection; the resolved implementation is what dispatches).
    backend: CryptoBackend,
    /// Resolved `backend == Reference`: route
    /// [`apply`](AesCtr::apply) / [`apply_blocks`](AesCtr::apply_blocks)
    /// through the retained byte-oriented reference path. **Benchmark
    /// instrumentation only**: the paths are byte-identical (the
    /// crypto-equivalence gate), so the flag changes wall-clock time and
    /// nothing else. The switch is per-instance — an earlier process-wide
    /// toggle would have let one engine's A/B run silently reroute every
    /// other engine in the process, which a concurrent sharded engine
    /// cannot tolerate.
    reference: bool,
}

impl AesCtr {
    /// Build from an already-expanded cipher under the default
    /// [`CryptoBackend::Auto`] selector (hardware when the host has it).
    pub fn new(aes: Aes) -> AesCtr {
        AesCtr::with_schedule(aes, CryptoBackend::Auto)
    }

    /// Convenience constructor from raw key bytes (`Auto` backend).
    pub fn from_key(size: KeySize, key: &[u8]) -> AesCtr {
        AesCtr::new(Aes::new(size, key))
    }

    fn with_schedule(aes: Aes, backend: CryptoBackend) -> AesCtr {
        let hw = match backend.resolve() {
            ActiveBackend::Hardware => AesNi::new(aes.key_size(), &aes.raw_key()),
            ActiveBackend::Software | ActiveBackend::Reference => None,
        };
        AesCtr {
            hw,
            reference: backend.resolve() == ActiveBackend::Reference,
            backend,
            aes,
        }
    }

    /// Rebuild this instance under `backend` — the per-instance selector
    /// every layer above threads down (engine config → vault / sector
    /// cipher / encrypted logger → here). Resolution happens now, once:
    /// `Auto`/`Hardware` expand the AES-NI schedule when the host
    /// supports it and fall back to software otherwise.
    pub fn with_backend(self, backend: CryptoBackend) -> AesCtr {
        AesCtr::with_schedule(self.aes, backend)
    }

    /// Back-compat shim: `true` is [`CryptoBackend::Reference`], `false`
    /// the default [`CryptoBackend::Auto`]. Prefer
    /// [`with_backend`](AesCtr::with_backend).
    pub fn with_reference_mode(self, on: bool) -> AesCtr {
        self.with_backend(if on {
            CryptoBackend::Reference
        } else {
            CryptoBackend::Auto
        })
    }

    /// Whether this instance takes the reference path.
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    /// The selector this instance was constructed under.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// The implementation actually running: what the selector resolved
    /// to at construction. Layers that cache schedules assert on this
    /// (mixed-backend streams would be a silent perf lie, never a
    /// correctness bug — the streams are byte-identical).
    pub fn active_backend(&self) -> ActiveBackend {
        if self.reference {
            ActiveBackend::Reference
        } else if self.hw.is_some() {
            ActiveBackend::Hardware
        } else {
            ActiveBackend::Software
        }
    }

    /// The underlying key size (for cost accounting).
    pub fn key_size(&self) -> KeySize {
        self.aes.key_size()
    }

    /// XOR `data` in place with the keystream generated from `iv`.
    ///
    /// The counter occupies the last 8 bytes of the IV block, big-endian,
    /// and increments once per 16-byte block. Calling this twice with the
    /// same IV restores the original data (CTR is an involution).
    pub fn apply(&self, iv: [u8; 16], data: &mut [u8]) {
        self.apply_at(iv, 0, data);
    }

    /// [`apply`](AesCtr::apply) starting `start_block` counter steps past
    /// `iv` — the entry for resuming a stream mid-way (e.g. XORing a
    /// cached keystream prefix and generating only the uncovered suffix).
    /// `apply_at(iv, n, data)` produces exactly the bytes `apply(iv, buf)`
    /// would have placed at offset `16 * n` of a longer buffer.
    pub fn apply_at(&self, iv: [u8; 16], start_block: u64, data: &mut [u8]) {
        if self.reference {
            // The reference path has no offset entry; pre-advancing the
            // counter half of the IV is the same stream by definition.
            return self.apply_ref(Self::iv_at(iv, start_block), data);
        }
        let whole = data.len() & !15;
        let (blocks, tail) = data.split_at_mut(whole);
        self.xor_keystream(iv, start_block, blocks);
        if !tail.is_empty() {
            let ks = self.keystream_block(iv, start_block.wrapping_add((whole / 16) as u64));
            for (d, k) in tail.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    /// `iv` with its counter half advanced by `start_block` steps.
    fn iv_at(iv: [u8; 16], start_block: u64) -> [u8; 16] {
        let mut out = iv;
        let counter =
            u64::from_be_bytes(iv[8..16].try_into().expect("8 bytes")).wrapping_add(start_block);
        out[8..16].copy_from_slice(&counter.to_be_bytes());
        out
    }

    /// [`apply`](AesCtr::apply) specialised to whole 16-byte blocks — the
    /// entry [`SectorCipher`](crate::sector::SectorCipher) uses for page
    /// work, where the tail check is dead weight on every sector.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn apply_blocks(&self, iv: [u8; 16], data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(16),
            "apply_blocks requires whole blocks"
        );
        if self.reference {
            return self.apply_ref(iv, data);
        }
        self.xor_keystream(iv, 0, data);
    }

    /// The keystream block at `block_index` counter steps past `iv`.
    fn keystream_block(&self, iv: [u8; 16], block_index: u64) -> [u8; 16] {
        let mut block = Self::iv_at(iv, block_index);
        if let Some(hw) = &self.hw {
            hw.encrypt_block(&mut block);
        } else {
            self.aes.encrypt_block(&mut block);
        }
        block
    }

    /// XOR whole blocks of `data` (`len % 16 == 0`) with the keystream
    /// starting `start_block` counter steps past `iv`. The IV's word
    /// lanes are set up once here — per block only the counter lanes
    /// change — then 64-byte chunks run four counter blocks through
    /// [`Aes::encrypt_words_x4`] at once (round keys loaded once per
    /// round, four chains in flight), with a scalar loop for the last
    /// 1–3 blocks. The XOR runs over u128 lanes either way.
    ///
    /// When the instance resolved to the hardware backend, the whole
    /// call is handed to [`AesNi::ctr_xor_blocks`] instead: 8 counter
    /// blocks at a time through AESENC, SSE2 XOR.
    fn xor_keystream(&self, iv: [u8; 16], start_block: u64, data: &mut [u8]) {
        if let Some(hw) = &self.hw {
            return hw.ctr_xor_blocks(iv, start_block, data);
        }
        let hi = u32::from_be_bytes(iv[0..4].try_into().expect("4 bytes"));
        let lo = u32::from_be_bytes(iv[4..8].try_into().expect("4 bytes"));
        let mut counter =
            u64::from_be_bytes(iv[8..16].try_into().expect("8 bytes")).wrapping_add(start_block);
        let mut chunks4 = data.chunks_exact_mut(64);
        for quad in chunks4.by_ref() {
            let mut states = [[0u32; 4]; 4];
            for state in states.iter_mut() {
                *state = [hi, lo, (counter >> 32) as u32, counter as u32];
                counter = counter.wrapping_add(1);
            }
            let ks4 = self.aes.encrypt_words_x4(states);
            for (chunk, ks) in quad.chunks_exact_mut(16).zip(ks4) {
                Self::xor_block(chunk, ks);
            }
        }
        for chunk in chunks4.into_remainder().chunks_exact_mut(16) {
            let ks = self
                .aes
                .encrypt_words([hi, lo, (counter >> 32) as u32, counter as u32]);
            Self::xor_block(chunk, ks);
            counter = counter.wrapping_add(1);
        }
    }

    /// XOR one keystream block (as column words) into a 16-byte chunk,
    /// as a single u128 lane.
    #[inline]
    fn xor_block(chunk: &mut [u8], ks: [u32; 4]) {
        let mut ks_bytes = [0u8; 16];
        for (c, w) in ks.into_iter().enumerate() {
            ks_bytes[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
        let lane = u128::from_ne_bytes(chunk[..16].try_into().expect("16 bytes"))
            ^ u128::from_ne_bytes(ks_bytes);
        chunk.copy_from_slice(&lane.to_ne_bytes());
    }

    /// The retained byte-oriented CTR path: reference AES rounds and
    /// byte-at-a-time XOR, exactly the pre-T-table implementation. The
    /// crypto-equivalence gate holds [`apply`](AesCtr::apply) to this
    /// output on unaligned lengths and random IVs; the `crypto_throughput`
    /// bench reports it as the "before" series.
    pub fn apply_ref(&self, iv: [u8; 16], data: &mut [u8]) {
        let mut counter_block = iv;
        let mut counter = u64::from_be_bytes(iv[8..16].try_into().expect("8 bytes"));
        for chunk in data.chunks_mut(16) {
            counter_block[8..16].copy_from_slice(&counter.to_be_bytes());
            let mut ks = counter_block;
            self.aes.encrypt_block_ref(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Derive a deterministic IV from a 64-bit nonce (e.g. a tuple id or a
    /// sector number), placing the nonce in the IV prefix and zeroing the
    /// counter half.
    pub fn iv_from_nonce(nonce: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[0..8].copy_from_slice(&nonce.to_be_bytes());
        iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_f5_1_ctr_aes128() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        let ctr = AesCtr::from_key(KeySize::Aes128, &key);
        ctr.apply(iv, &mut data);
        assert_eq!(
            data,
            hex(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            ))
        );
    }

    #[test]
    fn sp800_38a_f5_5_ctr_aes256() {
        // NIST SP 800-38A F.5.5 CTR-AES256.Encrypt, first block.
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        let ctr = AesCtr::from_key(KeySize::Aes256, &key);
        ctr.apply(iv, &mut data);
        assert_eq!(data, hex("601ec313775789a5b7a7f504bbf3d228"));
    }

    #[test]
    fn ctr_is_involution() {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[9u8; 16]);
        let iv = AesCtr::iv_from_nonce(12345);
        let original: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut data = original.clone();
        ctr.apply(iv, &mut data);
        assert_ne!(data, original);
        ctr.apply(iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[1u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr.apply(AesCtr::iv_from_nonce(1), &mut a);
        ctr.apply(AesCtr::iv_from_nonce(2), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_block_handled() {
        let ctr = AesCtr::from_key(KeySize::Aes256, &[3u8; 32]);
        let iv = AesCtr::iv_from_nonce(7);
        let mut data = vec![0xAA; 5];
        ctr.apply(iv, &mut data);
        ctr.apply(iv, &mut data);
        assert_eq!(data, vec![0xAA; 5]);
    }

    #[test]
    fn reference_mode_is_per_instance_and_byte_identical() {
        let fast = AesCtr::from_key(KeySize::Aes128, &[7u8; 16]);
        let slow = fast.clone().with_reference_mode(true);
        assert!(
            !fast.is_reference(),
            "the flag must not leak across instances"
        );
        assert!(slow.is_reference());
        let iv = AesCtr::iv_from_nonce(11);
        let mut a: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut b = a.clone();
        fast.apply(iv, &mut a);
        slow.apply(iv, &mut b);
        assert_eq!(a, b, "the two paths produce identical ciphertext");
    }

    #[test]
    fn apply_blocks_matches_apply_on_page_sized_buffers() {
        let ctr = AesCtr::from_key(KeySize::Aes256, &[0x17; 32]);
        let iv = AesCtr::iv_from_nonce(99);
        let mut a: Vec<u8> = (0..4096).map(|i| i as u8).collect();
        let mut b = a.clone();
        ctr.apply(iv, &mut a);
        ctr.apply_blocks(iv, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_at_matches_the_tail_of_a_longer_apply() {
        let ctr = AesCtr::from_key(KeySize::Aes256, &[0x31; 32]);
        for skip_blocks in [1usize, 3, 4, 7] {
            let iv = AesCtr::iv_from_nonce(0xDEAD_0000 + skip_blocks as u64);
            let mut whole: Vec<u8> = (0..(skip_blocks * 16 + 100)).map(|i| i as u8).collect();
            let mut tail = whole[skip_blocks * 16..].to_vec();
            ctr.apply(iv, &mut whole);
            ctr.apply_at(iv, skip_blocks as u64, &mut tail);
            assert_eq!(tail, whole[skip_blocks * 16..], "offset {skip_blocks}");
        }
    }

    #[test]
    fn apply_at_reference_mode_agrees_with_fast_path() {
        let fast = AesCtr::from_key(KeySize::Aes128, &[0x66; 16]);
        let slow = fast.clone().with_reference_mode(true);
        let iv = [0xFF; 16]; // counter at u64::MAX: the offset wraps it
        let mut a: Vec<u8> = (0..75).map(|i| i as u8).collect();
        let mut b = a.clone();
        fast.apply_at(iv, 5, &mut a);
        slow.apply_at(iv, 5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn apply_blocks_rejects_partial_blocks() {
        let ctr = AesCtr::from_key(KeySize::Aes128, &[1u8; 16]);
        let mut data = vec![0u8; 17];
        ctr.apply_blocks(AesCtr::iv_from_nonce(1), &mut data);
    }

    proptest::proptest! {
        #[test]
        fn involution_property(nonce in proptest::prelude::any::<u64>(),
                               data in proptest::collection::vec(0u8..=255, 0..200)) {
            let ctr = AesCtr::from_key(KeySize::Aes128, &[0x42; 16]);
            let iv = AesCtr::iv_from_nonce(nonce);
            let mut buf = data.clone();
            ctr.apply(iv, &mut buf);
            ctr.apply(iv, &mut buf);
            proptest::prop_assert_eq!(buf, data);
        }

        #[test]
        fn lane_xor_path_matches_reference(iv in proptest::collection::vec(0u8..=255, 16),
                                           data in proptest::collection::vec(0u8..=255, 0..260)) {
            // Random IVs exercise counter carries; lengths cover empty,
            // sub-block, block-aligned and straddling buffers.
            let iv: [u8; 16] = iv.try_into().unwrap();
            for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
                let ctr = AesCtr::from_key(size, &[0x5C; 32][..size.key_len()]);
                let mut fast = data.clone();
                let mut slow = data.clone();
                ctr.apply(iv, &mut fast);
                ctr.apply_ref(iv, &mut slow);
                proptest::prop_assert_eq!(&fast, &slow);
            }
        }
    }
}
