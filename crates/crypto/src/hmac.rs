//! HMAC-SHA-256 (RFC 2104 / FIPS-198-1).
//!
//! Used by the audit layer to make log segments tamper-evident, which is
//! what lets an auditor treat them as compliance evidence (invariant IX).

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Compute HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape comparison of two MACs (length + bytes).
pub fn verify(key: &[u8], data: &[u8], mac: &[u8]) -> bool {
    let computed = hmac_sha256(key, data);
    if mac.len() != computed.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in computed.iter().zip(mac.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_key_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_oversized_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = hmac_sha256(b"k", b"msg");
        assert!(verify(b"k", b"msg", &mac));
        assert!(!verify(b"k", b"msg!", &mac));
        assert!(!verify(b"k2", b"msg", &mac));
        assert!(!verify(b"k", b"msg", &mac[..31]));
    }
}
