//! Hardware AES (AES-NI) via `std::arch::x86_64` intrinsics.
//!
//! This is the crate's **only** module containing `unsafe` code, and every
//! unsafe block reduces to one precondition: the host CPU supports the
//! `aes` (and baseline `sse2`) instruction set. That precondition is
//! checked exactly once, at [`AesNi::new`], via
//! `is_x86_feature_detected!("aes")` — construction fails with `None` on
//! non-capable hosts, so a live [`AesNi`] value *is* the proof that the
//! `#[target_feature(enable = "aes")]` functions below may run. Callers
//! never touch `unsafe`; they go through the safe methods.
//!
//! Implementation notes:
//!
//! * **Key expansion** is AESKEYGENASSIST-based: the FIPS-197 schedule
//!   recurrence runs over little-endian schedule words, with `SubWord` /
//!   `RotWord(SubWord(·))` supplied by `_mm_aeskeygenassist_si128`
//!   (rcon folded in as a plain XOR afterwards, which keeps the
//!   immediate-operand constraint out of the loop and makes one routine
//!   serve all three key sizes).
//! * **Decryption** uses the FIPS-197 §5.3.5 *equivalent inverse cipher*:
//!   encryption round keys reversed, middle rounds passed through
//!   `_mm_aesimc_si128` (InvMixColumns), then straight-line
//!   `_mm_aesdec_si128` / `_mm_aesdeclast_si128` rounds — the same
//!   construction the software path's `dk` schedule mirrors in u32 words.
//! * **CTR keystream** runs [`WIDE`] counter blocks per iteration in XMM
//!   registers: each round key is loaded once and `WIDE` independent
//!   `_mm_aesenc_si128` chains stay in flight, hiding the ~4-cycle AESENC
//!   latency behind its 1/cycle throughput. The XOR into the data buffer
//!   is SSE2 `_mm_xor_si128` on unaligned 128-bit lanes.
//!
//! On non-x86_64 targets (or with the crate's `hw-aes` feature disabled —
//! the CI "software-only build guard" configuration) the real
//! implementation compiles out entirely and a stub whose
//! [`available`] is a constant `false` takes its place, so the dispatch in
//! [`AesCtr`](crate::ctr::AesCtr) constant-folds to the software path.

#[cfg(all(target_arch = "x86_64", feature = "hw-aes"))]
mod imp {
    use core::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_aesimc_si128, _mm_aeskeygenassist_si128, _mm_cvtsi128_si32, _mm_loadu_si128,
        _mm_set1_epi32, _mm_set_epi64x, _mm_srli_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    use crate::aes::KeySize;

    /// Maximum round keys across key sizes (AES-256: Nr = 14, so 15).
    const MAX_RK: usize = 15;

    /// Counter blocks generated per wide CTR iteration. Eight chains keep
    /// the AESENC pipeline saturated on every post-Westmere core without
    /// spilling XMM registers (16 available; 8 states + 1 round key).
    pub const WIDE: usize = 8;

    /// Is hardware AES usable on this host? (Runtime CPUID detection;
    /// `sse2` is baseline on x86_64.)
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("aes")
    }

    /// An expanded hardware key schedule: encryption round keys plus the
    /// equivalent-inverse-cipher decryption keys, held in XMM-ready form.
    #[derive(Clone, Copy)]
    pub struct AesNi {
        ek: [__m128i; MAX_RK],
        dk: [__m128i; MAX_RK],
        rounds: usize,
    }

    impl std::fmt::Debug for AesNi {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Never print key material (round keys invert to the key).
            f.debug_struct("AesNi")
                .field("rounds", &self.rounds)
                .finish()
        }
    }

    /// `SubWord(w)` and `RotWord(SubWord(w))` for one little-endian
    /// schedule word, both read from a single AESKEYGENASSIST issue
    /// (input broadcast to every lane; lane 0 carries `SubWord(X1)`,
    /// lane 1 `RotWord(SubWord(X1))` — rcon immediate kept at 0 and
    /// XORed by the caller instead).
    ///
    /// # Safety
    /// Requires the `aes` target feature (checked by [`AesNi::new`]).
    #[target_feature(enable = "aes")]
    unsafe fn sub_rot_word(w: u32) -> (u32, u32) {
        let v = _mm_set1_epi32(w as i32);
        let r = _mm_aeskeygenassist_si128::<0>(v);
        let sub = _mm_cvtsi128_si32(r) as u32;
        let rot_sub = _mm_cvtsi128_si32(_mm_srli_si128::<4>(r)) as u32;
        (sub, rot_sub)
    }

    /// FIPS-197 §5.2 key expansion over little-endian u32 schedule words,
    /// non-linear steps via [`sub_rot_word`], followed by the §5.3.5
    /// equivalent-inverse-cipher transform (AESIMC on the middle rounds).
    ///
    /// # Safety
    /// Requires the `aes` target feature (checked by [`AesNi::new`]).
    #[target_feature(enable = "aes")]
    unsafe fn expand(size: KeySize, key: &[u8]) -> AesNi {
        let nk = size.nk();
        let nr = size.rounds();
        let nwords = 4 * (nr + 1);
        let mut w = [0u32; 4 * MAX_RK];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        // rcon lives in the word's low byte here: schedule words are
        // little-endian, and FIPS XORs rcon into the word's *first* byte.
        let mut rcon: u32 = 1;
        for i in nk..nwords {
            let prev = w[i - 1];
            let t = if i % nk == 0 {
                let (_, rot_sub) = sub_rot_word(prev);
                let t = rot_sub ^ rcon;
                rcon = (rcon << 1) ^ if rcon & 0x80 != 0 { 0x11b } else { 0 };
                t
            } else if nk > 6 && i % nk == 4 {
                let (sub, _) = sub_rot_word(prev);
                sub
            } else {
                prev
            };
            w[i] = w[i - nk] ^ t;
        }
        let zero = _mm_set1_epi32(0);
        let mut ek = [zero; MAX_RK];
        let mut dk = [zero; MAX_RK];
        for (r, rk) in ek.iter_mut().enumerate().take(nr + 1) {
            // Little-endian schedule words in order are the round key's
            // byte layout, so a straight unaligned load materialises it.
            *rk = _mm_loadu_si128(w[4 * r..].as_ptr() as *const __m128i);
        }
        dk[0] = ek[nr];
        for r in 1..nr {
            dk[r] = _mm_aesimc_si128(ek[nr - r]);
        }
        dk[nr] = ek[0];
        AesNi { ek, dk, rounds: nr }
    }

    impl AesNi {
        /// Expand `key` for hardware use, or `None` when the host lacks
        /// AES-NI (the caller falls back to the software path). This is
        /// the module's one checked entry point: every unsafe call below
        /// is justified by the detection performed here.
        ///
        /// # Panics
        /// Panics if `key.len() != size.key_len()`.
        pub fn new(size: KeySize, key: &[u8]) -> Option<AesNi> {
            assert_eq!(key.len(), size.key_len(), "AES key length mismatch");
            if !available() {
                return None;
            }
            // SAFETY: `available()` just confirmed the `aes` feature.
            Some(unsafe { expand(size, key) })
        }

        /// Encrypt one 16-byte block in place (AESENC rounds).
        pub fn encrypt_block(&self, block: &mut [u8; 16]) {
            // SAFETY: `self` exists ⇒ `AesNi::new` detected AES-NI.
            unsafe { self.encrypt_block_hw(block) }
        }

        /// Decrypt one 16-byte block in place (equivalent inverse cipher:
        /// AESDEC rounds over the AESIMC-transformed schedule).
        pub fn decrypt_block(&self, block: &mut [u8; 16]) {
            // SAFETY: `self` exists ⇒ `AesNi::new` detected AES-NI.
            unsafe { self.decrypt_block_hw(block) }
        }

        /// XOR whole 16-byte blocks of `data` with the CTR keystream whose
        /// counter block is `iv` advanced by `start_block` steps — the
        /// same stream contract as the software
        /// [`AesCtr`](crate::ctr::AesCtr) path: the IV's last 8 bytes are
        /// a big-endian wrapping counter, incremented once per block.
        ///
        /// # Panics
        /// Panics if `data.len()` is not a multiple of 16.
        pub fn ctr_xor_blocks(&self, iv: [u8; 16], start_block: u64, data: &mut [u8]) {
            assert!(
                data.len().is_multiple_of(16),
                "ctr_xor_blocks requires whole blocks"
            );
            // SAFETY: `self` exists ⇒ `AesNi::new` detected AES-NI.
            unsafe { self.ctr_xor_hw(iv, start_block, data) }
        }

        /// # Safety
        /// Requires the `aes` target feature (checked by [`AesNi::new`]).
        #[target_feature(enable = "aes")]
        unsafe fn encrypt_block_hw(&self, block: &mut [u8; 16]) {
            let p = block.as_mut_ptr() as *mut __m128i;
            let mut s = _mm_xor_si128(_mm_loadu_si128(p as *const __m128i), self.ek[0]);
            for rk in &self.ek[1..self.rounds] {
                s = _mm_aesenc_si128(s, *rk);
            }
            s = _mm_aesenclast_si128(s, self.ek[self.rounds]);
            _mm_storeu_si128(p, s);
        }

        /// # Safety
        /// Requires the `aes` target feature (checked by [`AesNi::new`]).
        #[target_feature(enable = "aes")]
        unsafe fn decrypt_block_hw(&self, block: &mut [u8; 16]) {
            let p = block.as_mut_ptr() as *mut __m128i;
            let mut s = _mm_xor_si128(_mm_loadu_si128(p as *const __m128i), self.dk[0]);
            for rk in &self.dk[1..self.rounds] {
                s = _mm_aesdec_si128(s, *rk);
            }
            s = _mm_aesdeclast_si128(s, self.dk[self.rounds]);
            _mm_storeu_si128(p, s);
        }

        /// The counter block `counter` steps into the stream, as an XMM
        /// value: IV prefix bytes in the low lane, big-endian counter in
        /// the high lane (a byte-swapped little-endian store).
        ///
        /// # Safety
        /// Requires the `aes` target feature (checked by [`AesNi::new`]).
        #[target_feature(enable = "aes")]
        unsafe fn counter_block(prefix_le: u64, counter: u64) -> __m128i {
            _mm_set_epi64x(counter.swap_bytes() as i64, prefix_le as i64)
        }

        /// # Safety
        /// Requires the `aes` target feature (checked by [`AesNi::new`]).
        #[target_feature(enable = "aes")]
        unsafe fn ctr_xor_hw(&self, iv: [u8; 16], start_block: u64, data: &mut [u8]) {
            let prefix_le = u64::from_le_bytes(iv[0..8].try_into().expect("8 bytes"));
            let mut counter = u64::from_be_bytes(iv[8..16].try_into().expect("8 bytes"))
                .wrapping_add(start_block);
            let nr = self.rounds;
            let rk0 = self.ek[0];
            let rk_last = self.ek[nr];
            let mut wide = data.chunks_exact_mut(16 * WIDE);
            for chunk in wide.by_ref() {
                let mut s = [rk0; WIDE];
                for (j, state) in s.iter_mut().enumerate() {
                    *state = _mm_xor_si128(
                        Self::counter_block(prefix_le, counter.wrapping_add(j as u64)),
                        rk0,
                    );
                }
                counter = counter.wrapping_add(WIDE as u64);
                for rk in &self.ek[1..nr] {
                    for state in s.iter_mut() {
                        *state = _mm_aesenc_si128(*state, *rk);
                    }
                }
                let base = chunk.as_mut_ptr() as *mut __m128i;
                for (j, state) in s.iter().enumerate() {
                    let ks = _mm_aesenclast_si128(*state, rk_last);
                    let p = base.add(j);
                    _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p as *const __m128i), ks));
                }
            }
            for chunk in wide.into_remainder().chunks_exact_mut(16) {
                let mut s = _mm_xor_si128(Self::counter_block(prefix_le, counter), rk0);
                counter = counter.wrapping_add(1);
                for rk in &self.ek[1..nr] {
                    s = _mm_aesenc_si128(s, *rk);
                }
                let ks = _mm_aesenclast_si128(s, rk_last);
                let p = chunk.as_mut_ptr() as *mut __m128i;
                _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p as *const __m128i), ks));
            }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", feature = "hw-aes")))]
mod imp {
    use crate::aes::KeySize;

    /// Counter blocks per wide CTR iteration (mirrors the real module's
    /// constant for documentation and tests).
    pub const WIDE: usize = 8;

    /// Hardware AES is never available on this build: either the target
    /// is not x86_64 or the `hw-aes` feature is disabled (the CI
    /// software-only guard configuration). Constant `false` lets the
    /// dispatch in [`AesCtr`](crate::ctr::AesCtr) compile out.
    pub fn available() -> bool {
        false
    }

    /// Uninstantiable stand-in: [`AesNi::new`] always returns `None`, so
    /// the methods below are unreachable by construction.
    #[derive(Clone, Copy, Debug)]
    pub struct AesNi {
        never: core::convert::Infallible,
    }

    impl AesNi {
        /// Always `None` on software-only builds.
        ///
        /// # Panics
        /// Panics if `key.len() != size.key_len()` (same contract as the
        /// real implementation, so tests exercise it uniformly).
        pub fn new(size: KeySize, key: &[u8]) -> Option<AesNi> {
            assert_eq!(key.len(), size.key_len(), "AES key length mismatch");
            None
        }

        /// Unreachable: no value of this type exists.
        pub fn encrypt_block(&self, _block: &mut [u8; 16]) {
            match self.never {}
        }

        /// Unreachable: no value of this type exists.
        pub fn decrypt_block(&self, _block: &mut [u8; 16]) {
            match self.never {}
        }

        /// Unreachable: no value of this type exists.
        pub fn ctr_xor_blocks(&self, _iv: [u8; 16], _start_block: u64, _data: &mut [u8]) {
            match self.never {}
        }
    }
}

pub use imp::{available, AesNi, WIDE};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes, KeySize};

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// All further tests run only where hardware AES exists; this one
    /// documents that detection itself never panics anywhere.
    #[test]
    fn detection_is_callable() {
        let _ = available();
    }

    #[test]
    fn fips197_appendix_c_vectors() {
        for (key, pt, ct) in [
            (
                "000102030405060708090a0b0c0d0e0f",
                "00112233445566778899aabbccddeeff",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                "00112233445566778899aabbccddeeff",
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "00112233445566778899aabbccddeeff",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ] {
            let key = hex(key);
            let size = match key.len() {
                16 => KeySize::Aes128,
                24 => KeySize::Aes192,
                _ => KeySize::Aes256,
            };
            let Some(hw) = AesNi::new(size, &key) else {
                return; // no AES-NI on this host: nothing to pin
            };
            let mut block: [u8; 16] = hex(pt).try_into().unwrap();
            hw.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex(ct), "{size:?} encrypt");
            hw.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex(pt), "{size:?} decrypt round-trip");
        }
    }

    #[test]
    fn matches_software_schedule_on_random_keys() {
        // Derive a pile of pseudo-random keys/blocks from a counter hash
        // and pin hardware ≡ software at the block level for every size.
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            for seed in 0u64..16 {
                let mut material = Vec::new();
                let mut i = 0u64;
                while material.len() < size.key_len() + 16 {
                    let mut h = crate::sha256::Sha256::new();
                    h.update(&seed.to_be_bytes());
                    h.update(&i.to_be_bytes());
                    material.extend_from_slice(&h.finalize());
                    i += 1;
                }
                let key = &material[..size.key_len()];
                let block: [u8; 16] = material[size.key_len()..size.key_len() + 16]
                    .try_into()
                    .unwrap();
                let Some(hw) = AesNi::new(size, key) else {
                    return;
                };
                let sw = Aes::new(size, key);
                let mut fast = block;
                let mut slow = block;
                hw.encrypt_block(&mut fast);
                sw.encrypt_block(&mut slow);
                assert_eq!(fast, slow, "{size:?} seed {seed} encrypt diverged");
                hw.decrypt_block(&mut fast);
                sw.decrypt_block(&mut slow);
                assert_eq!(fast, slow, "{size:?} seed {seed} decrypt diverged");
                assert_eq!(fast, block, "{size:?} seed {seed} round-trip broken");
            }
        }
    }

    #[test]
    fn ctr_xor_crosses_wide_scalar_and_wrap_boundaries() {
        let Some(hw) = AesNi::new(KeySize::Aes128, &[0x42; 16]) else {
            return;
        };
        let sw = crate::ctr::AesCtr::from_key(KeySize::Aes128, &[0x42; 16])
            .with_backend(crate::backend::CryptoBackend::Software);
        // Counter at u64::MAX exercises the wrapping increment inside a
        // wide batch; lengths cross the 8-block wide loop and remainder.
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&7u64.to_be_bytes());
        iv[8..].copy_from_slice(&u64::MAX.to_be_bytes());
        for blocks in [0usize, 1, 7, 8, 9, 24, 31] {
            let data: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
            let mut a = data.clone();
            let mut b = data;
            hw.ctr_xor_blocks(iv, 0, &mut a);
            sw.apply_blocks(iv, &mut b);
            assert_eq!(a, b, "{blocks} blocks");
        }
    }
}
