//! LUKS-flavoured key derivation shim.
//!
//! LUKS1 derives the disk master key from a passphrase with PBKDF2; we
//! implement PBKDF2-HMAC-SHA-256 (RFC 2898 / RFC 6070-style) with a small
//! default iteration count since the derived keys only feed the simulator.

use crate::hmac::hmac_sha256;

/// PBKDF2-HMAC-SHA-256, producing `dk_len` bytes.
pub fn pbkdf2_sha256(password: &[u8], salt: &[u8], iterations: u32, dk_len: usize) -> Vec<u8> {
    assert!(iterations > 0, "iterations must be positive");
    let mut out = Vec::with_capacity(dk_len);
    let mut block_index: u32 = 1;
    while out.len() < dk_len {
        let mut msg = salt.to_vec();
        msg.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha256(password, &msg);
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha256(password, &u);
            for (ti, ui) in t.iter_mut().zip(u.iter()) {
                *ti ^= ui;
            }
        }
        out.extend_from_slice(&t);
        block_index += 1;
    }
    out.truncate(dk_len);
    out
}

/// Derive an AES key of `key_len` bytes from a passphrase the way our
/// simulated LUKS header does: PBKDF2 with a fixed label-salt.
pub fn luks_derive_key(passphrase: &[u8], key_len: usize) -> Vec<u8> {
    pbkdf2_sha256(passphrase, b"datacase-luks-v1", 1000, key_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn pbkdf2_known_vector_1_iter() {
        // RFC 6070 adapted to SHA-256 (well-known community vector):
        // PBKDF2-HMAC-SHA256("password","salt",1,32)
        let dk = pbkdf2_sha256(b"password", b"salt", 1, 32);
        assert_eq!(
            to_hex(&dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"
        );
    }

    #[test]
    fn pbkdf2_known_vector_2_iters() {
        let dk = pbkdf2_sha256(b"password", b"salt", 2, 32);
        assert_eq!(
            to_hex(&dk),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43"
        );
    }

    #[test]
    fn pbkdf2_known_vector_4096_iters() {
        let dk = pbkdf2_sha256(b"password", b"salt", 4096, 32);
        assert_eq!(
            to_hex(&dk),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"
        );
    }

    #[test]
    fn pbkdf2_longer_output() {
        let dk = pbkdf2_sha256(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            40,
        );
        assert_eq!(
            to_hex(&dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1c635518c7dac47e9"
        );
    }

    #[test]
    fn luks_keys_differ_by_passphrase_and_length() {
        let k1 = luks_derive_key(b"a", 16);
        let k2 = luks_derive_key(b"b", 16);
        let k3 = luks_derive_key(b"a", 32);
        assert_ne!(k1, k2);
        assert_eq!(k1, k3[..16].to_vec().as_slice());
        assert_eq!(k3.len(), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_iterations_panics() {
        let _ = pbkdf2_sha256(b"p", b"s", 0, 32);
    }
}
