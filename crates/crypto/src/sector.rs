//! Sector-level (disk-layer) encryption shim, emulating LUKS.
//!
//! The P_GBench profile encrypts at the disk layer: every page write
//! encrypts the whole page, every page read decrypts it, with a key derived
//! from a passphrase via [`crate::kdf::luks_derive_key`]. The IV is bound to
//! the sector number (ESSIV-flavoured: we hash the sector with the key).

use crate::aes::KeySize;
use crate::ctr::AesCtr;
use crate::sha256::Sha256;

/// Encrypts/decrypts fixed-size sectors with a sector-bound IV.
#[derive(Clone, Debug)]
pub struct SectorCipher {
    ctr: AesCtr,
    iv_salt: [u8; 32],
}

impl SectorCipher {
    /// Build from a passphrase (LUKS-style derivation) and key size.
    pub fn from_passphrase(passphrase: &[u8], size: KeySize) -> SectorCipher {
        let key = crate::kdf::luks_derive_key(passphrase, size.key_len());
        let mut h = Sha256::new();
        h.update(&key);
        h.update(b"essiv");
        SectorCipher {
            ctr: AesCtr::from_key(size, &key),
            iv_salt: h.finalize(),
        }
    }

    /// The underlying key size (for cost accounting).
    pub fn key_size(&self) -> KeySize {
        self.ctr.key_size()
    }

    /// Route this cipher through the retained reference AES path (see
    /// [`AesCtr::with_reference_mode`]) — per-instance, for A/B bench
    /// engines that must not affect other engines in the process.
    pub fn with_reference_mode(mut self, on: bool) -> SectorCipher {
        self.ctr = self.ctr.with_reference_mode(on);
        self
    }

    fn sector_iv(&self, sector: u64) -> [u8; 16] {
        let mut h = Sha256::new();
        h.update(&self.iv_salt);
        h.update(&sector.to_be_bytes());
        let d = h.finalize();
        // Keep the low 8 bytes as counter space (zeroed).
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&d[..8]);
        iv
    }

    /// Encrypt (or decrypt — CTR is an involution) sector `sector` in place.
    ///
    /// Sector I/O is page-granular, so the common case takes the
    /// whole-block [`AesCtr::apply_blocks`] fast path; ragged buffers
    /// (tests, partial sectors) fall back to the general entry.
    pub fn apply(&self, sector: u64, data: &mut [u8]) {
        let iv = self.sector_iv(sector);
        if data.len().is_multiple_of(16) {
            self.ctr.apply_blocks(iv, data);
        } else {
            self.ctr.apply(iv, data);
        }
    }

    /// The retained reference path ([`AesCtr::apply_ref`]) under the same
    /// sector-IV binding — the crypto-equivalence gate's oracle and the
    /// "before" series of the sector-substrate throughput bench.
    pub fn apply_ref(&self, sector: u64, data: &mut [u8]) {
        self.ctr.apply_ref(self.sector_iv(sector), data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_roundtrip() {
        let sc = SectorCipher::from_passphrase(b"disk-pass", KeySize::Aes256);
        let original = vec![0x5Au8; 512];
        let mut data = original.clone();
        sc.apply(42, &mut data);
        assert_ne!(data, original);
        sc.apply(42, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_sectors_encrypt_differently() {
        let sc = SectorCipher::from_passphrase(b"disk-pass", KeySize::Aes256);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        sc.apply(1, &mut a);
        sc.apply(2, &mut b);
        assert_ne!(a, b, "same plaintext in different sectors must differ");
    }

    #[test]
    fn different_passphrases_differ() {
        let s1 = SectorCipher::from_passphrase(b"p1", KeySize::Aes128);
        let s2 = SectorCipher::from_passphrase(b"p2", KeySize::Aes128);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        s1.apply(5, &mut a);
        s2.apply(5, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn key_size_reported() {
        let sc = SectorCipher::from_passphrase(b"p", KeySize::Aes128);
        assert_eq!(sc.key_size(), KeySize::Aes128);
    }
}
