//! Sector-level (disk-layer) encryption shim, emulating LUKS.
//!
//! The P_GBench profile encrypts at the disk layer: every page write
//! encrypts the whole page, every page read decrypts it, with a key derived
//! from a passphrase via [`crate::kdf::luks_derive_key`]. The IV is bound to
//! the sector number (ESSIV-flavoured: we hash the sector with the key).

use std::sync::Arc;

use crate::aes::KeySize;
use crate::backend::{ActiveBackend, CryptoBackend};
use crate::ctr::AesCtr;
use crate::sha256::Sha256;

/// Encrypts/decrypts fixed-size sectors with a sector-bound IV.
///
/// The expanded cipher is held behind an [`Arc`] so deferred sector work
/// (pipeline offload) can carry a shared handle into worker threads, and
/// the ESSIV hash is kept as a **midstate**: a [`Sha256`] already fed the
/// key-bound salt at construction, cloned per sector instead of re-hashing
/// the salt for every page.
#[derive(Clone, Debug)]
pub struct SectorCipher {
    ctr: Arc<AesCtr>,
    iv_midstate: Sha256,
}

impl SectorCipher {
    /// Build from a passphrase (LUKS-style derivation) and key size.
    pub fn from_passphrase(passphrase: &[u8], size: KeySize) -> SectorCipher {
        let key = crate::kdf::luks_derive_key(passphrase, size.key_len());
        let mut h = Sha256::new();
        h.update(&key);
        h.update(b"essiv");
        let iv_salt = h.finalize();
        let mut midstate = Sha256::new();
        midstate.update(&iv_salt);
        SectorCipher {
            ctr: Arc::new(AesCtr::from_key(size, &key)),
            iv_midstate: midstate,
        }
    }

    /// The underlying key size (for cost accounting).
    pub fn key_size(&self) -> KeySize {
        self.ctr.key_size()
    }

    /// A shared handle to the expanded CTR cipher — what deferred sector
    /// jobs carry to pipeline workers (`Send + Sync`, schedule expanded
    /// once at construction).
    pub fn shared_ctr(&self) -> Arc<AesCtr> {
        Arc::clone(&self.ctr)
    }

    /// Rebuild this cipher under `backend` (see [`AesCtr::with_backend`])
    /// — per-instance, for A/B bench engines that must not affect other
    /// engines in the process. Key material and sector-IV binding are
    /// unchanged; only the round implementation differs.
    pub fn with_backend(self, backend: CryptoBackend) -> SectorCipher {
        SectorCipher {
            ctr: Arc::new((*self.ctr).clone().with_backend(backend)),
            iv_midstate: self.iv_midstate,
        }
    }

    /// Back-compat shim: `true` is [`CryptoBackend::Reference`], `false`
    /// the default [`CryptoBackend::Auto`]. Prefer
    /// [`with_backend`](SectorCipher::with_backend).
    pub fn with_reference_mode(self, on: bool) -> SectorCipher {
        self.with_backend(if on {
            CryptoBackend::Reference
        } else {
            CryptoBackend::Auto
        })
    }

    /// Whether this cipher runs the retained reference path. Layers that
    /// cache derived keystream (the disk's sector-keystream cache) bypass
    /// their caches in reference mode so the measured "before" series
    /// keeps its honest byte-oriented cost.
    pub fn reference_mode(&self) -> bool {
        self.ctr.is_reference()
    }

    /// The implementation the underlying cipher resolved to (see
    /// [`AesCtr::active_backend`]).
    pub fn active_backend(&self) -> ActiveBackend {
        self.ctr.active_backend()
    }

    /// The ESSIV-flavoured IV binding `sector` to this cipher's key: the
    /// key-bound hash midstate (salt absorbed once at construction) is
    /// cloned and fed only the sector number. Public so deferred sector
    /// jobs can be built outside the cipher.
    pub fn sector_iv(&self, sector: u64) -> [u8; 16] {
        let mut h = self.iv_midstate.clone();
        h.update(&sector.to_be_bytes());
        let d = h.finalize();
        // Keep the low 8 bytes as counter space (zeroed).
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&d[..8]);
        iv
    }

    /// Encrypt (or decrypt — CTR is an involution) sector `sector` in place.
    ///
    /// Sector I/O is page-granular, so the common case takes the
    /// whole-block [`AesCtr::apply_blocks`] fast path; ragged buffers
    /// (tests, partial sectors) fall back to the general entry.
    pub fn apply(&self, sector: u64, data: &mut [u8]) {
        let iv = self.sector_iv(sector);
        if data.len().is_multiple_of(16) {
            self.ctr.apply_blocks(iv, data);
        } else {
            self.ctr.apply(iv, data);
        }
    }

    /// The retained reference path ([`AesCtr::apply_ref`]) under the same
    /// sector-IV binding — the crypto-equivalence gate's oracle and the
    /// "before" series of the sector-substrate throughput bench.
    pub fn apply_ref(&self, sector: u64, data: &mut [u8]) {
        self.ctr.apply_ref(self.sector_iv(sector), data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_roundtrip() {
        let sc = SectorCipher::from_passphrase(b"disk-pass", KeySize::Aes256);
        let original = vec![0x5Au8; 512];
        let mut data = original.clone();
        sc.apply(42, &mut data);
        assert_ne!(data, original);
        sc.apply(42, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_sectors_encrypt_differently() {
        let sc = SectorCipher::from_passphrase(b"disk-pass", KeySize::Aes256);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        sc.apply(1, &mut a);
        sc.apply(2, &mut b);
        assert_ne!(a, b, "same plaintext in different sectors must differ");
    }

    #[test]
    fn different_passphrases_differ() {
        let s1 = SectorCipher::from_passphrase(b"p1", KeySize::Aes128);
        let s2 = SectorCipher::from_passphrase(b"p2", KeySize::Aes128);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        s1.apply(5, &mut a);
        s2.apply(5, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn key_size_reported() {
        let sc = SectorCipher::from_passphrase(b"p", KeySize::Aes128);
        assert_eq!(sc.key_size(), KeySize::Aes128);
    }

    #[test]
    fn midstate_iv_matches_from_scratch_hash() {
        // The cloned-midstate shortcut must produce exactly the IV the
        // pre-midstate code computed: SHA-256(SHA-256(key ‖ "essiv") ‖
        // sector), truncated to the 8-byte nonce half.
        let sc = SectorCipher::from_passphrase(b"disk-pass", KeySize::Aes256);
        let key = crate::kdf::luks_derive_key(b"disk-pass", KeySize::Aes256.key_len());
        let mut salt_h = Sha256::new();
        salt_h.update(&key);
        salt_h.update(b"essiv");
        let salt = salt_h.finalize();
        for sector in [0u64, 1, 42, u64::MAX] {
            let mut h = Sha256::new();
            h.update(&salt);
            h.update(&sector.to_be_bytes());
            let d = h.finalize();
            let mut expected = [0u8; 16];
            expected[..8].copy_from_slice(&d[..8]);
            assert_eq!(sc.sector_iv(sector), expected, "sector {sector}");
        }
    }

    #[test]
    fn shared_ctr_decrypts_what_apply_encrypted() {
        let sc = SectorCipher::from_passphrase(b"disk-pass", KeySize::Aes256);
        let original = vec![0x3Cu8; 4096];
        let mut data = original.clone();
        sc.apply(9, &mut data);
        // A deferred job carries (shared_ctr, sector_iv) and must land on
        // the same stream.
        sc.shared_ctr().apply_blocks(sc.sector_iv(9), &mut data);
        assert_eq!(data, original);
    }
}
