#![warn(missing_docs)]
//! # datacase-crypto
//!
//! From-scratch cryptographic primitives for the Data-CASE reproduction.
//!
//! The paper's compliance profiles encrypt data at rest: P_Base uses AES-256,
//! P_SYS uses AES-128, and P_GBench uses LUKS (SHA-256-keyed) full-disk
//! encryption. No cryptography crates are available offline, so this crate
//! implements the standards directly and validates them against the official
//! test vectors (FIPS-197 Appendix C, NIST SP 800-38A, FIPS-180-4, RFC 4231).
//!
//! **Scope note:** these implementations are table-driven and *not*
//! constant-time; they exist to reproduce the computational and storage
//! behaviour of encrypted data paths inside a simulator, not to protect real
//! secrets.
//!
//! The hot path is throughput-oriented and **backend-dispatched**: the
//! [`backend::CryptoBackend`] selector picks between hardware AES-NI
//! ([`aesni`], runtime-detected on x86_64), the software fused-T-table
//! path with x4-batched keystream and u128-lane XOR ([`aes`]/[`ctr`]),
//! and the retained byte-oriented reference rounds (`*_ref` entry
//! points) that a property-based equivalence gate pins both fast paths
//! against — see the workspace `tests/prop_crypto.rs`. The per-unit
//! [`vault`] caches expanded key schedules (hardware round keys
//! included) per live unit.
//!
//! Modules:
//! * [`aes`] — AES-128/192/256 block cipher (encrypt + decrypt).
//! * [`aesni`] — hardware AES via `std::arch` intrinsics; the crate's
//!   only `unsafe`.
//! * [`backend`] — the `Auto`/`Software`/`Hardware`/`Reference` selector.
//! * [`ctr`] — AES-CTR stream mode used for tuple- and page-level encryption.
//! * [`sha256`] — SHA-256 digest.
//! * [`hmac`] — HMAC-SHA-256.
//! * [`kdf`] — a LUKS-flavoured iterated-hash key-derivation shim.
//! * [`vault`] — per-data-unit key vault enabling *crypto-erasure* (destroy
//!   the key ⇒ ciphertext is permanently unreadable), the alternative
//!   grounding of permanent deletion discussed in the paper's related work.
//! * [`sector`] — sector/page encryption helper emulating LUKS-style
//!   disk-layer encryption for the P_GBench profile.

pub mod aes;
pub mod aesni;
pub mod backend;
pub mod ctr;
pub mod hmac;
pub mod kdf;
pub mod sector;
pub mod sha256;
pub mod vault;

pub use aes::{Aes, KeySize};
pub use backend::{ActiveBackend, CryptoBackend};
pub use ctr::AesCtr;
pub use sha256::Sha256;

/// Constant-time equality for secret material (tokens, MACs).
///
/// Inequality of *lengths* is revealed — lengths are public for every
/// caller here — but for equal-length inputs the comparison touches all
/// bytes and accumulates differences with XOR, so timing does not leak
/// *where* two values diverge. [`std::hint::black_box`] keeps the
/// accumulator from being short-circuited by the optimiser.
///
/// The gateway's Hello handshake uses this for tenant-token checks; a
/// naive early-exit `==` would let a byte-at-a-time guessing attack
/// walk the token.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    std::hint::black_box(diff) == 0
}

#[cfg(test)]
mod ct_tests {
    use super::ct_eq;

    #[test]
    fn ct_eq_matches_plain_equality() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"secret-token", b"secret-token"));
        assert!(!ct_eq(b"secret-token", b"secret-tokeN"));
        assert!(!ct_eq(b"secret-token", b"Xecret-token"));
        assert!(!ct_eq(b"short", b"longer-value"));
        assert!(!ct_eq(b"a", b""));
    }

    #[test]
    fn ct_eq_catches_single_bit_differences_at_every_position() {
        let a = [0x5Au8; 32];
        for pos in 0..a.len() {
            for bit in 0..8 {
                let mut b = a;
                b[pos] ^= 1 << bit;
                assert!(!ct_eq(&a, &b), "flip at byte {pos} bit {bit}");
            }
        }
    }
}
