#![warn(missing_docs)]
//! # datacase-crypto
//!
//! From-scratch cryptographic primitives for the Data-CASE reproduction.
//!
//! The paper's compliance profiles encrypt data at rest: P_Base uses AES-256,
//! P_SYS uses AES-128, and P_GBench uses LUKS (SHA-256-keyed) full-disk
//! encryption. No cryptography crates are available offline, so this crate
//! implements the standards directly and validates them against the official
//! test vectors (FIPS-197 Appendix C, NIST SP 800-38A, FIPS-180-4, RFC 4231).
//!
//! **Scope note:** these implementations are table-driven and *not*
//! constant-time; they exist to reproduce the computational and storage
//! behaviour of encrypted data paths inside a simulator, not to protect real
//! secrets.
//!
//! The hot path is throughput-oriented: AES rounds run over fused u32
//! T-tables, CTR XORs whole blocks in u128 lanes, and the per-unit
//! [`vault`] caches expanded key schedules. The original byte-oriented
//! rounds are retained (`*_ref` entry points) as the reference
//! implementation a property-based equivalence gate pins the fast path
//! against — see the workspace `tests/prop_crypto.rs`.
//!
//! Modules:
//! * [`aes`] — AES-128/192/256 block cipher (encrypt + decrypt).
//! * [`ctr`] — AES-CTR stream mode used for tuple- and page-level encryption.
//! * [`sha256`] — SHA-256 digest.
//! * [`hmac`] — HMAC-SHA-256.
//! * [`kdf`] — a LUKS-flavoured iterated-hash key-derivation shim.
//! * [`vault`] — per-data-unit key vault enabling *crypto-erasure* (destroy
//!   the key ⇒ ciphertext is permanently unreadable), the alternative
//!   grounding of permanent deletion discussed in the paper's related work.
//! * [`sector`] — sector/page encryption helper emulating LUKS-style
//!   disk-layer encryption for the P_GBench profile.

pub mod aes;
pub mod ctr;
pub mod hmac;
pub mod kdf;
pub mod sector;
pub mod sha256;
pub mod vault;

pub use aes::{Aes, KeySize};
pub use ctr::AesCtr;
pub use sha256::Sha256;
