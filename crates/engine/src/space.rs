//! Space accounting: Table 2's "metadata explosion" measurement.
//!
//! The paper defines the **space factor** as "the ratio of the total size
//! of the database to the total size of personal data in it" (§4.2,
//! Metrics). We decompose metadata into the same buckets the profiles
//! differ on: policy metadata (enforcer), logs, indexes, WAL, and heap
//! page overhead (slack + headers + dead tuples).

use datacase_sim::report::{bytes_human, Table};

use crate::frontend::Frontend;

/// A space-usage breakdown of one engine instance.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpaceReport {
    /// Live personal-data payload bytes (current versions).
    pub personal_bytes: u64,
    /// Policy metadata held by the enforcer (rows, guards, indexes).
    pub policy_bytes: u64,
    /// Audit log bytes.
    pub log_bytes: u64,
    /// Primary-index bytes.
    pub index_bytes: u64,
    /// Retained recovery-log (WAL) bytes.
    pub wal_bytes: u64,
    /// Storage overhead: on-disk table/run size minus live payload.
    pub heap_overhead_bytes: u64,
}

impl SpaceReport {
    /// Measure an engine (any storage backend: the buckets come from the
    /// substrate-independent [`BackendStats`] vocabulary).
    ///
    /// [`BackendStats`]: datacase_storage::backend::BackendStats
    pub fn measure(frontend: &Frontend) -> SpaceReport {
        let db = frontend.db();
        let personal = db.state().personal_bytes();
        let storage = db.backend_stats();
        SpaceReport {
            personal_bytes: personal,
            policy_bytes: db.enforcer().metadata_bytes(),
            log_bytes: db.logger().bytes(),
            index_bytes: storage.index_bytes,
            wal_bytes: storage.log_bytes,
            heap_overhead_bytes: storage.disk_bytes.saturating_sub(personal),
        }
    }

    /// Total metadata bytes.
    pub fn metadata_bytes(&self) -> u64 {
        self.policy_bytes
            + self.log_bytes
            + self.index_bytes
            + self.wal_bytes
            + self.heap_overhead_bytes
    }

    /// Total database size.
    pub fn total_bytes(&self) -> u64 {
        self.personal_bytes + self.metadata_bytes()
    }

    /// The paper's space factor (total / personal). Infinity when no
    /// personal data is stored.
    pub fn space_factor(&self) -> f64 {
        if self.personal_bytes == 0 {
            f64::INFINITY
        } else {
            self.total_bytes() as f64 / self.personal_bytes as f64
        }
    }

    /// Render the Table 2 row for this engine under `label`.
    pub fn row(&self, label: &str) -> Vec<String> {
        vec![
            label.to_string(),
            bytes_human(self.personal_bytes),
            bytes_human(self.metadata_bytes()),
            bytes_human(self.total_bytes()),
            format!("{:.1}x", self.space_factor()),
        ]
    }

    /// Table 2's headers.
    pub fn table(title: &str) -> Table {
        Table::new(
            title,
            &[
                "System",
                "Personal data size",
                "Metadata size",
                "Total DB size",
                "Space factor",
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Actor;
    use crate::frontend::Session;
    use crate::profiles::{EngineConfig, ProfileKind};
    use datacase_workloads::gdprbench::GdprBench;

    fn loaded(profile: ProfileKind, n: usize) -> Frontend {
        let mut fe = Frontend::new(EngineConfig::for_profile(profile));
        let mut bench = GdprBench::new(11, 100);
        fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(n));
        fe
    }

    #[test]
    fn factors_are_ordered_like_table_2() {
        let base = SpaceReport::measure(&loaded(ProfileKind::PBase, 300));
        let gbench = SpaceReport::measure(&loaded(ProfileKind::PGBench, 300));
        let sys = SpaceReport::measure(&loaded(ProfileKind::PSys, 300));
        assert!(
            base.space_factor() < gbench.space_factor(),
            "base {} vs gbench {}",
            base.space_factor(),
            gbench.space_factor()
        );
        assert!(
            gbench.space_factor() < sys.space_factor(),
            "gbench {} vs sys {}",
            gbench.space_factor(),
            sys.space_factor()
        );
    }

    #[test]
    fn psys_policy_metadata_dominates() {
        let sys = SpaceReport::measure(&loaded(ProfileKind::PSys, 300));
        let base = SpaceReport::measure(&loaded(ProfileKind::PBase, 300));
        assert!(sys.policy_bytes > 20 * base.policy_bytes.max(1));
    }

    #[test]
    fn totals_add_up() {
        let r = SpaceReport::measure(&loaded(ProfileKind::PBase, 100));
        assert_eq!(r.total_bytes(), r.personal_bytes + r.metadata_bytes());
        assert!(r.space_factor() > 1.0);
        assert!(r.personal_bytes >= 100 * 100, "100 records x 100 bytes");
    }

    #[test]
    fn empty_db_factor_is_infinite() {
        let fe = Frontend::new(EngineConfig::p_base());
        let r = SpaceReport::measure(&fe);
        assert!(r.space_factor().is_infinite());
    }

    #[test]
    fn row_renders_five_cells() {
        let r = SpaceReport::measure(&loaded(ProfileKind::PBase, 50));
        let row = r.row("P_Base");
        assert_eq!(row.len(), 5);
        assert_eq!(row[0], "P_Base");
        assert!(row[4].ends_with('x'));
    }
}
