//! Workload drivers: batch-first runs (the paper's completion-time
//! metric) and a sharded multi-client mode (scoped threads) for
//! scalability ablations, including heterogeneous per-shard storage
//! backends.
//!
//! Every driver submits through [`Frontend::submit`], i.e. through the
//! staged batch pipeline (`datacase_engine::exec`) when
//! [`EngineConfig::pipeline`] is on: within each submitted chunk, runs of
//! point reads fan their payload work out across scoped workers while
//! mutations stay serial barriers. Batch size and pipeline mode never
//! change results — only boundary crossings and wall-clock time (the
//! `prop_frontend` parity suite holds the engine to that).

use std::sync::Arc;
use std::time::Instant;

use datacase_sim::time::Dur;
use datacase_sim::{Meter, MeterSnapshot, SimClock};
use datacase_storage::backend::BackendKind;
use datacase_workloads::opstream::Op;

use crate::db::Actor;
use crate::error::EngineError;
use crate::frontend::{Frontend, Response, Session};
use crate::profiles::EngineConfig;

/// Default number of requests per submitted batch in the drivers.
pub const DEFAULT_BATCH: usize = 64;

/// Statistics of one workload run, tallied from the typed
/// [`EngineError`] taxonomy (not sentinel reply values).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Operations executed.
    pub ops: usize,
    /// Operations denied by policy enforcement ([`EngineError::Denied`]).
    pub denied: usize,
    /// Operations targeting keys that never existed
    /// ([`EngineError::NotFound`]).
    pub not_found: usize,
    /// Operations targeting erased records
    /// ([`EngineError::RetentionExpired`]).
    pub expired: usize,
    /// Operations failed by the substrate ([`EngineError::Backend`]).
    pub failed: usize,
    /// Simulated completion time.
    pub simulated: Dur,
    /// Wall-clock time of the run (host-side, for criterion context).
    pub wall: std::time::Duration,
    /// Work counters accumulated during the run.
    pub work: MeterSnapshot,
}

impl RunStats {
    /// Simulated throughput in ops per simulated second.
    pub fn sim_ops_per_sec(&self) -> f64 {
        let secs = self.simulated.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Fold one response's outcome into the error tallies.
    fn tally(&mut self, response: &Response) {
        match &response.outcome {
            Ok(_) => {}
            Err(EngineError::Denied { .. }) => self.denied += 1,
            Err(EngineError::NotFound { .. }) => self.not_found += 1,
            Err(EngineError::RetentionExpired { .. }) => self.expired += 1,
            Err(EngineError::Backend { .. }) => self.failed += 1,
        }
    }
}

/// Run `ops` on `frontend` as `actor` in batches of [`DEFAULT_BATCH`],
/// returning completion stats.
pub fn run_ops(frontend: &mut Frontend, ops: &[Op], actor: Actor) -> RunStats {
    run_ops_batched(frontend, ops, actor, DEFAULT_BATCH)
}

/// [`run_ops`] with an explicit batch size. Batch size never changes
/// results (the `prop_frontend` parity suite holds the engine to that);
/// it only changes how many submissions cross the frontend boundary.
pub fn run_ops_batched(
    frontend: &mut Frontend,
    ops: &[Op],
    actor: Actor,
    batch_size: usize,
) -> RunStats {
    let batch_size = batch_size.max(1);
    let session = Session::new(actor);
    let sim_start = frontend.clock().now();
    let meter_start = frontend.meter().snapshot();
    let wall_start = Instant::now();
    let mut stats = RunStats {
        ops: ops.len(),
        ..RunStats::default()
    };
    for chunk in ops.chunks(batch_size) {
        for response in frontend.submit_ops(&session, chunk) {
            stats.tally(&response);
        }
    }
    stats.simulated = frontend.clock().now().since(sim_start);
    stats.wall = wall_start.elapsed();
    stats.work = frontend.meter().snapshot().diff(&meter_start);
    stats
}

/// Results of a sharded run: per-shard stats plus the work counters
/// aggregated over every shard.
#[derive(Clone, Debug, Default)]
pub struct ShardedRun {
    /// One entry per shard, in shard order. Each shard runs on its own
    /// [`Meter`], so its `work` field counts exactly that shard's
    /// transaction-phase work — no cross-shard bleed, whatever the
    /// thread interleaving.
    pub shards: Vec<RunStats>,
    /// Work counters merged over all shards ([`MeterSnapshot::merge`]),
    /// load phase included. Addition is commutative, so the aggregate is
    /// deterministic regardless of how the workers interleaved.
    pub work: MeterSnapshot,
}

impl ShardedRun {
    /// The aggregate completion time: the slowest shard (the end barrier
    /// of a multi-client run).
    pub fn completion(&self) -> Dur {
        sharded_completion(&self.shards)
    }

    /// Total operations executed across shards (transaction phase).
    pub fn total_ops(&self) -> usize {
        self.shards.iter().map(|s| s.ops).sum()
    }
}

/// Per-shard execution plan for [`sharded_run_plan`]: which storage
/// substrate each shard runs on (heap and LSM shards can serve one job —
/// a hot tier next to a capacity tier), and how requests are batched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// One [`BackendKind`] per shard; the vector's length is the shard
    /// count.
    pub backends: Vec<BackendKind>,
    /// Requests per submitted batch on every shard.
    pub batch: usize,
}

impl ShardPlan {
    /// A homogeneous plan: `shards` shards, all on `backend`.
    pub fn uniform(backend: BackendKind, shards: usize) -> ShardPlan {
        ShardPlan {
            backends: vec![backend; shards],
            batch: DEFAULT_BATCH,
        }
    }

    /// A heterogeneous plan from an explicit backend list.
    pub fn of(backends: &[BackendKind]) -> ShardPlan {
        ShardPlan {
            backends: backends.to_vec(),
            batch: DEFAULT_BATCH,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.backends.len()
    }
}

/// Sharded multi-client run on a homogeneous plan: all shards use
/// `config.backend`. See [`sharded_run_plan`] for heterogeneous tiers.
pub fn sharded_run(
    config: &EngineConfig,
    load: &[Op],
    txns: &[Op],
    actor: Actor,
    shards: usize,
) -> ShardedRun {
    sharded_run_plan(
        config,
        load,
        txns,
        actor,
        &ShardPlan::uniform(config.backend, shards),
    )
}

/// Sharded multi-client run: keys are hash-partitioned over the plan's
/// shards — independent frontends executing in parallel threads, each
/// over the substrate its [`ShardPlan`] slot names; completion time is
/// the slowest shard's simulated time (a barrier at the end, as in
/// multi-client YCSB runs). Every shard is built through
/// [`Frontend::with_clock`] on its own clock **and its own [`Meter`]**:
/// counters never race across threads, each shard's [`RunStats::work`]
/// is exactly its own work, and the run total in [`ShardedRun::work`]
/// is the order-independent merge of the per-shard snapshots.
pub fn sharded_run_plan(
    config: &EngineConfig,
    load: &[Op],
    txns: &[Op],
    actor: Actor,
    plan: &ShardPlan,
) -> ShardedRun {
    let shards = plan.shards();
    assert!(shards > 0, "a shard plan needs at least one shard");
    let shard_of = |op: &Op, i: usize| -> usize {
        match op.key() {
            Some(k) => (k % shards as u64) as usize,
            None => i % shards, // scans round-robin
        }
    };
    let mut load_parts: Vec<Vec<Op>> = vec![Vec::new(); shards];
    for (i, op) in load.iter().enumerate() {
        load_parts[shard_of(op, i)].push(op.clone());
    }
    let mut txn_parts: Vec<Vec<Op>> = vec![Vec::new(); shards];
    for (i, op) in txns.iter().enumerate() {
        txn_parts[shard_of(op, i)].push(op.clone());
    }
    let shard_results: Vec<(RunStats, MeterSnapshot)> = std::thread::scope(|scope| {
        // Spawn every shard before joining any (collect is eager), then
        // join in shard order so the result index is the shard index.
        let handles: Vec<_> = load_parts
            .into_iter()
            .zip(txn_parts)
            .zip(&plan.backends)
            .map(|((load_ops, txn_ops), &backend)| {
                let cfg = config.clone().with_backend(backend);
                let batch = plan.batch;
                scope.spawn(move || {
                    // Own clock and own meter: shards progress — and
                    // count — independently; aggregation is a merge
                    // after the join, not a shared counter during the
                    // run.
                    let meter = Arc::new(Meter::new());
                    let mut fe = Frontend::with_clock(cfg, SimClock::commodity(), meter.clone());
                    let controller = Session::new(Actor::Controller);
                    for chunk in load_ops.chunks(batch.max(1)) {
                        fe.submit_ops(&controller, chunk);
                    }
                    let stats = run_ops_batched(&mut fe, &txn_ops, actor, batch);
                    (stats, meter.snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    let work = shard_results
        .iter()
        .fold(MeterSnapshot::default(), |acc, (_, m)| acc.merge(m));
    ShardedRun {
        shards: shard_results.into_iter().map(|(s, _)| s).collect(),
        work,
    }
}

/// The aggregate completion time of a sharded run: the slowest shard.
pub fn sharded_completion(stats: &[RunStats]) -> Dur {
    stats.iter().map(|s| s.simulated).max().unwrap_or(Dur::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProfileKind;
    use datacase_workloads::gdprbench::{GdprBench, Mix};

    #[test]
    fn run_ops_reports_stats() {
        let mut fe = Frontend::new(EngineConfig::for_profile(ProfileKind::PBase));
        let mut bench = GdprBench::new(1, 50);
        let load = bench.load_phase(100);
        let stats = run_ops(&mut fe, &load, Actor::Controller);
        assert_eq!(stats.ops, 100);
        assert_eq!(stats.denied, 0);
        assert_eq!(stats.failed, 0);
        assert!(stats.simulated > Dur::ZERO);
        assert!(stats.work.log_records >= 100);
        assert!(stats.sim_ops_per_sec() > 0.0);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let run = |batch: usize| {
            let mut fe = Frontend::new(EngineConfig::for_profile(ProfileKind::PBase));
            let mut bench = GdprBench::new(4, 50);
            let load = bench.load_phase(150);
            run_ops_batched(&mut fe, &load, Actor::Controller, batch);
            let txns = bench.ops(200, Mix::wcus());
            run_ops_batched(&mut fe, &txns, Actor::Subject, batch)
        };
        let a = run(1);
        let b = run(128);
        assert_eq!(a.denied, b.denied);
        assert_eq!(a.not_found, b.not_found);
        assert_eq!(a.expired, b.expired);
        assert_eq!(a.simulated, b.simulated);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn pipeline_mode_does_not_change_driver_results() {
        let run = |pipeline: bool| {
            // Force multiple apply-stage workers so the scoped-thread
            // fan-out path is exercised regardless of host core count.
            let mut config = EngineConfig::for_profile(ProfileKind::PSys)
                .with_pipeline(pipeline)
                .with_decision_cache(512);
            config.pipeline_workers = 4;
            let mut fe = Frontend::new(config);
            let mut bench = GdprBench::new(9, 50);
            let load = bench.load_phase(150);
            run_ops_batched(&mut fe, &load, Actor::Controller, 64);
            let txns = bench.ops(300, Mix::wcus());
            run_ops_batched(&mut fe, &txns, Actor::Subject, 64)
        };
        let serial = run(false);
        let pipelined = run(true);
        assert_eq!(serial.denied, pipelined.denied);
        assert_eq!(serial.not_found, pipelined.not_found);
        assert_eq!(serial.expired, pipelined.expired);
        assert_eq!(serial.simulated, pipelined.simulated);
        assert_eq!(serial.work, pipelined.work);
    }

    #[test]
    fn sharded_run_covers_all_ops() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(2, 50);
        let load = bench.load_phase(200);
        let txns = bench.ops(200, Mix::wcus());
        let run = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert_eq!(run.shards.len(), 4);
        assert_eq!(run.total_ops(), 200);
        assert!(run.completion() > Dur::ZERO);
    }

    #[test]
    fn sharded_run_merges_per_shard_meters_deterministically() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(5, 50);
        let load = bench.load_phase(200);
        let txns = bench.ops(100, Mix::wcus());
        let run = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        // Every load op logs at least one audit record; the merged
        // snapshot must see all shards' work, not one shard's.
        assert!(
            run.work.log_records >= 200,
            "aggregate log records: {}",
            run.work.log_records
        );
        assert!(run.work.tuples_scanned > 0);
        // Shards count on private meters: each shard's transaction-phase
        // work is bounded by (and sums into) the aggregate, which cannot
        // happen when shards bleed counts into each other's diffs.
        let txn_sum = run
            .shards
            .iter()
            .fold(MeterSnapshot::default(), |acc, s| acc.merge(&s.work));
        assert!(txn_sum.log_records <= run.work.log_records);
        for shard in &run.shards {
            assert!(shard.work.log_records <= txn_sum.log_records);
        }
        // And the aggregate is reproducible: same partitioning, same
        // per-shard streams, same merged counters on a rerun, however
        // the 4 threads interleaved.
        let again = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert_eq!(run.work, again.work, "merge must be interleaving-free");
    }

    #[test]
    fn sharding_reduces_completion_time() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(3, 100);
        let load = bench.load_phase(400);
        let txns = bench.ops(400, Mix::wcus());
        let seq = sharded_run(&config, &load, &txns, Actor::Subject, 1);
        let par = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert!(
            par.completion() < seq.completion(),
            "4 shards {:?} vs 1 shard {:?}",
            par.completion(),
            seq.completion()
        );
    }

    #[test]
    fn mixed_backend_plan_runs_heap_and_lsm_shards_together() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(11, 50);
        let load = bench.load_phase(200);
        let txns = bench.ops(200, Mix::wcus());
        let plan = ShardPlan::of(&[
            BackendKind::Heap,
            BackendKind::Lsm,
            BackendKind::Heap,
            BackendKind::Lsm,
        ]);
        let run = sharded_run_plan(&config, &load, &txns, Actor::Subject, &plan);
        assert_eq!(run.shards.len(), 4);
        assert_eq!(run.total_ops(), 200);
        // Backend parity: heterogeneous substrates agree on enforcement
        // outcomes for the same key partition — compare against an
        // all-heap run of the same partitioning.
        let uniform = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        for (mixed, heap) in run.shards.iter().zip(&uniform.shards) {
            assert_eq!(mixed.ops, heap.ops);
            assert_eq!(mixed.denied, heap.denied);
            assert_eq!(mixed.not_found, heap.not_found);
            assert_eq!(mixed.expired, heap.expired);
        }
    }
}
