//! Workload drivers: sequential runs (the paper's completion-time metric)
//! and a sharded multi-client mode (scoped threads) for scalability
//! ablations.

use std::time::Instant;

use datacase_sim::time::Dur;
use datacase_sim::MeterSnapshot;
use datacase_workloads::opstream::Op;

use crate::db::{Actor, CompliantDb, OpResult};
use crate::profiles::EngineConfig;

/// Statistics of one workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Operations executed.
    pub ops: usize,
    /// Operations denied by policy enforcement.
    pub denied: usize,
    /// Operations targeting missing keys.
    pub not_found: usize,
    /// Simulated completion time.
    pub simulated: Dur,
    /// Wall-clock time of the run (host-side, for criterion context).
    pub wall: std::time::Duration,
    /// Work counters accumulated during the run.
    pub work: MeterSnapshot,
}

impl RunStats {
    /// Simulated throughput in ops per simulated second.
    pub fn sim_ops_per_sec(&self) -> f64 {
        let secs = self.simulated.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// Run `ops` sequentially on `db` as `actor`, returning completion stats.
pub fn run_ops(db: &mut CompliantDb, ops: &[Op], actor: Actor) -> RunStats {
    let sim_start = db.clock().now();
    let meter_start = db.meter().snapshot();
    let wall_start = Instant::now();
    let mut denied = 0usize;
    let mut not_found = 0usize;
    for op in ops {
        match db.execute(op, actor) {
            OpResult::Denied => denied += 1,
            OpResult::NotFound => not_found += 1,
            _ => {}
        }
    }
    RunStats {
        ops: ops.len(),
        denied,
        not_found,
        simulated: db.clock().now().since(sim_start),
        wall: wall_start.elapsed(),
        work: db.meter().snapshot().diff(&meter_start),
    }
}

/// Sharded multi-client run: keys are hash-partitioned over `shards`
/// independent engine instances executing in parallel threads; completion
/// time is the slowest shard's simulated time (a barrier at the end, as in
/// multi-client YCSB runs).
pub fn sharded_run(
    config: &EngineConfig,
    load: &[Op],
    txns: &[Op],
    actor: Actor,
    shards: usize,
) -> Vec<RunStats> {
    assert!(shards > 0);
    let shard_of = |op: &Op, i: usize| -> usize {
        match op.key() {
            Some(k) => (k % shards as u64) as usize,
            None => i % shards, // scans round-robin
        }
    };
    let mut load_parts: Vec<Vec<Op>> = vec![Vec::new(); shards];
    for (i, op) in load.iter().enumerate() {
        load_parts[shard_of(op, i)].push(op.clone());
    }
    let mut txn_parts: Vec<Vec<Op>> = vec![Vec::new(); shards];
    for (i, op) in txns.iter().enumerate() {
        txn_parts[shard_of(op, i)].push(op.clone());
    }
    std::thread::scope(|scope| {
        // Spawn every shard before joining any (collect is eager), then
        // join in shard order so the result index is the shard index.
        let handles: Vec<_> = load_parts
            .into_iter()
            .zip(txn_parts)
            .map(|(load_ops, txn_ops)| {
                let cfg = config.clone();
                scope.spawn(move || {
                    let mut db = CompliantDb::new(cfg);
                    for op in &load_ops {
                        db.execute(op, Actor::Controller);
                    }
                    run_ops(&mut db, &txn_ops, actor)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
}

/// The aggregate completion time of a sharded run: the slowest shard.
pub fn sharded_completion(stats: &[RunStats]) -> Dur {
    stats.iter().map(|s| s.simulated).max().unwrap_or(Dur::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProfileKind;
    use datacase_workloads::gdprbench::{GdprBench, Mix};

    #[test]
    fn run_ops_reports_stats() {
        let mut db = CompliantDb::new(EngineConfig::for_profile(ProfileKind::PBase));
        let mut bench = GdprBench::new(1, 50);
        let load = bench.load_phase(100);
        let stats = run_ops(&mut db, &load, Actor::Controller);
        assert_eq!(stats.ops, 100);
        assert_eq!(stats.denied, 0);
        assert!(stats.simulated > Dur::ZERO);
        assert!(stats.work.log_records >= 100);
        assert!(stats.sim_ops_per_sec() > 0.0);
    }

    #[test]
    fn sharded_run_covers_all_ops() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(2, 50);
        let load = bench.load_phase(200);
        let txns = bench.ops(200, Mix::wcus());
        let stats = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert_eq!(stats.len(), 4);
        let total_ops: usize = stats.iter().map(|s| s.ops).sum();
        assert_eq!(total_ops, 200);
        assert!(sharded_completion(&stats) > Dur::ZERO);
    }

    #[test]
    fn sharding_reduces_completion_time() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(3, 100);
        let load = bench.load_phase(400);
        let txns = bench.ops(400, Mix::wcus());
        let seq = sharded_run(&config, &load, &txns, Actor::Subject, 1);
        let par = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert!(
            sharded_completion(&par) < sharded_completion(&seq),
            "4 shards {:?} vs 1 shard {:?}",
            sharded_completion(&par),
            sharded_completion(&seq)
        );
    }
}
