//! Workload drivers: sequential runs (the paper's completion-time metric)
//! and a sharded multi-client mode (scoped threads) for scalability
//! ablations.

use std::sync::Arc;
use std::time::Instant;

use datacase_sim::time::Dur;
use datacase_sim::{Meter, MeterSnapshot, SimClock};
use datacase_workloads::opstream::Op;

use crate::db::{Actor, CompliantDb, OpResult};
use crate::profiles::EngineConfig;

/// Statistics of one workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Operations executed.
    pub ops: usize,
    /// Operations denied by policy enforcement.
    pub denied: usize,
    /// Operations targeting missing keys.
    pub not_found: usize,
    /// Simulated completion time.
    pub simulated: Dur,
    /// Wall-clock time of the run (host-side, for criterion context).
    pub wall: std::time::Duration,
    /// Work counters accumulated during the run.
    pub work: MeterSnapshot,
}

impl RunStats {
    /// Simulated throughput in ops per simulated second.
    pub fn sim_ops_per_sec(&self) -> f64 {
        let secs = self.simulated.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// Run `ops` sequentially on `db` as `actor`, returning completion stats.
pub fn run_ops(db: &mut CompliantDb, ops: &[Op], actor: Actor) -> RunStats {
    let sim_start = db.clock().now();
    let meter_start = db.meter().snapshot();
    let wall_start = Instant::now();
    let mut denied = 0usize;
    let mut not_found = 0usize;
    for op in ops {
        match db.execute(op, actor) {
            OpResult::Denied => denied += 1,
            OpResult::NotFound => not_found += 1,
            _ => {}
        }
    }
    RunStats {
        ops: ops.len(),
        denied,
        not_found,
        simulated: db.clock().now().since(sim_start),
        wall: wall_start.elapsed(),
        work: db.meter().snapshot().diff(&meter_start),
    }
}

/// Results of a sharded run: per-shard stats plus the work counters
/// aggregated over every shard (the shards share one [`Meter`]).
#[derive(Clone, Debug, Default)]
pub struct ShardedRun {
    /// One entry per shard, in shard order. Each shard's `work` field is
    /// its own diff of the *shared* meter, so concurrent shards may see
    /// each other's counts there; `work` below is authoritative.
    pub shards: Vec<RunStats>,
    /// Work counters accumulated across all shards, load phase included.
    pub work: MeterSnapshot,
}

impl ShardedRun {
    /// The aggregate completion time: the slowest shard (the end barrier
    /// of a multi-client run).
    pub fn completion(&self) -> Dur {
        sharded_completion(&self.shards)
    }

    /// Total operations executed across shards (transaction phase).
    pub fn total_ops(&self) -> usize {
        self.shards.iter().map(|s| s.ops).sum()
    }
}

/// Sharded multi-client run: keys are hash-partitioned over `shards`
/// independent engine instances executing in parallel threads; completion
/// time is the slowest shard's simulated time (a barrier at the end, as in
/// multi-client YCSB runs). Every shard is built through
/// [`CompliantDb::with_clock`] on its own clock but one shared [`Meter`],
/// so the run's total work is aggregated in [`ShardedRun::work`].
pub fn sharded_run(
    config: &EngineConfig,
    load: &[Op],
    txns: &[Op],
    actor: Actor,
    shards: usize,
) -> ShardedRun {
    assert!(shards > 0);
    let meter = Arc::new(Meter::new());
    let shard_of = |op: &Op, i: usize| -> usize {
        match op.key() {
            Some(k) => (k % shards as u64) as usize,
            None => i % shards, // scans round-robin
        }
    };
    let mut load_parts: Vec<Vec<Op>> = vec![Vec::new(); shards];
    for (i, op) in load.iter().enumerate() {
        load_parts[shard_of(op, i)].push(op.clone());
    }
    let mut txn_parts: Vec<Vec<Op>> = vec![Vec::new(); shards];
    for (i, op) in txns.iter().enumerate() {
        txn_parts[shard_of(op, i)].push(op.clone());
    }
    let shard_stats: Vec<RunStats> = std::thread::scope(|scope| {
        // Spawn every shard before joining any (collect is eager), then
        // join in shard order so the result index is the shard index.
        let handles: Vec<_> = load_parts
            .into_iter()
            .zip(txn_parts)
            .map(|(load_ops, txn_ops)| {
                let cfg = config.clone();
                let shard_meter = meter.clone();
                scope.spawn(move || {
                    // Own clock (shards progress independently), shared
                    // meter (work aggregates across the fleet).
                    let mut db = CompliantDb::with_clock(cfg, SimClock::commodity(), shard_meter);
                    for op in &load_ops {
                        db.execute(op, Actor::Controller);
                    }
                    run_ops(&mut db, &txn_ops, actor)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    ShardedRun {
        shards: shard_stats,
        work: meter.snapshot(),
    }
}

/// The aggregate completion time of a sharded run: the slowest shard.
pub fn sharded_completion(stats: &[RunStats]) -> Dur {
    stats.iter().map(|s| s.simulated).max().unwrap_or(Dur::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProfileKind;
    use datacase_workloads::gdprbench::{GdprBench, Mix};

    #[test]
    fn run_ops_reports_stats() {
        let mut db = CompliantDb::new(EngineConfig::for_profile(ProfileKind::PBase));
        let mut bench = GdprBench::new(1, 50);
        let load = bench.load_phase(100);
        let stats = run_ops(&mut db, &load, Actor::Controller);
        assert_eq!(stats.ops, 100);
        assert_eq!(stats.denied, 0);
        assert!(stats.simulated > Dur::ZERO);
        assert!(stats.work.log_records >= 100);
        assert!(stats.sim_ops_per_sec() > 0.0);
    }

    #[test]
    fn sharded_run_covers_all_ops() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(2, 50);
        let load = bench.load_phase(200);
        let txns = bench.ops(200, Mix::wcus());
        let run = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert_eq!(run.shards.len(), 4);
        assert_eq!(run.total_ops(), 200);
        assert!(run.completion() > Dur::ZERO);
    }

    #[test]
    fn sharded_run_aggregates_work_over_shared_meter() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(5, 50);
        let load = bench.load_phase(200);
        let txns = bench.ops(100, Mix::wcus());
        let run = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        // Every load op logs at least one audit record; the aggregate
        // snapshot must see all shards' work, not one shard's.
        assert!(
            run.work.log_records >= 200,
            "aggregate log records: {}",
            run.work.log_records
        );
        assert!(run.work.tuples_scanned > 0);
    }

    #[test]
    fn sharding_reduces_completion_time() {
        let config = EngineConfig::for_profile(ProfileKind::PBase);
        let mut bench = GdprBench::new(3, 100);
        let load = bench.load_phase(400);
        let txns = bench.ops(400, Mix::wcus());
        let seq = sharded_run(&config, &load, &txns, Actor::Subject, 1);
        let par = sharded_run(&config, &load, &txns, Actor::Subject, 4);
        assert!(
            par.completion() < seq.completion(),
            "4 shards {:?} vs 1 shard {:?}",
            par.completion(),
            seq.completion()
        );
    }
}
